//! Property tests for the routing substrate: Gao–Rexford structural
//! guarantees over random commercial topologies, SPF optimality, and
//! source-route pricing invariants.

use proptest::prelude::*;
use std::collections::BTreeMap;
use tussle_net::{Asn, Network, Prefix};
use tussle_routing::sourceroute::enumerate_paths;
use tussle_routing::{AsGraph, LinkStateProtocol};
use tussle_sim::SimTime;

/// Build a random but well-formed commercial AS hierarchy:
/// tier-1s peer with each other; every other AS buys transit from at
/// least one AS in the tier above.
fn arb_as_graph() -> impl Strategy<Value = (AsGraph, Vec<Asn>)> {
    (2usize..4, 2usize..5, 1usize..4, any::<u64>()).prop_map(|(t1, mids, stubs_per, seed)| {
        let mut g = AsGraph::new();
        let mut rng = tussle_sim::SimRng::seed_from_u64(seed);
        let t1s: Vec<Asn> = (0..t1).map(|i| Asn(10 + i as u32)).collect();
        for i in 0..t1s.len() {
            for j in (i + 1)..t1s.len() {
                g.peers(t1s[i], t1s[j]);
            }
        }
        let mid_asns: Vec<Asn> = (0..mids).map(|i| Asn(100 + i as u32)).collect();
        for m in &mid_asns {
            let p = t1s[rng.range(0..t1s.len())];
            g.customer_of(*m, p);
        }
        let mut all = Vec::new();
        for (mi, m) in mid_asns.iter().enumerate() {
            for s in 0..stubs_per {
                let stub = Asn(1000 + (mi * 10 + s) as u32);
                g.customer_of(stub, *m);
                all.push(stub);
            }
        }
        all.extend(t1s);
        all.extend(mid_asns);
        (g, all)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every best path after convergence is loop-free, valley-free, and
    /// ends at the originator.
    #[test]
    fn converged_paths_are_valley_free((mut g, asns) in arb_as_graph()) {
        let origin = asns[0];
        let prefix = Prefix::new(0x0a000000, 16);
        g.originate(origin, prefix);
        let rounds = g.converge(100);
        prop_assert!(rounds < 100, "failed to converge");
        for asn in &asns {
            if let Some(path) = g.as_path(*asn, prefix) {
                // loop-free
                let mut seen = path.to_vec();
                seen.sort_unstable();
                seen.dedup();
                prop_assert_eq!(seen.len(), path.len(), "loop in {:?}", path);
                // ends at origin
                prop_assert_eq!(*path.last().unwrap(), origin);
                // valley-free
                prop_assert!(g.is_valley_free(path), "valley in {:?}", path);
            }
        }
    }

    /// Everyone in a single-rooted hierarchy can reach a stub's prefix
    /// (the topology construction guarantees connectivity through tier 1).
    #[test]
    fn hierarchies_are_fully_reachable((mut g, asns) in arb_as_graph()) {
        let origin = asns[0];
        let prefix = Prefix::new(0x0b000000, 16);
        g.originate(origin, prefix);
        g.converge(100);
        for asn in &asns {
            prop_assert!(
                g.best_route(*asn, prefix).is_some(),
                "{asn:?} cannot reach {origin:?}"
            );
        }
    }

    /// SPF paths on random line-with-chords networks never beat direct
    /// link costs and are internally consistent (each path's cost equals
    /// the sum of its hops, and no shorter path exists through any single
    /// intermediate the protocol also computed).
    #[test]
    fn spf_satisfies_triangle_inequality(
        n in 4usize..12,
        chords in proptest::collection::vec((0usize..12, 0usize..12, 1u64..50), 0..6),
    ) {
        let mut net = Network::new();
        let nodes: Vec<_> = (0..n).map(|i| net.add_router(Asn(i as u32))).collect();
        for w in nodes.windows(2) {
            net.connect(w[0], w[1], SimTime::from_millis(5), 1_000_000_000);
        }
        for (a, b, ms) in chords {
            let (a, b) = (a % n, b % n);
            if a != b && net.link_between(nodes[a], nodes[b]).is_none() {
                net.connect(nodes[a], nodes[b], SimTime::from_millis(ms), 1_000_000_000);
            }
        }
        let ls = LinkStateProtocol::spanning(&net);
        let cost = |x: usize, y: usize| ls.cost(&net, nodes[x], nodes[y]);
        for i in 0..n {
            for j in 0..n {
                let Some(cij) = cost(i, j) else { continue };
                for k in 0..n {
                    if let (Some(cik), Some(ckj)) = (cost(i, k), cost(k, j)) {
                        prop_assert!(
                            cij <= cik + ckj,
                            "triangle violated: d({i},{j})={cij} > {cik}+{ckj} via {k}"
                        );
                    }
                }
            }
        }
    }

    /// Source-route offers are sorted by price and every offer's price is
    /// exactly the sum of its transit ASes' asking prices.
    #[test]
    fn offers_price_correctly((g, asns) in arb_as_graph(), price_seed in any::<u64>()) {
        let mut rng = tussle_sim::SimRng::seed_from_u64(price_seed);
        let asking: BTreeMap<Asn, u64> =
            asns.iter().map(|a| (*a, rng.range(0..1_000u64))).collect();
        let src = asns[0];
        let dst = *asns.last().unwrap();
        let offers = enumerate_paths(&g, src, dst, 5, &asking);
        for w in offers.windows(2) {
            prop_assert!(w[0].price <= w[1].price, "offers out of order");
        }
        for o in &offers {
            let expected: u64 = o.path[1..o.path.len() - 1]
                .iter()
                .map(|a| asking.get(a).copied().unwrap_or(0))
                .sum();
            prop_assert_eq!(o.price, expected);
            prop_assert_eq!(o.path.first(), Some(&src));
            prop_assert_eq!(o.path.last(), Some(&dst));
        }
    }
}

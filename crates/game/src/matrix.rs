//! Normal-form bimatrix games.

use serde::{Deserialize, Serialize};

/// A finite two-player game in normal form.
///
/// `payoffs[i * cols + j]` is `(row payoff, column payoff)` when the row
/// player plays action `i` and the column player plays action `j`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Game {
    rows: usize,
    cols: usize,
    payoffs: Vec<(f64, f64)>,
}

impl Game {
    /// Build from a nested payoff table `table[i][j] = (row, col)`.
    pub fn from_table(table: Vec<Vec<(f64, f64)>>) -> Self {
        let rows = table.len();
        assert!(rows > 0, "a game needs at least one row action");
        let cols = table[0].len();
        assert!(cols > 0, "a game needs at least one column action");
        assert!(table.iter().all(|r| r.len() == cols), "ragged payoff table");
        Game { rows, cols, payoffs: table.into_iter().flatten().collect() }
    }

    /// A zero-sum game from the row player's payoffs (column gets the
    /// negation) — the "purely conflicting" end of the paper's spectrum.
    pub fn zero_sum(row_payoffs: Vec<Vec<f64>>) -> Self {
        Game::from_table(
            row_payoffs.into_iter().map(|r| r.into_iter().map(|v| (v, -v)).collect()).collect(),
        )
    }

    /// The classic prisoner's dilemma with the standard ordering
    /// T > R > P > S (defect temptation, mutual cooperation, mutual
    /// defection, sucker).
    pub fn prisoners_dilemma(t: f64, r: f64, p: f64, s: f64) -> Self {
        assert!(t > r && r > p && p > s, "PD requires T > R > P > S");
        // actions: 0 = cooperate, 1 = defect
        Game::from_table(vec![vec![(r, r), (s, t)], vec![(t, s), (p, p)]])
    }

    /// A pure coordination game: both players get `reward[i]` when they
    /// match on action `i`, zero otherwise — "actors have a common goal but
    /// fail to coordinate ... due to incentive problems" (§II.B).
    pub fn coordination(rewards: Vec<f64>) -> Self {
        let n = rewards.len();
        let mut table = vec![vec![(0.0, 0.0); n]; n];
        for (i, r) in rewards.iter().enumerate() {
            table[i][i] = (*r, *r);
        }
        Game::from_table(table)
    }

    /// Number of row actions.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of column actions.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Payoffs at a pure action profile.
    pub fn payoff(&self, row: usize, col: usize) -> (f64, f64) {
        self.payoffs[row * self.cols + col]
    }

    /// Expected payoffs under mixed strategies `x` (row) and `y` (column).
    pub fn expected_payoff(&self, x: &[f64], y: &[f64]) -> (f64, f64) {
        assert_eq!(x.len(), self.rows);
        assert_eq!(y.len(), self.cols);
        let mut r = 0.0;
        let mut c = 0.0;
        for (i, &xi) in x.iter().enumerate() {
            for (j, &yj) in y.iter().enumerate() {
                let (pr, pc) = self.payoff(i, j);
                let w = xi * yj;
                r += w * pr;
                c += w * pc;
            }
        }
        (r, c)
    }

    /// Row player's payoff for pure action `i` against mixed `y`.
    pub fn row_payoff_against(&self, i: usize, y: &[f64]) -> f64 {
        (0..self.cols).map(|j| y[j] * self.payoff(i, j).0).sum()
    }

    /// Column player's payoff for pure action `j` against mixed `x`.
    pub fn col_payoff_against(&self, j: usize, x: &[f64]) -> f64 {
        (0..self.rows).map(|i| x[i] * self.payoff(i, j).1).sum()
    }

    /// Is every cell zero-sum?
    pub fn is_zero_sum(&self) -> bool {
        self.payoffs.iter().all(|(r, c)| (r + c).abs() < 1e-9)
    }

    /// Row player's best responses to a column pure action.
    pub fn row_best_responses(&self, col: usize) -> Vec<usize> {
        let best = (0..self.rows).map(|i| self.payoff(i, col).0).fold(f64::NEG_INFINITY, f64::max);
        (0..self.rows).filter(|&i| self.payoff(i, col).0 >= best - 1e-12).collect()
    }

    /// Column player's best responses to a row pure action.
    pub fn col_best_responses(&self, row: usize) -> Vec<usize> {
        let best = (0..self.cols).map(|j| self.payoff(row, j).1).fold(f64::NEG_INFINITY, f64::max);
        (0..self.cols).filter(|&j| self.payoff(row, j).1 >= best - 1e-12).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_table_and_accessors() {
        let g = Game::from_table(vec![vec![(1.0, 2.0), (3.0, 4.0)]]);
        assert_eq!(g.rows(), 1);
        assert_eq!(g.cols(), 2);
        assert_eq!(g.payoff(0, 1), (3.0, 4.0));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_tables_rejected() {
        Game::from_table(vec![vec![(0.0, 0.0)], vec![(0.0, 0.0), (1.0, 1.0)]]);
    }

    #[test]
    fn zero_sum_negates() {
        let g = Game::zero_sum(vec![vec![3.0, -1.0], vec![0.0, 2.0]]);
        assert!(g.is_zero_sum());
        assert_eq!(g.payoff(0, 0), (3.0, -3.0));
    }

    #[test]
    fn pd_is_not_zero_sum() {
        let g = Game::prisoners_dilemma(5.0, 3.0, 1.0, 0.0);
        assert!(!g.is_zero_sum());
        assert_eq!(g.payoff(0, 0), (3.0, 3.0));
        assert_eq!(g.payoff(1, 0), (5.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "T > R > P > S")]
    fn pd_ordering_enforced() {
        Game::prisoners_dilemma(1.0, 2.0, 3.0, 4.0);
    }

    #[test]
    fn expected_payoff_uniform() {
        let g = Game::coordination(vec![2.0, 2.0]);
        let u = [0.5, 0.5];
        let (r, c) = g.expected_payoff(&u, &u);
        assert!((r - 1.0).abs() < 1e-12);
        assert!((c - 1.0).abs() < 1e-12);
    }

    #[test]
    fn best_responses() {
        let g = Game::prisoners_dilemma(5.0, 3.0, 1.0, 0.0);
        // defect (1) dominates
        assert_eq!(g.row_best_responses(0), vec![1]);
        assert_eq!(g.row_best_responses(1), vec![1]);
        assert_eq!(g.col_best_responses(0), vec![1]);
    }

    #[test]
    fn coordination_diagonal() {
        let g = Game::coordination(vec![1.0, 3.0]);
        assert_eq!(g.payoff(1, 1), (3.0, 3.0));
        assert_eq!(g.payoff(0, 1), (0.0, 0.0));
        // both matching actions are mutual best responses
        assert!(g.row_best_responses(0).contains(&0));
        assert!(g.row_best_responses(1).contains(&1));
    }

    #[test]
    fn payoff_against_mixed() {
        let g = Game::zero_sum(vec![vec![1.0, -1.0], vec![-1.0, 1.0]]); // matching pennies
        assert_eq!(g.row_payoff_against(0, &[0.5, 0.5]), 0.0);
        assert_eq!(g.col_payoff_against(1, &[1.0, 0.0]), 1.0);
    }
}

//! Nodes: hosts, routers and middlebox anchors.

use crate::addr::{Address, Asn};
use serde::{Deserialize, Serialize};

/// Index of a node in a [`crate::network::Network`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Usable as a vector index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl core::fmt::Display for NodeId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

// Lets `NodeId` key serialized maps (e.g. per-node tallies) as its raw index.
impl serde::StringKey for NodeId {
    fn to_key(&self) -> String {
        self.0.to_string()
    }
    fn from_key(key: &str) -> Result<Self, serde::DeError> {
        key.parse()
            .map(NodeId)
            .map_err(|_| serde::DeError(format!("invalid NodeId map key `{key}`")))
    }
}

/// What a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// An end system: sources and sinks packets.
    Host,
    /// A packet forwarder.
    Router,
}

/// A network node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    /// Identifier (index into the network's node table).
    pub id: NodeId,
    /// Host or router.
    pub kind: NodeKind,
    /// AS this node belongs to.
    pub asn: Asn,
    /// Addresses currently bound to the node. A multihomed host has
    /// several (§V.A.1: "have and use multiple addresses").
    pub addresses: Vec<Address>,
    /// Does this router honor loose source routes? ISPs that receive no
    /// compensation for source-routed transit turn this off (§V.A.4).
    pub honors_source_routes: bool,
    /// Does this router stamp packets for IP traceback (§II.B, Savage)?
    pub marks_packets: bool,
}

impl Node {
    /// A new host in an AS with no addresses yet.
    pub fn host(id: NodeId, asn: Asn) -> Self {
        Node {
            id,
            kind: NodeKind::Host,
            asn,
            addresses: Vec::new(),
            honors_source_routes: true,
            marks_packets: false,
        }
    }

    /// A new router in an AS.
    pub fn router(id: NodeId, asn: Asn) -> Self {
        Node {
            id,
            kind: NodeKind::Router,
            asn,
            addresses: Vec::new(),
            honors_source_routes: true,
            marks_packets: false,
        }
    }

    /// Bind an address to the node.
    pub fn bind(&mut self, addr: Address) {
        if !self.addresses.contains(&addr) {
            self.addresses.push(addr);
        }
    }

    /// Remove an address (renumbering away from a provider).
    pub fn unbind(&mut self, addr: Address) {
        self.addresses.retain(|a| *a != addr);
    }

    /// Does this node answer to `addr`?
    pub fn has_address(&self, addr: Address) -> bool {
        self.addresses.contains(&addr)
    }

    /// Primary address, if bound.
    pub fn primary_address(&self) -> Option<Address> {
        self.addresses.first().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{AddressOrigin, Prefix};

    fn addr(v: u32) -> Address {
        Address::in_prefix(Prefix::new(v, 16), 1, AddressOrigin::ProviderIndependent)
    }

    #[test]
    fn bind_and_unbind() {
        let mut n = Node::host(NodeId(0), Asn(1));
        assert_eq!(n.primary_address(), None);
        let a = addr(0x0a000000);
        let b = addr(0x0b000000);
        n.bind(a);
        n.bind(b);
        n.bind(a); // duplicate ignored
        assert_eq!(n.addresses.len(), 2);
        assert!(n.has_address(a));
        assert_eq!(n.primary_address(), Some(a));
        n.unbind(a);
        assert!(!n.has_address(a));
        assert_eq!(n.primary_address(), Some(b));
    }

    #[test]
    fn kinds() {
        assert_eq!(Node::host(NodeId(1), Asn(2)).kind, NodeKind::Host);
        assert_eq!(Node::router(NodeId(1), Asn(2)).kind, NodeKind::Router);
    }

    #[test]
    fn node_id_display_and_index() {
        assert_eq!(NodeId(7).to_string(), "n7");
        assert_eq!(NodeId(7).index(), 7);
    }
}

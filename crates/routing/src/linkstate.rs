//! Link-state (OSPF-flavoured) routing.
//!
//! Every participant floods its link costs; every participant runs the same
//! shortest-path-first computation over the same database. That total
//! transparency is fine inside one administrative domain ("hopefully a more
//! tussle-free context", §IV.C) and unacceptable between competitors — the
//! [`crate::exposure`] module quantifies why.

use std::collections::BinaryHeap;
use tussle_net::{Network, NodeId, Prefix};

/// A link-state protocol instance over a set of participating nodes.
///
/// Costs come from link latency in microseconds (a common OSPF practice is
/// inverse bandwidth; latency keeps the arithmetic transparent in tests).
#[derive(Debug, Clone)]
pub struct LinkStateProtocol {
    /// Nodes participating in this routing domain.
    pub members: Vec<NodeId>,
}

impl LinkStateProtocol {
    /// A protocol instance over the given members.
    pub fn new(members: Vec<NodeId>) -> Self {
        LinkStateProtocol { members }
    }

    /// A protocol instance spanning every node in the network.
    pub fn spanning(net: &Network) -> Self {
        LinkStateProtocol { members: net.nodes().iter().map(|n| n.id).collect() }
    }

    /// Dijkstra from `src` over up links between members.
    /// Returns `(dist, prev)` tables indexed by node.
    fn spf(&self, net: &Network, src: NodeId) -> (Vec<u64>, Vec<Option<NodeId>>) {
        let n = net.nodes().len();
        let member = {
            let mut m = vec![false; n];
            for id in &self.members {
                m[id.index()] = true;
            }
            m
        };
        let mut dist = vec![u64::MAX; n];
        let mut prev: Vec<Option<NodeId>> = vec![None; n];
        let mut heap = BinaryHeap::new();
        dist[src.index()] = 0;
        // max-heap of Reverse((dist, node))
        heap.push(core::cmp::Reverse((0u64, src)));
        while let Some(core::cmp::Reverse((d, u))) = heap.pop() {
            if d > dist[u.index()] {
                continue;
            }
            for lid in net.links_of(u) {
                let link = net.link(*lid);
                if !link.up {
                    continue;
                }
                let Some(v) = link.other_end(u) else { continue };
                if !member[v.index()] {
                    continue;
                }
                let w = link.latency.as_micros().max(1);
                let nd = d.saturating_add(w);
                if nd < dist[v.index()] {
                    dist[v.index()] = nd;
                    prev[v.index()] = Some(u);
                    heap.push(core::cmp::Reverse((nd, v)));
                }
            }
        }
        (dist, prev)
    }

    /// Shortest path from `src` to `dst`, if one exists.
    pub fn path(&self, net: &Network, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        let (dist, prev) = self.spf(net, src);
        if dist[dst.index()] == u64::MAX {
            return None;
        }
        let mut path = vec![dst];
        let mut cur = dst;
        while cur != src {
            cur = prev[cur.index()]?;
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }

    /// Total cost of the shortest path from `src` to `dst`.
    pub fn cost(&self, net: &Network, src: NodeId, dst: NodeId) -> Option<u64> {
        let (dist, _) = self.spf(net, src);
        let d = dist[dst.index()];
        (d != u64::MAX).then_some(d)
    }

    /// Compute routes from every member to every advertised prefix and
    /// install them in the members' FIBs.
    ///
    /// `advertisements` maps a prefix to the node that originates it.
    /// Returns the number of FIB entries installed.
    pub fn install_routes(&self, net: &mut Network, advertisements: &[(Prefix, NodeId)]) -> usize {
        let mut installed = 0;
        for &src in &self.members {
            let (dist, prev) = self.spf(net, src);
            for &(prefix, origin) in advertisements {
                if origin == src || dist[origin.index()] == u64::MAX {
                    continue;
                }
                // First hop on the path src -> origin.
                let mut hop = origin;
                while prev[hop.index()] != Some(src) {
                    match prev[hop.index()] {
                        Some(p) => hop = p,
                        None => break,
                    }
                }
                if prev[hop.index()] == Some(src) {
                    net.fib_mut(src).install(prefix, hop, dist[origin.index()] as u32);
                    installed += 1;
                }
            }
        }
        installed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tussle_net::addr::{Address, AddressOrigin, Asn};
    use tussle_net::packet::{ports, Protocol};
    use tussle_net::Packet;
    use tussle_sim::{SimRng, SimTime};

    /// Square with a diagonal shortcut:
    ///   a --1ms-- b
    ///   |         |
    ///  5ms       1ms
    ///   |         |
    ///   d --1ms-- c     plus a --10ms-- c
    fn square() -> (Network, [NodeId; 4]) {
        let mut net = Network::new();
        let a = net.add_router(Asn(1));
        let b = net.add_router(Asn(1));
        let c = net.add_router(Asn(1));
        let d = net.add_router(Asn(1));
        net.connect(a, b, SimTime::from_millis(1), 1_000_000_000);
        net.connect(b, c, SimTime::from_millis(1), 1_000_000_000);
        net.connect(c, d, SimTime::from_millis(1), 1_000_000_000);
        net.connect(d, a, SimTime::from_millis(5), 1_000_000_000);
        net.connect(a, c, SimTime::from_millis(10), 1_000_000_000);
        (net, [a, b, c, d])
    }

    #[test]
    fn spf_prefers_cheap_multi_hop_over_expensive_direct() {
        let (net, [a, b, c, _]) = square();
        let ls = LinkStateProtocol::spanning(&net);
        assert_eq!(ls.path(&net, a, c).unwrap(), vec![a, b, c]);
        assert_eq!(ls.cost(&net, a, c).unwrap(), 2_000);
    }

    #[test]
    fn spf_reroutes_after_failure() {
        let (mut net, [a, b, c, d]) = square();
        // fail a-b
        let ab = net.links()[0].id;
        net.link_mut(ab).up = false;
        let ls = LinkStateProtocol::spanning(&net);
        let p = ls.path(&net, a, c).unwrap();
        // best is now d (5+1=6ms) over direct (10ms)
        assert_eq!(p, vec![a, d, c]);
        let _ = b;
    }

    #[test]
    fn disconnected_is_none() {
        let (mut net, [a, _, c, _]) = square();
        for i in 0..net.links().len() {
            let id = net.links()[i].id;
            net.link_mut(id).up = false;
        }
        let ls = LinkStateProtocol::spanning(&net);
        assert!(ls.path(&net, a, c).is_none());
        assert!(ls.cost(&net, a, c).is_none());
    }

    #[test]
    fn non_members_are_invisible() {
        let (net, [a, b, c, d]) = square();
        // exclude b: a must now reach c via d or the direct link
        let ls = LinkStateProtocol::new(vec![a, c, d]);
        let p = ls.path(&net, a, c).unwrap();
        assert!(!p.contains(&b));
        assert_eq!(p, vec![a, d, c]); // 6ms beats direct 10ms
    }

    #[test]
    fn install_routes_enables_forwarding() {
        let (mut net, [a, b, c, d]) = square();
        let dst_addr = Address::in_prefix(
            tussle_net::Prefix::new(0x0c000000, 16),
            1,
            AddressOrigin::ProviderIndependent,
        );
        net.node_mut(c).bind(dst_addr);
        let ls = LinkStateProtocol::spanning(&net);
        let n = ls.install_routes(&mut net, &[(tussle_net::Prefix::new(0x0c000000, 16), c)]);
        assert_eq!(n, 3, "a, b and d each get a route");
        let src_addr = Address::in_prefix(
            tussle_net::Prefix::new(0x0a000000, 16),
            1,
            AddressOrigin::ProviderIndependent,
        );
        net.node_mut(a).bind(src_addr);
        let mut rng = SimRng::seed_from_u64(1);
        let rep =
            net.send(a, Packet::new(src_addr, dst_addr, Protocol::Tcp, 1, ports::HTTP), &mut rng);
        assert!(rep.delivered);
        assert_eq!(rep.path, vec![a, b, c]);
        let _ = d;
    }

    #[test]
    fn path_to_self_is_trivial() {
        let (net, [a, ..]) = square();
        let ls = LinkStateProtocol::spanning(&net);
        assert_eq!(ls.path(&net, a, a).unwrap(), vec![a]);
        assert_eq!(ls.cost(&net, a, a).unwrap(), 0);
    }
}

//! Firewalls: "that which is not permitted is forbidden".
//!
//! §V.B of the paper distinguishes the firewall the market actually built —
//! port/protocol filters with a default-deny posture that also kills novel
//! applications — from the *trust-aware* firewall it argues for, which
//! "applies constraints based on who is communicating, as well as (or
//! instead of) what protocols are being run". Both are expressible here.
//!
//! Two visibility switches implement the paper's point about visible
//! choice: `reveals_presence` (does traceroute see this box at all?) and
//! `reveals_rules` (can an affected end user download and examine the rule
//! set? — "one way to help preserve the end-to-end character of the
//! Internet is to require that devices reveal if they impose limitations").

use crate::packet::{Packet, Protocol};
use serde::{Deserialize, Serialize};

/// What a rule matches on.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatchOn {
    /// Any packet.
    Any,
    /// The *visible* destination port equals this value. Encrypted traffic
    /// has no visible port, so port rules silently stop matching it — the
    /// start of the §VI.A escalation ladder.
    DstPort(u16),
    /// The visible destination port is one of these.
    DstPortIn(Vec<u16>),
    /// Transport protocol equals this value.
    Proto(Protocol),
    /// The packet presents an identity contained in this allow set
    /// (trust-mediated matching; identities come from `tussle-trust`).
    IdentityIn(Vec<u64>),
    /// The packet presents *some* identity (non-anonymous).
    AnyIdentity,
    /// The packet is visibly encrypted (an ISP that dislikes opacity can
    /// key on this — §VI.A).
    VisiblyEncrypted,
    /// The source address falls in this prefix (blocklisting a customer,
    /// a competitor, or a country).
    SrcInPrefix(crate::addr::Prefix),
    /// The destination address falls in this prefix (blocking access to a
    /// site — the censorship mechanism).
    DstInPrefix(crate::addr::Prefix),
}

impl MatchOn {
    /// Does this matcher hit `pkt`?
    pub fn matches(&self, pkt: &Packet) -> bool {
        match self {
            MatchOn::Any => true,
            MatchOn::DstPort(p) => pkt.visible_dst_port() == Some(*p),
            MatchOn::DstPortIn(ps) => pkt.visible_dst_port().is_some_and(|p| ps.contains(&p)),
            MatchOn::Proto(pr) => pkt.proto == *pr,
            MatchOn::IdentityIn(ids) => pkt.identity.is_some_and(|i| ids.contains(&i)),
            MatchOn::AnyIdentity => pkt.identity.is_some(),
            MatchOn::VisiblyEncrypted => pkt.visibly_encrypted(),
            MatchOn::SrcInPrefix(p) => p.contains(pkt.src.value),
            MatchOn::DstInPrefix(p) => p.contains(pkt.dst.value),
        }
    }
}

/// Rule verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FirewallAction {
    /// Let the packet through.
    Allow,
    /// Drop the packet.
    Deny,
}

/// One firewall rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FirewallRule {
    /// Matcher.
    pub matcher: MatchOn,
    /// Verdict when the matcher hits.
    pub action: FirewallAction,
    /// Who installed the rule — the §V.B "who is in charge?" tussle
    /// (end user vs. network administrator) is decided by policy, not by
    /// this crate; we only record the provenance so it can be inspected.
    pub installed_by: String,
}

/// A first-match-wins packet filter.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Firewall {
    /// Ordered rule list; first match wins.
    pub rules: Vec<FirewallRule>,
    /// Verdict when nothing matches. `Deny` is the "that which is not
    /// permitted is forbidden" posture.
    pub default_action: FirewallAction,
    /// Whether traceroute-style diagnostics can see this box.
    pub reveals_presence: bool,
    /// Whether affected users may download the rule set.
    pub reveals_rules: bool,
}

impl Firewall {
    /// An open firewall (allow-all) — the transparent Internet.
    pub fn transparent() -> Self {
        Firewall {
            rules: Vec::new(),
            default_action: FirewallAction::Allow,
            reveals_presence: true,
            reveals_rules: true,
        }
    }

    /// A default-deny firewall with an explicit allow list of ports —
    /// the classic enterprise box of §V.B.
    pub fn port_allowlist(ports: Vec<u16>, installed_by: &str) -> Self {
        Firewall {
            rules: vec![FirewallRule {
                matcher: MatchOn::DstPortIn(ports),
                action: FirewallAction::Allow,
                installed_by: installed_by.to_owned(),
            }],
            default_action: FirewallAction::Deny,
            reveals_presence: true,
            reveals_rules: false,
        }
    }

    /// A trust-mediated firewall: communication is allowed based on *who*
    /// is communicating (identity allow set), with anonymous traffic denied
    /// and no port-level constraint — the paper's proposed design.
    pub fn trust_mediated(trusted: Vec<u64>, installed_by: &str) -> Self {
        Firewall {
            rules: vec![FirewallRule {
                matcher: MatchOn::IdentityIn(trusted),
                action: FirewallAction::Allow,
                installed_by: installed_by.to_owned(),
            }],
            default_action: FirewallAction::Deny,
            reveals_presence: true,
            reveals_rules: true,
        }
    }

    /// Prepend a rule (it will be evaluated first).
    pub fn push_front(&mut self, rule: FirewallRule) {
        self.rules.insert(0, rule);
    }

    /// Append a rule.
    pub fn push(&mut self, rule: FirewallRule) {
        self.rules.push(rule);
    }

    /// Evaluate a packet: first matching rule wins, else the default.
    pub fn evaluate(&self, pkt: &Packet) -> FirewallAction {
        for rule in &self.rules {
            if rule.matcher.matches(pkt) {
                return rule.action;
            }
        }
        self.default_action
    }

    /// The rules an affected user may inspect. `None` means the operator
    /// keeps them secret — the courtesy of disclosure was declined.
    pub fn disclosed_rules(&self) -> Option<&[FirewallRule]> {
        if self.reveals_rules {
            Some(&self.rules)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Address, AddressOrigin, Prefix};
    use crate::packet::ports;

    fn addr(v: u32) -> Address {
        Address::in_prefix(Prefix::new(v, 16), 1, AddressOrigin::ProviderIndependent)
    }

    fn pkt(port: u16) -> Packet {
        Packet::new(addr(0x0a000000), addr(0x0b000000), Protocol::Tcp, 999, port)
    }

    #[test]
    fn transparent_allows_everything() {
        let fw = Firewall::transparent();
        assert_eq!(fw.evaluate(&pkt(ports::NOVEL)), FirewallAction::Allow);
        assert_eq!(fw.evaluate(&pkt(ports::P2P).encrypt()), FirewallAction::Allow);
    }

    #[test]
    fn port_allowlist_blocks_novel_applications() {
        let fw = Firewall::port_allowlist(vec![ports::HTTP, ports::SMTP], "admin");
        assert_eq!(fw.evaluate(&pkt(ports::HTTP)), FirewallAction::Allow);
        // A brand-new application is forbidden by default — the paper's
        // innovation-suppression effect.
        assert_eq!(fw.evaluate(&pkt(ports::NOVEL)), FirewallAction::Deny);
    }

    #[test]
    fn port_allowlist_cannot_see_encrypted_ports() {
        let fw = Firewall::port_allowlist(vec![ports::HTTP], "admin");
        // Even "allowed" traffic is denied once encrypted: the visible port
        // is gone, nothing matches, default-deny bites.
        assert_eq!(fw.evaluate(&pkt(ports::HTTP).encrypt()), FirewallAction::Deny);
        // ...but steganographic traffic presents as HTTP and sails through.
        assert_eq!(fw.evaluate(&pkt(ports::P2P).steganographic()), FirewallAction::Allow);
    }

    #[test]
    fn trust_mediated_keys_on_identity_not_port() {
        let fw = Firewall::trust_mediated(vec![42, 43], "end-user");
        assert_eq!(fw.evaluate(&pkt(ports::NOVEL).with_identity(42)), FirewallAction::Allow);
        assert_eq!(fw.evaluate(&pkt(ports::HTTP).with_identity(99)), FirewallAction::Deny);
        // anonymous traffic is denied
        assert_eq!(fw.evaluate(&pkt(ports::HTTP)), FirewallAction::Deny);
        // novel apps from trusted parties work even encrypted — identity
        // rides outside the encryption envelope.
        assert_eq!(
            fw.evaluate(&pkt(ports::NOVEL).with_identity(43).encrypt()),
            FirewallAction::Allow
        );
    }

    #[test]
    fn first_match_wins() {
        let mut fw = Firewall::transparent();
        fw.push(FirewallRule {
            matcher: MatchOn::DstPort(ports::P2P),
            action: FirewallAction::Deny,
            installed_by: "rights-holder lobby".into(),
        });
        assert_eq!(fw.evaluate(&pkt(ports::P2P)), FirewallAction::Deny);
        fw.push_front(FirewallRule {
            matcher: MatchOn::Any,
            action: FirewallAction::Allow,
            installed_by: "user".into(),
        });
        assert_eq!(fw.evaluate(&pkt(ports::P2P)), FirewallAction::Allow);
    }

    #[test]
    fn encryption_visibility_rule() {
        let mut fw = Firewall::transparent();
        fw.push(FirewallRule {
            matcher: MatchOn::VisiblyEncrypted,
            action: FirewallAction::Deny,
            installed_by: "state monopoly ISP".into(),
        });
        assert_eq!(fw.evaluate(&pkt(ports::HTTP).encrypt()), FirewallAction::Deny);
        // steganography defeats the encryption ban
        assert_eq!(fw.evaluate(&pkt(ports::HTTP).steganographic()), FirewallAction::Allow);
    }

    #[test]
    fn rule_disclosure() {
        let open = Firewall::trust_mediated(vec![1], "user");
        assert!(open.disclosed_rules().is_some());
        let closed = Firewall::port_allowlist(vec![80], "admin");
        assert!(closed.disclosed_rules().is_none());
    }

    #[test]
    fn any_identity_matcher() {
        let m = MatchOn::AnyIdentity;
        assert!(m.matches(&pkt(1).with_identity(5)));
        assert!(!m.matches(&pkt(1)));
    }
}

//! E15 — The rise and fall of micro-payments (§IV.C).
//!
//! Paper claim: "(There is an interesting case study in the rise and fall
//! of micro-payments, the success of the traditional credit card companies
//! for Internet payments, and the emergence of PayPal and similar
//! schemes.)" — the paper leaves the case study parenthetical; we run it.
//!
//! Measured: across payment sizes, which instrument has the lowest total
//! overhead (fees + user friction) once the §V.B requirement of buyer
//! protection is imposed. The shape of the historical outcome: pure
//! micro-payment tokens never win a protected transaction at any size;
//! account aggregation (the PayPal shape) takes the small end; percentage
//! economics decide the large end; and below the friction floor *no*
//! instrument is viable — which is why sub-cent content is sold in
//! bundles, not per item.

use tussle_core::{ExperimentReport, Table};
use tussle_econ::payments::{best_instrument, viable, Instrument};
use tussle_econ::Money;
use tussle_sim::{Ctx, Engine, SimTime};

/// Outcome at one payment size.
#[derive(Debug, Clone, PartialEq)]
pub struct PaymentPoint {
    /// Payment amount.
    pub amount: Money,
    /// Winner among buyer-protected instruments.
    pub winner_protected: Instrument,
    /// Winner with protection waived (trusted counterparty).
    pub winner_unprotected: Instrument,
    /// Overhead ratio of the protected winner.
    pub overhead_ratio: f64,
    /// Is anything viable (overhead under half the payment)?
    pub any_viable: bool,
}

/// Evaluate one payment size.
pub fn run_point(amount: Money) -> PaymentPoint {
    let winner_protected = best_instrument(amount, true);
    let winner_unprotected = best_instrument(amount, false);
    PaymentPoint {
        amount,
        winner_protected,
        winner_unprotected,
        overhead_ratio: winner_protected.overhead_ratio(amount),
        any_viable: Instrument::all().iter().any(|i| viable(*i, amount, 0.5)),
    }
}

/// The payment sizes swept, smallest first.
const SIZES: [Money; 6] = [
    Money(1_000),       // $0.001 — the micropayment dream
    Money(10_000),      // $0.01
    Money(250_000),     // $0.25 — a song snippet
    Money(1_000_000),   // $1
    Money(10_000_000),  // $10
    Money(100_000_000), // $100
];

/// World for the engine-driven replay: points settle in size order.
#[derive(Default)]
struct PaymentWorld {
    points: Vec<PaymentPoint>,
}

/// One payment size as an engine event, chaining up-market to the next.
fn run_size(w: &mut PaymentWorld, ctx: &mut Ctx<PaymentWorld>, idx: usize) {
    let amount = SIZES[idx];
    ctx.span_enter("e15.size", Some("provider"), &[("amount", &amount.to_string())]);
    let p = run_point(amount);
    ctx.span_exit(&[("winner", &format!("{:?}", p.winner_protected))]);
    w.points.push(p);
    if idx + 1 < SIZES.len() {
        let lag = SimTime::from_micros(ctx.rng.range(100..5_000u64));
        ctx.trace_fields(
            "e15.upmarket",
            Some("provider"),
            &[("lag_us", &lag.as_micros().to_string())],
            format!("{amount} settled; the market moves up a size band"),
        );
        ctx.schedule_in(lag, move |w2: &mut PaymentWorld, ctx2| {
            run_size(w2, ctx2, idx + 1);
        });
    }
}

/// Run E15 and produce the report. The instrument economics are pure; the
/// size sweep runs as one causal chain of engine events on the shared
/// clock, smallest payment first.
pub fn run(seed: u64) -> ExperimentReport {
    let mut eng = Engine::new(PaymentWorld::default(), seed);
    // The smallest size opens the chain as its root injection.
    eng.schedule_at(SimTime::ZERO, |w: &mut PaymentWorld, ctx| {
        run_size(w, ctx, 0);
    });
    eng.run_to_completion();

    let mut table = Table::new(
        "Best payment instrument by transaction size",
        &["protected winner", "unprotected winner", "overhead ratio", "viable at all"],
    );
    let points = eng.world.points;
    assert_eq!(points.len(), SIZES.len(), "every size band settles");
    for p in &points {
        table.push_row(
            &p.amount.to_string(),
            &[
                format!("{:?}", p.winner_protected),
                format!("{:?}", p.winner_unprotected),
                format!("{:.3}", p.overhead_ratio),
                p.any_viable.to_string(),
            ],
        );
    }

    // The historical shape:
    let micropayment_never_wins_protected =
        points.iter().all(|p| p.winner_protected != Instrument::Micropayment);
    let sub_cent_dead = !points[0].any_viable;
    let aggregator_takes_the_small_end = points[2].winner_protected == Instrument::Aggregator
        && points[3].winner_protected == Instrument::Aggregator;
    let overhead_falls_with_size =
        points.windows(2).all(|w| w[1].overhead_ratio <= w[0].overhead_ratio + 1e-12);
    let shape_holds = micropayment_never_wins_protected
        && sub_cent_dead
        && aggregator_takes_the_small_end
        && overhead_falls_with_size;

    ExperimentReport {
        id: "E15".into(),
        section: "IV.C".into(),
        paper_claim: "Micro-payments fell, credit-card-style protected instruments won, and \
                      PayPal-shaped aggregation emerged — value flow needs trust mediation and \
                      amortized fixed costs, not just low marginal fees."
            .into(),
        summary: format!(
            "micropayments win a protected transaction at no size; sub-cent payments are not \
             viable for any instrument (overhead ratio {:.1} at $0.001); aggregation wins from \
             $0.25 through $1; overhead falls monotonically with size.",
            points[0].overhead_ratio
        ),
        table,
        shape_holds,
        cost: None,
        scoreboard: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micropayments_never_win_when_protection_matters() {
        for amount in [Money(1_000), Money(250_000), Money::from_dollars(50)] {
            assert_ne!(run_point(amount).winner_protected, Instrument::Micropayment);
        }
    }

    #[test]
    fn sub_cent_content_is_unsellable_per_item() {
        let p = run_point(Money(1_000));
        assert!(!p.any_viable);
        assert!(p.overhead_ratio > 1.0, "overhead exceeds the payment itself");
    }

    #[test]
    fn overhead_ratio_is_monotone_decreasing() {
        let a = run_point(Money(10_000)).overhead_ratio;
        let b = run_point(Money::from_dollars(1)).overhead_ratio;
        let c = run_point(Money::from_dollars(100)).overhead_ratio;
        assert!(a > b && b > c);
    }

    #[test]
    fn report_shape_holds() {
        let r = run(1);
        assert!(r.shape_holds, "{}", r.summary);
        assert_eq!(r.table.rows.len(), 6);
    }
}

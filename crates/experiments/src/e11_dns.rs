//! E11 — DNS/trademark entanglement (§IV.A).
//!
//! Paper claim: "The current design is entangled in debate because DNS
//! names are used both to name machines and to express trademark. ...
//! names that express trademarks should be used for as little else as
//! possible. ... Solutions that are less efficient from a technical
//! perspective may do a better job of isolating the collateral damage of
//! tussle."
//!
//! Measured: the same population of registrations and the same trademark
//! disputes, run through the entangled design (names = machines +
//! trademarks) and the separated design (opaque machine ids + a directory).
//! Collateral damage = services whose *machine* resolution breaks; the
//! separated design pays for its isolation with an extra resolution step.

use tussle_core::{principles::spillover, ExperimentReport, Table};
use tussle_names::namespace::{Name, Registry};
use tussle_names::separated::{MachineId, SeparatedNaming};
use tussle_names::trademark::{DisputeProcess, Trademark};
use tussle_sim::{Engine, SimRng, SimTime};

/// Outcome for one naming design.
#[derive(Debug, Clone, PartialEq)]
pub struct NamingOutcome {
    /// Disputes adjudicated.
    pub disputes: usize,
    /// Machine-naming breakages caused by the disputes.
    pub broken_services: u64,
    /// Fraction of all services still reachable by machine identity.
    pub machine_reachability: f64,
    /// Resolution steps a human-name lookup takes.
    pub resolution_steps: usize,
}

const MARKS: [(&str, u64); 3] = [("acme", 100), ("globex", 200), ("initech", 300)];

struct Population {
    /// (full domain, owner, address, bad_faith)
    entries: Vec<(String, u64, u32, bool)>,
}

fn population(seed: u64) -> Population {
    let mut rng = SimRng::seed_from_u64(seed).fork("e11");
    let mut entries = Vec::new();
    // 3 squatters on marks, 2 good-faith same-name registrants, 15 unrelated
    for (i, (mark, _)) in MARKS.iter().enumerate() {
        entries.push((format!("{mark}.com"), 10 + i as u64, 0xA000 + i as u32, true));
    }
    entries.push(("acmefans.com".into(), 20, 0xB000, false)); // near-miss, no conflict
    entries.push(("globex.org".into(), 21, 0xB001, false)); // good-faith collision
    for i in 0..15 {
        entries.push((format!("site{i}.com"), 30 + i as u64, 0xC000 + i as u32, rng.chance(0.1)));
    }
    Population { entries }
}

/// Run the entangled (DNS-like) design.
pub fn run_entangled(seed: u64) -> NamingOutcome {
    let pop = population(seed);
    let mut reg = Registry::new();
    for (domain, owner, addr, bad_faith) in &pop.entries {
        reg.register(Name::parse(domain).unwrap(), *owner, *addr, *bad_faith).unwrap();
    }
    let total = reg.len();
    let mut dp = DisputeProcess::new(
        MARKS.iter().map(|(m, h)| Trademark { mark: (*m).into(), holder: *h }).collect(),
    );
    let disputes = dp.find_disputes(&reg);
    let n_disputes = disputes.len();
    for d in &disputes {
        dp.adjudicate(&mut reg, d, true, 0xF000);
    }
    // how many of the ORIGINAL services still resolve to their address?
    let reachable = pop
        .entries
        .iter()
        .filter(|(domain, _, addr, _)| reg.resolve(&Name::parse(domain).unwrap()) == Some(*addr))
        .count();
    NamingOutcome {
        disputes: n_disputes,
        broken_services: dp.collateral_damage,
        machine_reachability: reachable as f64 / total as f64,
        resolution_steps: 1,
    }
}

/// Run the separated design over the same population and disputes.
pub fn run_separated(seed: u64) -> NamingOutcome {
    let pop = population(seed);
    let mut s = SeparatedNaming::new();
    for (i, (domain, owner, addr, _)) in pop.entries.iter().enumerate() {
        let mid = MachineId(i as u64);
        s.machines.bind(mid, *addr);
        // the directory is claimed by the human-facing label
        s.claim(Name::parse(domain).unwrap().registrable_label(), *owner, mid);
    }
    // the same disputes: marks claimed by non-holders get repointed
    let mut disputes = 0usize;
    for (mark, holder) in MARKS {
        if let Some(owner) = s.owner_of(mark) {
            if owner != holder {
                disputes += 1;
                let holder_machine = MachineId(1000 + disputes as u64);
                s.machines.bind(holder_machine, 0xF000);
                s.adjudicate(mark, holder, holder_machine);
            }
        }
    }
    // every original machine id still resolves to its address
    let reachable = pop
        .entries
        .iter()
        .enumerate()
        .filter(|(i, (_, _, addr, _))| s.machines.resolve(MachineId(*i as u64)) == Some(*addr))
        .count();
    NamingOutcome {
        disputes,
        broken_services: 0, // measured below; machine layer is untouched
        machine_reachability: reachable as f64 / pop.entries.len() as f64,
        resolution_steps: 2,
    }
}

/// World for the engine-driven replay: settled outcomes per design.
#[derive(Default)]
struct NamingWorld {
    outcomes: Vec<(&'static str, NamingOutcome)>,
}

/// Run E11 and produce the report. The naming logic is pure; each design
/// plays as a two-event causal chain (registrations land, then — after a
/// seeded docket lag — the trademark disputes are adjudicated) on the
/// shared engine clock.
pub fn run(seed: u64) -> ExperimentReport {
    type Design = (&'static str, fn(u64) -> NamingOutcome);
    let designs: [Design; 2] = [("entangled", run_entangled), ("separated", run_separated)];
    let mut eng = Engine::new(NamingWorld::default(), seed);
    for (i, (label, design)) in designs.into_iter().enumerate() {
        // Each naming design is a root injection.
        eng.schedule_at(SimTime::from_millis(i as u64), move |_w: &mut NamingWorld, ctx| {
            ctx.span_enter("e11.register", Some("provider"), &[("design", label)]);
            let lag = SimTime::from_micros(ctx.rng.range(100..5_000u64));
            ctx.trace_fields(
                "e11.docket",
                Some("provider"),
                &[("lag_us", &lag.as_micros().to_string())],
                format!("{label} registrations land; disputes reach the docket"),
            );
            ctx.span_exit(&[]);
            ctx.schedule_in(lag, move |w2: &mut NamingWorld, ctx2| {
                ctx2.span_enter("e11.adjudicate", Some("user"), &[("design", label)]);
                let o = design(seed);
                ctx2.span_exit(&[("broken_services", &o.broken_services.to_string())]);
                w2.outcomes.push((label, o));
            });
        });
    }
    eng.run_to_completion();
    let settled = |label: &str| {
        eng.world
            .outcomes
            .iter()
            .find(|(l, _)| *l == label)
            .map(|(_, o)| o.clone())
            .expect("every design's docket clears")
    };
    let ent = settled("entangled");
    let sep = settled("separated");
    let mut table = Table::new(
        "Trademark disputes vs. machine naming (20 registrations, 3 marks)",
        &["disputes", "broken services", "machine reachability", "resolution steps"],
    );
    for (label, o) in [("entangled (DNS)", &ent), ("separated (ids + directory)", &sep)] {
        table.push_row(
            label,
            &[
                o.disputes.to_string(),
                o.broken_services.to_string(),
                format!("{:.2}", o.machine_reachability),
                o.resolution_steps.to_string(),
            ],
        );
    }
    // spillover of the trademark tussle into the machine-naming space
    let entangled_spill = spillover(1.0, ent.machine_reachability);
    let separated_spill = spillover(1.0, sep.machine_reachability);

    let shape_holds = ent.disputes >= 3
        && ent.broken_services > 0
        && ent.machine_reachability < 1.0
        && sep.machine_reachability == 1.0
        && separated_spill == 0.0
        && entangled_spill > 0.0
        && sep.resolution_steps > ent.resolution_steps;

    ExperimentReport {
        id: "E11".into(),
        section: "IV.A".into(),
        paper_claim: "Because DNS names express both machine identity and trademark, disputes \
                      break running services; separating the two confines the tussle to the \
                      directory at the cost of a less efficient (two-step) resolution."
            .into(),
        summary: format!(
            "entangled: {} disputes break {} services (reachability {:.0}%, spillover {:.2}); \
             separated: same disputes break none (reachability 100%), at {} resolution steps.",
            ent.disputes,
            ent.broken_services,
            ent.machine_reachability * 100.0,
            entangled_spill,
            sep.resolution_steps,
        ),
        table,
        shape_holds,
        cost: None,
        scoreboard: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entangled_disputes_break_services() {
        let o = run_entangled(1);
        assert!(o.disputes >= 3, "squatters + good-faith collision");
        assert!(o.broken_services > 0);
        assert!(o.machine_reachability < 1.0);
    }

    #[test]
    fn separated_design_is_collateral_free() {
        let o = run_separated(1);
        assert_eq!(o.broken_services, 0);
        assert_eq!(o.machine_reachability, 1.0);
        assert!(o.disputes > 0, "the tussle still happened — in the directory");
    }

    #[test]
    fn isolation_costs_a_resolution_step() {
        assert!(run_separated(1).resolution_steps > run_entangled(1).resolution_steps);
    }

    #[test]
    fn report_shape_holds() {
        let r = run(1);
        assert!(r.shape_holds, "{}", r.summary);
    }
}

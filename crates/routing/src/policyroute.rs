//! Policy routing: who holds the knob?
//!
//! §V.A.4: "There were two competing technical proposals answering this in
//! different ways: user control [34, Clark RFC 1102] and provider control
//! [33, Rekhter RFC 1092]. The two proposals were shown to have rough
//! equivalence in the set of expressible policies, yet from the tussle
//! viewpoint they had very different consequences. ... the user control
//! proposal required changing the data plane (IP protocol) ... provider
//! control required changing only the control plane."
//!
//! Both loci evaluate the *same* policy language over the same candidate
//! paths — that is the "rough equivalence", checkable by construction.
//! What differs is everything the paper cares about: whose policy wins
//! when they disagree, how many parties must act to change a route, and
//! what layer had to change to deploy the design.

use serde::{Deserialize, Serialize};
use tussle_net::Asn;

/// One constraint in a routing policy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PathConstraint {
    /// Reject any path crossing this AS.
    AvoidAs(Asn),
    /// Reject any path NOT crossing this AS (e.g. "must use my QoS
    /// transit").
    RequireAs(Asn),
    /// Reject paths longer than this many ASes.
    MaxLength(usize),
}

impl PathConstraint {
    /// Does a path satisfy this constraint?
    pub fn accepts(&self, path: &[Asn]) -> bool {
        match self {
            PathConstraint::AvoidAs(a) => !path.contains(a),
            PathConstraint::RequireAs(a) => path.contains(a),
            PathConstraint::MaxLength(n) => path.len() <= *n,
        }
    }
}

/// A routing policy: all constraints must hold; among acceptable paths,
/// prefer the ones listed in `preferences` (earlier = better), then
/// shortest, then lexicographic.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutePolicy {
    /// Hard constraints.
    pub constraints: Vec<PathConstraint>,
    /// Preferred transit ASes, most preferred first.
    pub preferences: Vec<Asn>,
}

impl RoutePolicy {
    /// A policy with no opinions.
    pub fn permissive() -> Self {
        RoutePolicy::default()
    }

    /// Does the policy accept a path at all?
    pub fn accepts(&self, path: &[Asn]) -> bool {
        self.constraints.iter().all(|c| c.accepts(path))
    }

    /// Preference rank: lower is better.
    fn rank(&self, path: &[Asn]) -> (usize, usize, Vec<u32>) {
        let pref = self
            .preferences
            .iter()
            .position(|a| path.contains(a))
            .unwrap_or(self.preferences.len());
        (pref, path.len(), path.iter().map(|a| a.0).collect())
    }

    /// The path this policy selects from `candidates`, if any acceptable.
    pub fn select<'a>(&self, candidates: &'a [Vec<Asn>]) -> Option<&'a Vec<Asn>> {
        candidates.iter().filter(|p| self.accepts(p)).min_by_key(|p| self.rank(p))
    }
}

/// Who applies their policy to path selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ControlLocus {
    /// The end user's policy decides (RFC 1102-style).
    UserControl,
    /// The provider's policy decides (RFC 1092/BGP-style).
    ProviderControl,
}

/// The §V.A.4 consequences of a control locus, independent of policy
/// expressiveness.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocusConsequences {
    /// How many parties must act for the *user* to get a different path.
    pub parties_to_change: usize,
    /// Did deployment require changing the data plane (every router's
    /// forwarding path)?
    pub data_plane_change: bool,
    /// Did deployment require changing only the control plane?
    pub control_plane_only: bool,
    /// Whose economic incentive drove standardization (the §V.A.4 reason
    /// provider control actually shipped).
    pub incentive_holder_deploys: bool,
}

impl ControlLocus {
    /// Select a path given both parties' policies: the locus decides whose
    /// policy applies; the other party's wishes are simply not consulted.
    pub fn select<'a>(
        &self,
        user: &RoutePolicy,
        provider: &RoutePolicy,
        candidates: &'a [Vec<Asn>],
    ) -> Option<&'a Vec<Asn>> {
        match self {
            ControlLocus::UserControl => user.select(candidates),
            ControlLocus::ProviderControl => provider.select(candidates),
        }
    }

    /// The §V.A.4 consequence table, `n_providers` deep on the path.
    pub fn consequences(&self, n_providers: usize) -> LocusConsequences {
        match self {
            ControlLocus::UserControl => LocusConsequences {
                parties_to_change: 1, // the user re-selects alone
                data_plane_change: true,
                control_plane_only: false,
                // users had no standards-body leverage in 1989
                incentive_holder_deploys: false,
            },
            ControlLocus::ProviderControl => LocusConsequences {
                // every provider on the path must agree to route differently
                parties_to_change: n_providers.max(1),
                data_plane_change: false,
                control_plane_only: true,
                // "the providers and their suppliers had the economic
                // incentive to drive the engineering and standardization"
                incentive_holder_deploys: true,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidates() -> Vec<Vec<Asn>> {
        vec![
            vec![Asn(1), Asn(10), Asn(2)],          // via cheap transit
            vec![Asn(1), Asn(20), Asn(2)],          // via premium transit
            vec![Asn(1), Asn(10), Asn(30), Asn(2)], // long detour
        ]
    }

    #[test]
    fn constraints_work() {
        let path = vec![Asn(1), Asn(10), Asn(2)];
        assert!(!PathConstraint::AvoidAs(Asn(10)).accepts(&path));
        assert!(PathConstraint::AvoidAs(Asn(99)).accepts(&path));
        assert!(PathConstraint::RequireAs(Asn(10)).accepts(&path));
        assert!(!PathConstraint::RequireAs(Asn(20)).accepts(&path));
        assert!(PathConstraint::MaxLength(3).accepts(&path));
        assert!(!PathConstraint::MaxLength(2).accepts(&path));
    }

    #[test]
    fn selection_honors_preferences_then_length() {
        let cands = candidates();
        let mut policy = RoutePolicy::permissive();
        assert_eq!(policy.select(&cands).unwrap(), &vec![Asn(1), Asn(10), Asn(2)]);
        policy.preferences = vec![Asn(20)];
        assert_eq!(policy.select(&cands).unwrap(), &vec![Asn(1), Asn(20), Asn(2)]);
    }

    #[test]
    fn unsatisfiable_policies_select_nothing() {
        let policy = RoutePolicy {
            constraints: vec![PathConstraint::RequireAs(Asn(99))],
            preferences: vec![],
        };
        let cands = candidates();
        assert_eq!(policy.select(&cands), None);
    }

    #[test]
    fn expressive_equivalence_of_the_two_proposals() {
        // "rough equivalence in the set of expressible policies": the SAME
        // policy object produces the SAME selection whichever locus runs it.
        let policy = RoutePolicy {
            constraints: vec![PathConstraint::AvoidAs(Asn(10))],
            preferences: vec![Asn(20)],
        };
        let cands = candidates();
        let as_user = ControlLocus::UserControl.select(&policy, &RoutePolicy::permissive(), &cands);
        let as_provider =
            ControlLocus::ProviderControl.select(&RoutePolicy::permissive(), &policy, &cands);
        assert_eq!(as_user, as_provider);
        assert_eq!(as_user.unwrap(), &vec![Asn(1), Asn(20), Asn(2)]);
    }

    #[test]
    fn the_locus_decides_whose_interests_win() {
        // user wants the premium transit; provider wants the cheap one
        let user = RoutePolicy { constraints: vec![], preferences: vec![Asn(20)] };
        let provider = RoutePolicy { constraints: vec![], preferences: vec![Asn(10)] };
        let cands = candidates();
        let under_user = ControlLocus::UserControl.select(&user, &provider, &cands);
        let under_provider = ControlLocus::ProviderControl.select(&user, &provider, &cands);
        assert_eq!(under_user.unwrap(), &vec![Asn(1), Asn(20), Asn(2)]);
        assert_eq!(under_provider.unwrap(), &vec![Asn(1), Asn(10), Asn(2)]);
        assert_ne!(under_user, under_provider, "same candidates, different winners");
    }

    #[test]
    fn consequences_differ_exactly_as_the_paper_says() {
        let u = ControlLocus::UserControl.consequences(3);
        let p = ControlLocus::ProviderControl.consequences(3);
        // the user acts alone vs. convincing every provider on the path
        assert_eq!(u.parties_to_change, 1);
        assert_eq!(p.parties_to_change, 3);
        // deployment burden flipped the outcome in 1989
        assert!(u.data_plane_change && !p.data_plane_change);
        assert!(p.control_plane_only);
        assert!(p.incentive_holder_deploys && !u.incentive_holder_deploys);
    }
}

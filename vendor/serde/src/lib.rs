//! Offline vendored serde facade.
//!
//! The build environment cannot reach crates.io, so the workspace ships a
//! small self-consistent replacement for the serde surface it uses:
//! `#[derive(Serialize, Deserialize)]` plus JSON via the sibling
//! `serde_json` vendor crate. The data model is a concrete [`Value`] tree
//! rather than upstream's visitor architecture — [`Serialize`] lowers a type
//! into a `Value`, [`Deserialize`] lifts it back. Round-trips through the
//! vendored `serde_json` are exact for every type in this workspace; the
//! wire format for plain structs, unit enums and primitives is ordinary
//! JSON, identical to upstream serde's output.
//!
//! Intentional simplifications (documented, not accidental):
//! * maps serialize as arrays of `[key, value]` pairs unless the key is a
//!   string, so non-string map keys survive round-trips;
//! * non-finite floats serialize as `null` (upstream errors instead);
//! * no `#[serde(...)]` attributes — no type in this workspace uses them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

pub use serde_derive::{Deserialize, Serialize};

/// The serialization data model: a JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / unit.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer (negative integers land here).
    I64(i64),
    /// Unsigned integer (non-negative integers land here).
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Value>),
    /// Ordered key/value map (preserves insertion order for deterministic
    /// output).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up a map entry by key.
    pub fn field(&self, name: &str) -> Result<&Value, DeError> {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| DeError(format!("missing field `{name}`"))),
            other => {
                Err(DeError(format!("expected map with field `{name}`, found {}", other.kind())))
            }
        }
    }

    /// Sequence element by index.
    pub fn item(&self, idx: usize) -> Result<&Value, DeError> {
        match self {
            Value::Seq(items) => {
                items.get(idx).ok_or_else(|| DeError(format!("missing sequence element {idx}")))
            }
            other => Err(DeError(format!("expected sequence, found {}", other.kind()))),
        }
    }

    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) => "integer",
            Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// A deserialization failure with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl core::fmt::Display for DeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can lower themselves into a [`Value`].
pub trait Serialize {
    /// Produce the value-tree form.
    fn to_value(&self) -> Value;
}

/// Types that can lift themselves back out of a [`Value`].
pub trait Deserialize: Sized {
    /// Parse from the value-tree form.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, found {}", other.kind()))),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    other => {
                        return Err(DeError(format!(
                            "expected unsigned integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range for i64")))?,
                    other => {
                        return Err(DeError(format!(
                            "expected integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if self.is_finite() {
                    Value::F64(*self as f64)
                } else {
                    Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::F64(x) => Ok(*x as $t),
                    Value::I64(n) => Ok(*n as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(DeError(format!(
                        "expected number, found {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(DeError(format!("expected single-char string, found {}", other.kind()))),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(_: &Value) -> Result<Self, DeError> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError(format!("expected sequence, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + core::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|got| DeError(format!("expected {N} elements, found {}", got.len())))
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::from_value(v).map(Vec::into_iter).map(FromIterator::from_iter)
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::from_value(v).map(Vec::into_iter).map(FromIterator::from_iter)
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        // Deterministic output requires a stable order; sort the rendered
        // element values lexicographically by their debug-free value form.
        let mut items: Vec<Value> = self.iter().map(Serialize::to_value).collect();
        items.sort_by_key(value_sort_key);
        Value::Seq(items)
    }
}

impl<T: Deserialize + Eq + core::hash::Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::from_value(v).map(Vec::into_iter).map(FromIterator::from_iter)
    }
}

fn value_sort_key(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::U64(n) => format!("{n:020}"),
        Value::I64(n) => format!("{n:+020}"),
        other => format!("{other:?}"),
    }
}

/// Map keys that can round-trip through a plain JSON object key.
pub trait StringKey: Sized {
    /// Render the key.
    fn to_key(&self) -> String;
    /// Parse the key back.
    fn from_key(key: &str) -> Result<Self, DeError>;
}

impl StringKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, DeError> {
        Ok(key.to_owned())
    }
}

macro_rules! int_string_key {
    ($($ty:ty)*) => {$(
        impl StringKey for $ty {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, DeError> {
                key.parse().map_err(|_| {
                    DeError(format!(
                        "invalid {} map key `{key}`",
                        stringify!($ty)
                    ))
                })
            }
        }
    )*};
}

int_string_key!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize char);

// Tuple keys render as comma-joined parts; parts therefore must not
// themselves contain commas (integers and chars never do).
impl<A: StringKey, B: StringKey> StringKey for (A, B) {
    fn to_key(&self) -> String {
        format!("{},{}", self.0.to_key(), self.1.to_key())
    }
    fn from_key(key: &str) -> Result<Self, DeError> {
        let (a, b) =
            key.split_once(',').ok_or_else(|| DeError(format!("invalid pair map key `{key}`")))?;
        Ok((A::from_key(a)?, B::from_key(b)?))
    }
}

impl<K: StringKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect())
    }
}

impl<K: StringKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => {
                entries.iter().map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?))).collect()
            }
            other => Err(DeError(format!("expected map, found {}", other.kind()))),
        }
    }
}

impl<K: StringKey, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect();
        entries.sort_by(|(a, _), (b, _)| a.cmp(b));
        Value::Map(entries)
    }
}

impl<K: StringKey + Eq + core::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => {
                entries.iter().map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?))).collect()
            }
            other => Err(DeError(format!("expected map, found {}", other.kind()))),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                Ok(($($t::from_value(v.item($n)?)?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-9i64).to_value()).unwrap(), -9);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
        let m: BTreeMap<String, u64> = [("a".to_string(), 1u64)].into_iter().collect();
        assert_eq!(BTreeMap::<String, u64>::from_value(&m.to_value()).unwrap(), m);
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&o.to_value()).unwrap(), None);
        let t = (1u8, "x".to_string(), true);
        assert_eq!(<(u8, String, bool)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn range_errors_are_reported() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u32::from_value(&Value::I64(-1)).is_err());
        assert!(bool::from_value(&Value::U64(1)).is_err());
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f64::NAN.to_value(), Value::Null);
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
    }
}

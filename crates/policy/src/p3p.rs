//! P3P-shaped privacy preference matching.
//!
//! §II.B's first example of a policy language is P3P: sites *declare*
//! their data practices, user agents hold *preferences*, and the match is
//! computed mechanically before any data flows. Like the paper says of
//! policy languages generally, this resolves nothing — a site can declare
//! falsely, which is why [`crate::engine`]'s trust machinery and
//! `tussle-trust`'s mediators exist — but it makes the tussle explicit
//! and machine-checkable.

use serde::{Deserialize, Serialize};

/// Categories of data a site may collect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DataCategory {
    /// Click/visit behaviour.
    Clickstream,
    /// Name, address, e-mail.
    Contact,
    /// Payment instruments.
    Financial,
    /// Physical location.
    Location,
    /// Health-related data.
    Health,
}

/// What the site does with collected data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Purpose {
    /// Needed to deliver the service itself.
    ServiceDelivery,
    /// Site analytics and improvement.
    Analytics,
    /// Marketing back to the user.
    Marketing,
    /// Sale or sharing with third parties.
    ThirdPartySharing,
}

/// How long data is kept.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Retention {
    /// Discarded at session end.
    Session,
    /// Kept for a bounded period.
    Bounded,
    /// Kept forever.
    Indefinite,
}

/// One declared practice: category × purpose × retention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Practice {
    /// What is collected.
    pub category: DataCategory,
    /// Why.
    pub purpose: Purpose,
    /// For how long.
    pub retention: Retention,
}

/// A site's declared privacy policy.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SitePolicy {
    /// Declared practices.
    pub practices: Vec<Practice>,
}

impl SitePolicy {
    /// A policy declaring the given practices.
    pub fn new(practices: Vec<Practice>) -> Self {
        SitePolicy { practices }
    }
}

/// The user agent's standing preferences.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserPreferences {
    /// Categories the user refuses to share at all.
    pub forbidden_categories: Vec<DataCategory>,
    /// Purposes the user refuses for any category.
    pub forbidden_purposes: Vec<Purpose>,
    /// The longest retention the user tolerates.
    pub max_retention: Retention,
}

impl UserPreferences {
    /// A permissive profile (accepts anything).
    pub fn permissive() -> Self {
        UserPreferences {
            forbidden_categories: Vec::new(),
            forbidden_purposes: Vec::new(),
            max_retention: Retention::Indefinite,
        }
    }

    /// A conservative profile: no financial/health sharing, no third-party
    /// sale, bounded retention.
    pub fn conservative() -> Self {
        UserPreferences {
            forbidden_categories: vec![DataCategory::Financial, DataCategory::Health],
            forbidden_purposes: vec![Purpose::ThirdPartySharing],
            max_retention: Retention::Bounded,
        }
    }
}

/// The verdict for one declared practice.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mismatch {
    /// The category is forbidden outright.
    ForbiddenCategory(DataCategory),
    /// The purpose is forbidden.
    ForbiddenPurpose(Purpose),
    /// Retention exceeds the tolerated maximum.
    RetentionTooLong {
        /// What the site declared.
        declared: Retention,
        /// The user's cap.
        tolerated: Retention,
    },
}

/// Evaluate a site policy against user preferences; empty result = accept.
pub fn evaluate(site: &SitePolicy, prefs: &UserPreferences) -> Vec<Mismatch> {
    let mut out = Vec::new();
    for p in &site.practices {
        if prefs.forbidden_categories.contains(&p.category) {
            out.push(Mismatch::ForbiddenCategory(p.category));
        }
        if prefs.forbidden_purposes.contains(&p.purpose) {
            out.push(Mismatch::ForbiddenPurpose(p.purpose));
        }
        if p.retention > prefs.max_retention {
            out.push(Mismatch::RetentionTooLong {
                declared: p.retention,
                tolerated: prefs.max_retention,
            });
        }
    }
    out
}

/// Would the user agent proceed?
pub fn acceptable(site: &SitePolicy, prefs: &UserPreferences) -> bool {
    evaluate(site, prefs).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shop() -> SitePolicy {
        SitePolicy::new(vec![
            Practice {
                category: DataCategory::Contact,
                purpose: Purpose::ServiceDelivery,
                retention: Retention::Bounded,
            },
            Practice {
                category: DataCategory::Clickstream,
                purpose: Purpose::Analytics,
                retention: Retention::Session,
            },
        ])
    }

    #[test]
    fn benign_site_passes_conservative_prefs() {
        assert!(acceptable(&shop(), &UserPreferences::conservative()));
    }

    #[test]
    fn third_party_sharing_is_caught() {
        let mut site = shop();
        site.practices.push(Practice {
            category: DataCategory::Contact,
            purpose: Purpose::ThirdPartySharing,
            retention: Retention::Bounded,
        });
        let mismatches = evaluate(&site, &UserPreferences::conservative());
        assert_eq!(mismatches, vec![Mismatch::ForbiddenPurpose(Purpose::ThirdPartySharing)]);
        assert!(acceptable(&site, &UserPreferences::permissive()));
    }

    #[test]
    fn retention_ordering_is_meaningful() {
        assert!(Retention::Session < Retention::Bounded);
        assert!(Retention::Bounded < Retention::Indefinite);
        let mut site = shop();
        site.practices[0].retention = Retention::Indefinite;
        let mismatches = evaluate(&site, &UserPreferences::conservative());
        assert_eq!(
            mismatches,
            vec![Mismatch::RetentionTooLong {
                declared: Retention::Indefinite,
                tolerated: Retention::Bounded
            }]
        );
    }

    #[test]
    fn forbidden_categories_block_even_service_delivery() {
        let site = SitePolicy::new(vec![Practice {
            category: DataCategory::Health,
            purpose: Purpose::ServiceDelivery,
            retention: Retention::Session,
        }]);
        let mismatches = evaluate(&site, &UserPreferences::conservative());
        assert_eq!(mismatches, vec![Mismatch::ForbiddenCategory(DataCategory::Health)]);
    }

    #[test]
    fn one_practice_can_mismatch_multiple_ways() {
        let site = SitePolicy::new(vec![Practice {
            category: DataCategory::Financial,
            purpose: Purpose::ThirdPartySharing,
            retention: Retention::Indefinite,
        }]);
        assert_eq!(evaluate(&site, &UserPreferences::conservative()).len(), 3);
    }

    #[test]
    fn empty_policy_is_always_acceptable() {
        assert!(acceptable(&SitePolicy::default(), &UserPreferences::conservative()));
    }
}

//! Two more §V.A mechanisms working end to end: multihoming (the paper's
//! "improve choice in multihomed machines") and auctioning scarce premium
//! capacity with the truthful mechanism (§II.B applied to §VII's problem).

use tussle::econ::{AccountId, Ledger, Money};
use tussle::game::vcg::{run_vcg, vcg_utility};
use tussle::net::addr::{Address, AddressOrigin, Asn, Prefix};
use tussle::net::packet::{ports, Packet, Protocol};
use tussle::net::Network;
use tussle::sim::{SimRng, SimTime};

/// A host homed to two providers keeps working when either one fails —
/// "Addresses should reflect connectivity, not identity ... improve choice
/// in multihomed machines" (§V.A.1).
#[test]
fn multihomed_host_survives_either_provider_failing() {
    let mut net = Network::new();
    let host = net.add_host(Asn(1));
    let isp_a = net.add_router(Asn(10));
    let isp_b = net.add_router(Asn(20));
    let remote = net.add_host(Asn(2));
    let la = net.connect(host, isp_a, SimTime::from_millis(5), 1_000_000_000);
    let lb = net.connect(host, isp_b, SimTime::from_millis(8), 1_000_000_000);
    net.connect(isp_a, remote, SimTime::from_millis(10), 1_000_000_000);
    net.connect(isp_b, remote, SimTime::from_millis(10), 1_000_000_000);

    // one address per provider: the multihomed host holds both
    let a_addr = Address::in_prefix(
        Prefix::new(0x0a010000, 16),
        1,
        AddressOrigin::ProviderAssigned(Asn(10)),
    );
    let b_addr = Address::in_prefix(
        Prefix::new(0x1401_0000, 16),
        1,
        AddressOrigin::ProviderAssigned(Asn(20)),
    );
    net.node_mut(host).bind(a_addr);
    net.node_mut(host).bind(b_addr);
    let r_addr =
        Address::in_prefix(Prefix::new(0x0b010000, 16), 1, AddressOrigin::ProviderAssigned(Asn(2)));
    net.node_mut(remote).bind(r_addr);
    let rp = Prefix::new(0x0b010000, 16);
    // the host's own FIB holds one route per uplink; metric prefers A
    net.fib_mut(host).install(rp, isp_a, 0);
    net.fib_mut(isp_a).install(rp, remote, 0);
    net.fib_mut(isp_b).install(rp, remote, 0);

    let mut rng = SimRng::seed_from_u64(4);
    let via_a =
        net.send(host, Packet::new(a_addr, r_addr, Protocol::Tcp, 1, ports::HTTP), &mut rng);
    assert!(via_a.delivered);
    assert!(via_a.path.contains(&isp_a));

    // provider A dies; the host switches source address AND uplink —
    // no renumbering of anything else required
    net.link_mut(la).up = false;
    net.fib_mut(host).withdraw_via(isp_a);
    net.fib_mut(host).install(rp, isp_b, 0);
    let via_b =
        net.send(host, Packet::new(b_addr, r_addr, Protocol::Tcp, 1, ports::HTTP), &mut rng);
    assert!(via_b.delivered, "{via_b:?}");
    assert!(via_b.path.contains(&isp_b));
    let _ = lb;
}

/// Premium-slot allocation by truthful auction: the §II.B mechanism-design
/// answer to "who gets the k premium slots", settled through the §IV.C
/// value-flow ledger.
#[test]
fn premium_slots_allocated_by_vcg_and_settled_on_the_ledger() {
    // five customers value a premium slot differently; two slots exist
    let values = [30.0, 80.0, 55.0, 20.0, 70.0];
    // Vickrey logic: everyone bids their true value — deviations don't pay
    let outcome = run_vcg(2, &values);
    assert_eq!(outcome.winners, vec![1, 4], "the two highest-value customers win");
    assert_eq!(outcome.price, 55.0, "both pay the highest losing bid");

    // winners strictly gain; the mechanism never charges above value
    for (i, v) in values.iter().enumerate() {
        let u = vcg_utility(&outcome, i, *v);
        if outcome.winners.contains(&i) {
            assert!(u > 0.0);
        } else {
            assert_eq!(u, 0.0);
        }
    }

    // settle through the ledger: value flows from winners to the ISP
    let mut ledger = Ledger::new();
    let isp = AccountId(100);
    ledger.open(isp);
    for i in 0..values.len() as u64 {
        ledger.open(AccountId(i));
        ledger.mint(AccountId(i), Money::from_dollars(100));
    }
    let price = Money::from_dollars(outcome.price as i64);
    for w in &outcome.winners {
        ledger
            .transfer(AccountId(*w as u64), isp, price, "premium slot (VCG)")
            .expect("winners are funded");
    }
    assert_eq!(ledger.total_received(isp), Money::from_dollars(110));
    assert!(ledger.is_conserving());
    // the ISP got paid — the §VII greed condition — through an auction
    // nobody could game — the §II.B tussle-free information sub-game.
}

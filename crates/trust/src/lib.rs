//! # tussle-trust — identity, trust and third-party mediation
//!
//! §V.B: "One of the most profound and irreversible changes in the Internet
//! is that by and large, many of the users do not trust each other. ...
//! mechanisms that regulate interaction on the basis of mutual trust should
//! be a fundamental part of the Internet of tomorrow."
//!
//! * [`identity`] — an identity *framework*, not a single scheme: the
//!   paper explicitly rejects "a global namespace of Internet users" in
//!   favour of "a framework that translates these diverse ways into lower
//!   level network actions" (§V.B.1). Anonymous, pseudonymous, certified
//!   and role identities all translate to (or refuse to produce) the
//!   network-level identity tag middleboxes read.
//! * [`trustgraph`] — pairwise trust with decaying transitive derivation;
//!   the substrate for "choose with whom they interact".
//! * [`mediator`] — third parties that "mediate and enhance the assurance
//!   that things are going to go right": escrow with a liability cap (the
//!   credit-card $50 rule), reputation services, certifiers. The §V.B
//!   principle that parties must be able to *choose* their mediators is a
//!   constructor argument, not a constant.
//! * [`negotiation`] — the MIDCOM-shaped protocol between an end node and
//!   a firewall control point, including the "who is in charge?" tussle
//!   (user vs. administrator) and rule disclosure.
//!
//! ## Example
//!
//! ```
//! use tussle_trust::TrustGraph;
//!
//! let mut graph = TrustGraph::new(0.5);
//! graph.trust(1, 2, 1.0);
//! graph.trust(2, 3, 1.0);
//! // transitive trust decays per hop
//! assert_eq!(graph.derived(1, 3, 4), 0.5);
//! assert_eq!(graph.trusted_set(1, 0.4, 4), vec![2, 3]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod identity;
pub mod intermediary;
pub mod mediator;
pub mod negotiation;
pub mod trustgraph;

pub use identity::{AnonymityPolicy, IdentityFramework, IdentityScheme};
pub use intermediary::{ConsentRule, Intermediary, Session};
pub use mediator::{Mediator, TransactionOutcome, TransactionSetup};
pub use negotiation::{ControlPoint, NegotiationError, PinholeRequest};
pub use trustgraph::TrustGraph;

//! # tussle-experiments — the evaluation the paper never ran
//!
//! The paper is a position paper: it narrates scenarios and predicts their
//! qualitative shape. Every module here turns one narrated scenario into a
//! parameterized, seeded, reproducible experiment whose output is a table
//! plus a machine-checked "does the shape hold?" verdict. `EXPERIMENTS.md`
//! records paper-claim vs. measured for all of them; the bench crate
//! regenerates each table.
//!
//! | Id | Section | Scenario |
//! |----|---------|----------|
//! | E1 | §V.A.1 | Provider lock-in from IP addressing |
//! | E2 | §V.A.2 | Value pricing vs. tunneling |
//! | E3 | §V.A.3 | Residential broadband market structure |
//! | E4 | §V.A.4 | Provider routing vs. paid source routing |
//! | E5 | §V.A.4 | Overlays as a tussle tool |
//! | E6 | §V.B   | Firewalls: protection vs. innovation |
//! | E7 | §V.B   | Third-party mediation |
//! | E8 | §V.B.1 | Anonymity vs. accountability |
//! | E9 | §VI.A  | The encryption escalation ladder |
//! | E10| §VII   | The QoS deployment post-mortem |
//! | E11| §IV.A  | DNS/trademark entanglement |
//! | E12| §II.C  | Actor-network churn and freezing |
//! | E13| §IV.A  | Tussle-isolation ablation (ToS vs. port QoS) |
//! | E14| §II.B  | Game-theoretic substrate validation |
//! | E15| §IV.C  | The rise and fall of micro-payments |
//! | E16| §VII   | The multicast post-mortem (the paper's "exercise for the reader") |
//! | E17| §II.B  | Routing in an uncooperative network (Perlman exclusion + Savage traceback) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod causality;
pub mod chaos;
pub mod e01_lockin;
pub mod e02_value_pricing;
pub mod e03_broadband;
pub mod e04_source_routing;
pub mod e05_overlay;
pub mod e06_firewalls;
pub mod e07_mediation;
pub mod e08_identity;
pub mod e09_encryption;
pub mod e10_qos;
pub mod e11_dns;
pub mod e12_actor_network;
pub mod e13_isolation;
pub mod e14_games;
pub mod e15_micropayments;
pub mod e16_multicast;
pub mod e17_uncooperative;
pub mod fuzz;
pub mod recovery;
pub mod scale;
pub mod sweep;

pub use causality::{diff, explain, CausalityError, DiffConfig, DiffReport, Explanation};
pub use chaos::{run_chaos, run_chaos_entries, ChaosConfig, ChaosError};
pub use fuzz::{
    run_fuzz, CorpusEntry, Element, FuzzConfig, FuzzError, FuzzReport, Scenario, ORACLES,
};
pub use recovery::{
    resume_from_snapshot, run_recovery, run_recovery_entries, RecoveryConfig, RecoveryError,
    ResumeOutcome,
};
pub use scale::{Routing, ScaleOutcome, ScaleWorkload};
pub use sweep::{run_sweep, SweepConfig, SweepError};

use tussle_core::{ExperimentReport, RunCost, Table};
use tussle_sim::obs;
use tussle_sim::RunRecord;

pub mod profile;

pub use profile::{export_records, trace_dump, trace_json, ProfileReport, TraceDump, TraceJson};

/// One registry entry: the experiment id and its runner.
pub type ExperimentEntry = (&'static str, fn(u64) -> ExperimentReport);

/// The experiment registry: id-ordered `(name, runner)` pairs.
pub fn registry() -> Vec<ExperimentEntry> {
    vec![
        ("E1", e01_lockin::run),
        ("E2", e02_value_pricing::run),
        ("E3", e03_broadband::run),
        ("E4", e04_source_routing::run),
        ("E5", e05_overlay::run),
        ("E6", e06_firewalls::run),
        ("E7", e07_mediation::run),
        ("E8", e08_identity::run),
        ("E9", e09_encryption::run),
        ("E10", e10_qos::run),
        ("E11", e11_dns::run),
        ("E12", e12_actor_network::run),
        ("E13", e13_isolation::run),
        ("E14", e14_games::run),
        ("E15", e15_micropayments::run),
        ("E16", e16_multicast::run),
        ("E17", e17_uncooperative::run),
    ]
}

/// The deterministic [`RunCost`] view of an observation record (wall time
/// and per-topic attribution are deliberately left behind).
fn cost_of(record: &RunRecord) -> RunCost {
    RunCost {
        events: record.events,
        rng_draws: record.rng_draws,
        forwards: record.forwards,
        spans: record.spans_entered,
        trace_entries: record.trace_entries,
        digest: record.digest.to_hex(),
        series: record.series.clone(),
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Run one experiment with panic isolation: a panicking run becomes a
/// synthetic failing [`ExperimentReport`] (see [`panic_report`]) instead of
/// unwinding into the caller. The run executes inside a cost-mode
/// observation scope, so the report carries its [`RunCost`] appendix
/// (panicked runs carry none — their cost is not trustworthy). Returns the
/// report plus whether it panicked.
pub(crate) fn run_isolated(
    name: &str,
    run: fn(u64) -> ExperimentReport,
    seed: u64,
) -> (ExperimentReport, bool) {
    match std::panic::catch_unwind(move || {
        let guard = obs::begin(obs::ObsMode::Cost);
        let report = run(seed);
        (report, guard.finish())
    }) {
        Ok((mut report, record)) => {
            report.cost = Some(cost_of(&record));
            report.scoreboard = tussle_core::Scoreboard::from_record(&record);
            (report, false)
        }
        Err(payload) => (panic_report(name, seed, &panic_message(payload)), true),
    }
}

/// Run one experiment under a Profile-mode observation scope, with panic
/// isolation. Returns the report (with its cost appendix) and the full
/// [`RunRecord`] — per-topic attribution, wall time and the captured trace
/// ring — for `tussle-cli profile` / `tussle-cli trace`.
pub fn run_profiled(
    name: &str,
    run: fn(u64) -> ExperimentReport,
    seed: u64,
) -> (ExperimentReport, RunRecord) {
    let guard = obs::begin(obs::ObsMode::Profile);
    let (report, panicked) = match std::panic::catch_unwind(move || run(seed)) {
        Ok(report) => (report, false),
        Err(payload) => (panic_report(name, seed, &panic_message(payload)), true),
    };
    let record = guard.finish();
    let mut report = report;
    if !panicked {
        report.cost = Some(cost_of(&record));
        report.scoreboard = tussle_core::Scoreboard::from_record(&record);
    }
    (report, record)
}

/// Run one experiment, converting a panic into a structured failing report.
pub fn run_captured(name: &str, run: fn(u64) -> ExperimentReport, seed: u64) -> ExperimentReport {
    run_isolated(name, run, seed).0
}

/// The synthetic report a panicked run reduces to: `shape_holds == false`
/// with the panic message preserved, so campaigns and sweeps complete and
/// the failure stays diagnosable instead of aborting the whole process.
pub fn panic_report(id: &str, seed: u64, message: &str) -> ExperimentReport {
    let mut table = Table::new("run aborted by panic", &["detail"]);
    table.push_row("panic", &[message.to_owned()]);
    ExperimentReport {
        id: id.to_owned(),
        section: "—".to_owned(),
        paper_claim: "(run panicked before producing a claim)".to_owned(),
        table,
        shape_holds: false,
        summary: format!("PANIC (seed {seed}): {message}"),
        cost: None,
        scoreboard: None,
    }
}

/// Run every experiment concurrently (one scoped thread each) and return
/// the reports in id order. Determinism is unaffected: each experiment is
/// seeded independently and never shares mutable state. A panicking
/// experiment yields its [`panic_report`] instead of poisoning the batch.
pub fn run_all_parallel(seed: u64) -> Vec<ExperimentReport> {
    let reg = registry();
    std::thread::scope(|scope| {
        let handles: Vec<_> = reg
            .iter()
            .map(|(name, run)| scope.spawn(move || run_captured(name, *run, seed)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker threads do not panic")).collect()
    })
}

/// Run every experiment with one seed; returns the reports in id order.
/// Each run is observed and panic-isolated exactly like the parallel
/// runner, so the two produce identical reports (cost appendix included).
pub fn run_all(seed: u64) -> Vec<ExperimentReport> {
    registry().into_iter().map(|(name, run)| run_captured(name, run, seed)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_experiments_run_and_hold_shape() {
        let reports = run_all(42);
        assert_eq!(reports.len(), 17);
        for r in &reports {
            assert!(r.shape_holds, "{}: shape failed — {}", r.id, r.summary);
            assert!(!r.table.rows.is_empty(), "{} produced no rows", r.id);
        }
    }

    #[test]
    fn parallel_runner_matches_sequential() {
        let seq = run_all(11);
        let par = run_all_parallel(11);
        assert_eq!(seq, par);
    }

    #[test]
    fn experiments_are_deterministic() {
        let a = run_all(7);
        let b = run_all(7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y, "{} not deterministic", x.id);
        }
    }

    #[test]
    fn every_report_carries_a_cost_appendix() {
        for r in run_all(2002) {
            let cost = r.cost.as_ref().unwrap_or_else(|| panic!("{} has no cost", r.id));
            assert_eq!(cost.digest.len(), 16, "{}: digest '{}'", r.id, cost.digest);
            assert!(
                cost.digest.chars().all(|c| c.is_ascii_hexdigit()),
                "{}: digest '{}' is not hex",
                r.id,
                cost.digest
            );
            // The appendix must render into the markdown the goldens lock.
            assert!(r.to_markdown().contains(&cost.digest), "{}: cost line missing", r.id);
        }
    }

    #[test]
    fn cost_digests_are_stable_across_runs() {
        let a: Vec<_> = run_all(9).into_iter().map(|r| (r.id.clone(), r.cost)).collect();
        let b: Vec<_> = run_all(9).into_iter().map(|r| (r.id.clone(), r.cost)).collect();
        assert_eq!(a, b);
    }
}

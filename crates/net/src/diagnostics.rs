//! Fault isolation and error reporting.
//!
//! §VI.A: "Failures of transparency will occur — design what happens then.
//! ... Tools for fault isolation and error reporting would help — the hard
//! challenge is not so much to find the fault but to report the problem to
//! the right person in the right language. ... Of course, some devices that
//! impair transparency may intentionally give no error information or even
//! reveal their presence, and that must be taken into account in design of
//! diagnostic tools."
//!
//! [`traceroute`] walks the path a packet would take and reports each hop,
//! honoring middlebox concealment; [`blame`] converts a failed
//! [`DeliveryReport`] into a report naming the responsible party when the
//! responsible device chose to be visible, and an honest "concealed
//! device" answer when it did not.

use crate::network::{DeliveryReport, DropReason, Network};
use crate::node::NodeId;
use crate::packet::Packet;
use serde::{Deserialize, Serialize};
use tussle_sim::SimRng;

/// How a hop appears to the measuring user.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HopVisibility {
    /// An ordinary node that answers probes.
    Visible,
    /// A device is there but conceals itself; the probe sees a silent gap.
    Concealed,
}

/// One traceroute hop.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HopReport {
    /// The node, when visible.
    pub node: Option<NodeId>,
    /// AS of the node, when visible.
    pub asn: Option<u32>,
    /// Visibility of this hop.
    pub visibility: HopVisibility,
}

/// Walk the path `probe` would take and report every hop.
///
/// A node with a firewall whose `reveals_presence` is false appears as a
/// concealed hop: the user can tell *something* is there by counting, but
/// not what or whose it is.
pub fn traceroute(
    net: &mut Network,
    from: NodeId,
    probe: Packet,
    rng: &mut SimRng,
) -> Vec<HopReport> {
    let rep = net.send(from, probe, rng);
    rep.path
        .iter()
        .map(|&n| {
            let concealed = net.firewall(n).map(|fw| !fw.reveals_presence).unwrap_or(false);
            if concealed {
                HopReport { node: None, asn: None, visibility: HopVisibility::Concealed }
            } else {
                HopReport {
                    node: Some(n),
                    asn: Some(net.node(n).asn.0),
                    visibility: HopVisibility::Visible,
                }
            }
        })
        .collect()
}

/// Who (if anyone) a failure can be pinned on, and in what language.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlameReport {
    /// The node responsible, when identifiable.
    pub responsible_node: Option<NodeId>,
    /// The AS responsible, when identifiable.
    pub responsible_asn: Option<u32>,
    /// Whether the responsible device concealed itself.
    pub concealed: bool,
    /// A human-language account suitable for "the right person".
    pub message: String,
}

/// Turn a failed delivery into an actionable report.
///
/// Returns `None` for deliveries that succeeded (nothing to blame).
pub fn blame(net: &Network, report: &DeliveryReport) -> Option<BlameReport> {
    let (node, reason) = report.drop?;
    let asn = net.node(node).asn.0;
    let (concealed, responsible_node, responsible_asn, message) = match reason {
        DropReason::FirewallDenied => {
            let fw = net.firewall(node);
            let hidden = fw.map(|f| !f.reveals_presence).unwrap_or(false);
            if hidden {
                (
                    true,
                    None,
                    None,
                    "a device on the path blocked this traffic and concealed itself; \
                     contact your provider and ask what is deployed between you and the destination"
                        .to_owned(),
                )
            } else {
                let by = fw
                    .and_then(|f| f.rules.first().map(|r| r.installed_by.clone()))
                    .unwrap_or_else(|| "unknown operator".to_owned());
                (
                    false,
                    Some(node),
                    Some(asn),
                    format!(
                        "firewall at {node} (AS{asn}, rules installed by {by}) denied the traffic; \
                         ask that operator for an exception or choose a path avoiding AS{asn}"
                    ),
                )
            }
        }
        DropReason::NoRoute => (
            false,
            Some(node),
            Some(asn),
            format!("router {node} (AS{asn}) has no route to the destination; the destination prefix may be withdrawn or unreachable from this provider"),
        ),
        DropReason::LinkDown => (
            false,
            Some(node),
            Some(asn),
            format!("the link out of {node} (AS{asn}) is down; report the outage to AS{asn}"),
        ),
        DropReason::LinkLoss => (
            false,
            Some(node),
            Some(asn),
            format!("traffic is being lost on the link out of {node} (AS{asn}); likely congestion or a fault"),
        ),
        DropReason::RateLimited => (
            false,
            Some(node),
            Some(asn),
            format!("AS{asn} is rate-limiting this traffic at {node}; this may be policy, not failure — check your service contract"),
        ),
        DropReason::SourceRouteRefused => (
            false,
            Some(node),
            Some(asn),
            format!("router {node} (AS{asn}) refuses loose source routes; AS{asn} receives no compensation for user-selected paths — arrange payment or route another way"),
        ),
        DropReason::TtlExpired => (
            false,
            Some(node),
            Some(asn),
            format!("hop budget exhausted at {node} (AS{asn}); the path may contain a loop"),
        ),
        DropReason::QueueOverflow => (
            false,
            Some(node),
            Some(asn),
            format!("a congested link out of {node} (AS{asn}) dropped the traffic; demand exceeds capacity — premium treatment or another path would help"),
        ),
        DropReason::MaxHopsExceeded => (
            false,
            Some(node),
            Some(asn),
            format!("forwarding loop detected near {node} (AS{asn}); report to the operator"),
        ),
    };
    Some(BlameReport { responsible_node, responsible_asn, concealed, message })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Address, AddressOrigin, Asn, Prefix};
    use crate::firewall::Firewall;
    use crate::packet::{ports, Protocol};
    use tussle_sim::SimTime;

    fn addr(v: u32) -> Address {
        Address::in_prefix(Prefix::new(v, 16), 1, AddressOrigin::ProviderIndependent)
    }

    fn net_with_firewall(reveals: bool) -> (Network, NodeId, Packet) {
        let mut net = Network::new();
        let h0 = net.add_host(Asn(1));
        let r1 = net.add_router(Asn(2));
        let h2 = net.add_host(Asn(3));
        net.connect(h0, r1, SimTime::from_millis(1), 1_000_000);
        net.connect(r1, h2, SimTime::from_millis(1), 1_000_000);
        let a0 = addr(0x0a000000);
        let a2 = addr(0x0b000000);
        net.node_mut(h0).bind(a0);
        net.node_mut(h2).bind(a2);
        net.fib_mut(h0).install(Prefix::DEFAULT, r1, 0);
        net.fib_mut(r1).install(Prefix::new(0x0b000000, 16), h2, 0);
        let mut fw = Firewall::port_allowlist(vec![ports::SMTP], "corporate admin");
        fw.reveals_presence = reveals;
        net.set_firewall(r1, fw);
        let p = Packet::new(a0, a2, Protocol::Tcp, 1, ports::HTTP);
        (net, h0, p)
    }

    #[test]
    fn blame_names_a_visible_firewall() {
        let (mut net, h0, p) = net_with_firewall(true);
        let mut rng = SimRng::seed_from_u64(1);
        let rep = net.send(h0, p, &mut rng);
        let b = blame(&net, &rep).unwrap();
        assert!(!b.concealed);
        assert_eq!(b.responsible_asn, Some(2));
        assert!(b.message.contains("corporate admin"));
    }

    #[test]
    fn blame_admits_concealment() {
        let (mut net, h0, p) = net_with_firewall(false);
        let mut rng = SimRng::seed_from_u64(1);
        let rep = net.send(h0, p, &mut rng);
        let b = blame(&net, &rep).unwrap();
        assert!(b.concealed);
        assert_eq!(b.responsible_node, None);
        assert!(b.message.contains("concealed"));
    }

    #[test]
    fn no_blame_for_success() {
        let (mut net, h0, _) = net_with_firewall(true);
        let mut rng = SimRng::seed_from_u64(1);
        let ok = Packet::new(addr(0x0a000000), addr(0x0b000000), Protocol::Tcp, 1, ports::SMTP);
        let rep = net.send(h0, ok, &mut rng);
        assert!(rep.delivered);
        assert!(blame(&net, &rep).is_none());
    }

    #[test]
    fn traceroute_conceals_hidden_boxes() {
        let (mut net, h0, _) = net_with_firewall(false);
        let mut rng = SimRng::seed_from_u64(1);
        let probe = Packet::new(addr(0x0a000000), addr(0x0b000000), Protocol::Icmp, 0, ports::SMTP);
        let hops = traceroute(&mut net, h0, probe, &mut rng);
        // h0 visible, r1 concealed, h2 visible (probe allowed through on SMTP)
        assert_eq!(hops.len(), 3);
        assert_eq!(hops[0].visibility, HopVisibility::Visible);
        assert_eq!(hops[1].visibility, HopVisibility::Concealed);
        assert_eq!(hops[1].node, None);
        assert_eq!(hops[2].visibility, HopVisibility::Visible);
    }

    #[test]
    fn blame_reports_no_route() {
        let (mut net, h0, _) = net_with_firewall(true);
        let mut rng = SimRng::seed_from_u64(1);
        let p = Packet::new(addr(0x0a000000), addr(0x0e000000), Protocol::Tcp, 1, ports::SMTP);
        let rep = net.send(h0, p, &mut rng);
        let b = blame(&net, &rep).unwrap();
        assert!(b.message.contains("no route"));
    }
}

//! End-node ↔ control-point negotiation (MIDCOM-shaped).
//!
//! §V.B: "Along with this device must be protocols and interfaces to allow
//! the end node and the control point to communicate about the desired
//! controls." And the control tussle: "Who gets to set the policy in the
//! firewall? The end user may certainly have opinions, but a network
//! administrator may as well. Who is 'in charge'? There is no single
//! answer, and we better not think we are going to design it. All we can
//! design is the space for the tussle."
//!
//! A [`ControlPoint`] wraps a firewall with (a) a list of principals
//! authorized to modify it, (b) a disclosure switch for rule inspection,
//! and (c) an audit log of who changed what — visibility of
//! decision-making, per §IV.C.

use serde::{Deserialize, Serialize};
use tussle_net::firewall::{Firewall, FirewallAction, FirewallRule, MatchOn};

/// A request to open (or close) a pinhole for a destination port.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PinholeRequest {
    /// Principal making the request (network identity tag).
    pub requester: u64,
    /// Port to open.
    pub port: u16,
    /// Open (`true`) or close (`false`).
    pub open: bool,
}

/// Why a negotiation failed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NegotiationError {
    /// The requester is not on the authorized-controller list.
    NotAuthorized {
        /// The rejected principal.
        requester: u64,
        /// Who *is* in charge (so the refusal is actionable).
        controllers: Vec<u64>,
    },
    /// The operator declines to disclose the rules.
    RulesNotDisclosed,
}

impl core::fmt::Display for NegotiationError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            NegotiationError::NotAuthorized { requester, controllers } => write!(
                f,
                "principal {requester} may not change this firewall; its controllers are {controllers:?}"
            ),
            NegotiationError::RulesNotDisclosed => {
                f.write_str("the operator declines to disclose the rule set")
            }
        }
    }
}

impl std::error::Error for NegotiationError {}

/// One audit record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditEntry {
    /// Principal who made the change.
    pub by: u64,
    /// Description of the change.
    pub change: String,
}

/// A firewall plus the protocol state around it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ControlPoint {
    /// The device being controlled.
    pub firewall: Firewall,
    /// Principals allowed to change policy — the answer *this* deployment
    /// gives to "who is in charge?". One entry = admin-controlled; the end
    /// user's tag in the list = user-controlled; both = shared.
    pub controllers: Vec<u64>,
    /// Change history.
    pub audit: Vec<AuditEntry>,
}

impl ControlPoint {
    /// A control point over `firewall` governed by `controllers`.
    pub fn new(firewall: Firewall, controllers: Vec<u64>) -> Self {
        ControlPoint { firewall, controllers, audit: Vec::new() }
    }

    /// Process a pinhole request.
    pub fn request(&mut self, req: PinholeRequest) -> Result<(), NegotiationError> {
        if tussle_sim::obs::active() {
            let requester = req.requester.to_string();
            tussle_sim::obs::event(
                tussle_sim::SimTime::ZERO,
                "trust.negotiation",
                &format!(
                    "principal {requester} requests {} port {}",
                    if req.open { "open" } else { "close" },
                    req.port
                ),
            );
        }
        if !self.controllers.contains(&req.requester) {
            return Err(NegotiationError::NotAuthorized {
                requester: req.requester,
                controllers: self.controllers.clone(),
            });
        }
        if req.open {
            self.firewall.push_front(FirewallRule {
                matcher: MatchOn::DstPort(req.port),
                action: FirewallAction::Allow,
                installed_by: format!("principal {}", req.requester),
            });
            self.audit
                .push(AuditEntry { by: req.requester, change: format!("open port {}", req.port) });
        } else {
            self.firewall.rules.retain(|r| r.matcher != MatchOn::DstPort(req.port));
            self.audit
                .push(AuditEntry { by: req.requester, change: format!("close port {}", req.port) });
        }
        Ok(())
    }

    /// An affected end user asks to download and examine the rules
    /// (§V.B: "should that end user be able to download and examine these
    /// rules?"). Succeeds only if the operator extends the courtesy.
    pub fn inspect_rules(&self) -> Result<&[FirewallRule], NegotiationError> {
        self.firewall.disclosed_rules().ok_or(NegotiationError::RulesNotDisclosed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tussle_net::addr::{Address, AddressOrigin, Prefix};
    use tussle_net::packet::{ports, Packet, Protocol};

    const ADMIN: u64 = 1;
    const USER: u64 = 2;

    fn addr(v: u32) -> Address {
        Address::in_prefix(Prefix::new(v, 16), 1, AddressOrigin::ProviderIndependent)
    }

    fn pkt(port: u16) -> Packet {
        Packet::new(addr(1), addr(2), Protocol::Tcp, 1, port)
    }

    fn admin_controlled() -> ControlPoint {
        ControlPoint::new(Firewall::port_allowlist(vec![ports::HTTP], "admin"), vec![ADMIN])
    }

    #[test]
    fn authorized_controller_opens_a_pinhole() {
        let mut cp = admin_controlled();
        assert_eq!(cp.firewall.evaluate(&pkt(ports::NOVEL)), FirewallAction::Deny);
        cp.request(PinholeRequest { requester: ADMIN, port: ports::NOVEL, open: true }).unwrap();
        assert_eq!(cp.firewall.evaluate(&pkt(ports::NOVEL)), FirewallAction::Allow);
        assert_eq!(cp.audit.len(), 1);
        assert_eq!(cp.audit[0].by, ADMIN);
    }

    #[test]
    fn unauthorized_requester_is_refused_with_contacts() {
        let mut cp = admin_controlled();
        let err = cp
            .request(PinholeRequest { requester: USER, port: ports::NOVEL, open: true })
            .unwrap_err();
        match err {
            NegotiationError::NotAuthorized { requester, controllers } => {
                assert_eq!(requester, USER);
                assert_eq!(controllers, vec![ADMIN]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(cp.audit.is_empty());
    }

    #[test]
    fn shared_control_lets_the_user_act() {
        let mut cp =
            ControlPoint::new(Firewall::port_allowlist(vec![], "admin"), vec![ADMIN, USER]);
        cp.request(PinholeRequest { requester: USER, port: ports::VOIP, open: true }).unwrap();
        assert_eq!(cp.firewall.evaluate(&pkt(ports::VOIP)), FirewallAction::Allow);
    }

    #[test]
    fn closing_a_pinhole_removes_it() {
        let mut cp = admin_controlled();
        cp.request(PinholeRequest { requester: ADMIN, port: ports::NOVEL, open: true }).unwrap();
        cp.request(PinholeRequest { requester: ADMIN, port: ports::NOVEL, open: false }).unwrap();
        assert_eq!(cp.firewall.evaluate(&pkt(ports::NOVEL)), FirewallAction::Deny);
        assert_eq!(cp.audit.len(), 2);
    }

    #[test]
    fn rule_inspection_depends_on_disclosure() {
        let cp = admin_controlled(); // port_allowlist does not disclose
        assert_eq!(cp.inspect_rules().unwrap_err(), NegotiationError::RulesNotDisclosed);

        let mut fw = Firewall::port_allowlist(vec![ports::HTTP], "admin");
        fw.reveals_rules = true;
        let cp = ControlPoint::new(fw, vec![ADMIN]);
        assert_eq!(cp.inspect_rules().unwrap().len(), 1);
    }
}

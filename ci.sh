#!/usr/bin/env bash
# Local CI gate: formatting, lints, then the tier-1 build + test pass.
# Run from the repository root. Fails fast on the first broken stage.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> tier-1 build: cargo build --release --workspace"
# --workspace so target/release/tussle-cli exists for the smokes below;
# the plain root build does not pull the CLI binary in.
cargo build --release --workspace

# The tier-1 test pass, split per suite so every binary gets a wall-clock
# reading and a hard budget: a test binary that crosses 120s has outgrown
# the machine and must be split or slimmed, not waited on. Together these
# invocations cover exactly what `cargo test -q` runs.
BUDGET_S=120
slowest_name=""
slowest_s=0
timed_test() {
  local name="$1"; shift
  local start elapsed
  start=$(date +%s)
  cargo test -q "$@"
  elapsed=$(( $(date +%s) - start ))
  echo "    suite '${name}' took ${elapsed}s (budget ${BUDGET_S}s)"
  if (( elapsed > slowest_s )); then
    slowest_s=$elapsed
    slowest_name=$name
  fi
  if (( elapsed > BUDGET_S )); then
    echo "FAIL: suite '${name}' exceeded the ${BUDGET_S}s budget (${elapsed}s)" >&2
    exit 1
  fi
}

echo "==> tier-1 tests (per-suite timings)"
timed_test "workspace unit tests"  --workspace --lib --bins
timed_test "workspace doctests"    --workspace --doc
# Crate-level integration/property suites.
timed_test "actors/prop_actors"            -p tussle-actors      --test prop_actors
timed_test "econ/prop_ledger"              -p tussle-econ        --test prop_ledger
timed_test "experiments/chaos_campaign"    -p tussle-experiments --test chaos_campaign
timed_test "experiments/prop_recovery"     -p tussle-experiments --test prop_recovery
timed_test "experiments/recovery_oracle"   -p tussle-experiments --test recovery_oracle
timed_test "game/prop_games"               -p tussle-game        --test prop_games
timed_test "names/prop_names"              -p tussle-names       --test prop_names
timed_test "net/prop_fastpath"             -p tussle-net         --test prop_fastpath
timed_test "net/prop_net"                  -p tussle-net         --test prop_net
timed_test "net/prop_traceback"            -p tussle-net         --test prop_traceback
timed_test "policy/prop_parser"            -p tussle-policy      --test prop_parser
timed_test "routing/prop_routing"          -p tussle-routing     --test prop_routing
timed_test "core/prop_scoreboard"          -p tussle-core        --test prop_scoreboard
timed_test "sim/prop_chaos"                -p tussle-sim         --test prop_chaos
timed_test "sim/prop_checkpoint"           -p tussle-sim         --test prop_checkpoint
timed_test "sim/prop_engine"               -p tussle-sim         --test prop_engine
timed_test "sim/prop_export"               -p tussle-sim         --test prop_export
timed_test "sim/prop_obs"                  -p tussle-sim         --test prop_obs
timed_test "sim/prop_provenance"           -p tussle-sim         --test prop_provenance
timed_test "trust/prop_trust"              -p tussle-trust       --test prop_trust
# Workspace-level integration suites.
timed_test "corpus_replay"            --test corpus_replay
timed_test "end_to_end_qos"           --test end_to_end_qos
timed_test "experiments_all"          --test experiments_all
timed_test "extensions_integration"   --test extensions_integration
timed_test "golden_reports"           --test golden_reports
timed_test "determinism_matrix"       --test determinism_matrix
timed_test "multihoming_vcg"          --test multihoming_vcg
timed_test "principles_integration"   --test principles_integration
timed_test "routing_integration"      --test routing_integration
echo "slowest suite: '${slowest_name}' at ${slowest_s}s"
echo "golden reports OK (regenerate intentional changes with UPDATE_GOLDEN=1)"

echo "==> chaos smoke: margins report for the full registry, schema-checked"
chaos_json="$(./target/release/tussle-cli chaos --seeds 2 --intensities 0,0.2 --json)"
echo "$chaos_json" | jq -e '
  (.experiments | length) == 17
  and (.intensities == [0, 0.2])
  and (.seeds == 2)
  and ([.experiments[] | has("margin") and has("intensities")] | all)
  and ([.experiments[].intensities[] | has("panics") and has("faults") and has("sweep")] | all)
  and ([.experiments[].intensities[].sweep.digest | test("^[0-9a-f]{16}$")] | all)
' > /dev/null
echo "chaos smoke OK: 17 experiments, schema valid, digests present"

echo "==> profile smoke: self-profiling JSON, schema-checked"
profile_json="$(./target/release/tussle-cli profile --only E10 --json)"
echo "$profile_json" | jq -e '
  (length == 1)
  and (.[0].id == "E10")
  and (.[0].seed == 2002)
  and (.[0].shape_holds == true)
  and (.[0].cost.digest | test("^[0-9a-f]{16}$"))
  and (.[0].wall_nanos > 0)
  and (.[0].topics | type == "object")
' > /dev/null
./target/release/tussle-cli trace --only E1 --grep econ. > /dev/null
echo "profile smoke OK: cost digest, wall time and topic attribution present"

echo "==> trace smoke: a --grep matching nothing must fail loudly"
grep_err=""
if grep_err="$(./target/release/tussle-cli trace --only E1 --grep zzz 2>&1 >/dev/null)"; then
  echo "FAIL: trace --grep with zero matches exited 0" >&2
  exit 1
fi
echo "$grep_err" | grep -q "0 entries matched" || {
  echo "FAIL: zero-match trace error did not name the count: $grep_err" >&2
  exit 1
}
echo "trace smoke OK: zero-match grep exits 1 with a diagnostic"

echo "==> trace --json smoke: structured dump, schema-checked"
tracej="$(./target/release/tussle-cli trace --only E1 --grep econ. --json)"
echo "$tracej" | jq -e '
  (length == 1)
  and (.[0].experiment == "E1")
  and (.[0].seed == 2002)
  and (.[0].matched >= 1)
  and ((.[0].entries | length) == .[0].matched)
  and ([.[0].entries[].topic | startswith("econ.")] | all)
' > /dev/null
echo "trace --json smoke OK: grep-filtered entries are structured"

echo "==> export smoke: chrome trace golden-locked, thread-invariant, valid JSON"
export_dir="$(mktemp -d)"
for t in 1 2 8; do
  ./target/release/tussle-cli export --only E9 --format chrome --threads "$t" \
    --out "$export_dir/E9.t$t.json" > /dev/null
  cmp -s tests/golden/E9.chrome.json "$export_dir/E9.t$t.json" || {
    echo "FAIL: export --format chrome --threads $t diverged from tests/golden/E9.chrome.json" >&2
    exit 1
  }
done
jq -e --sort-keys '
  (.displayTimeUnit == "ms")
  and (.traceEvents | length >= 1)
  and ([.traceEvents[] | has("ph") and has("pid") and has("tid") and has("ts")] | all)
  and (([.traceEvents[] | select(.ph == "B")] | length)
       == ([.traceEvents[] | select(.ph == "E")] | length))
' "$export_dir/E9.t1.json" > /dev/null
rm -rf "$export_dir"
echo "export smoke OK: E9 chrome trace matches the golden at 1/2/8 threads"

echo "==> export smoke: prometheus exposition carries typed families"
prom="$(./target/release/tussle-cli export --only E1,E9,E14 --format prom)"
echo "$prom" | grep -q "^# TYPE tussle_stakeholder_entries counter" || {
  echo "FAIL: prom export is missing the stakeholder family" >&2
  exit 1
}
echo "$prom" | grep -q "^# TYPE tussle_topic_virtual_micros counter" || {
  echo "FAIL: prom export is missing the topic family" >&2
  exit 1
}
echo "$prom" | grep -q "^# experiment E9 seed 2002" || {
  echo "FAIL: multi-experiment prom export is missing its section headers" >&2
  exit 1
}
echo "prom export smoke OK: typed families and per-experiment headers present"

echo "==> health smoke: the committed baseline self-compares green"
./target/release/tussle-cli health > /dev/null || {
  echo "FAIL: health exited nonzero against the committed BENCH_sim.json" >&2
  exit 1
}
health_json="$(./target/release/tussle-cli health --json)"
echo "$health_json" | jq -e '
  (.healthy == true)
  and (.regressions == [])
  and (.missing == [])
  and (.determinism_ok == true)
  and (.scoreboard_conserves == true)
  and (.trends | length >= 12)
  and ([.trends[] | .ratio == 1] | all)
' > /dev/null
echo "health smoke OK: bench trends, campaign determinism and scoreboard all green"

echo "==> health smoke: an inflated bench median must fail the gate"
inflated="$(mktemp)"
jq '.[0].median_ns |= (. * 10 | floor)' BENCH_sim.json > "$inflated"
health_err=""
if health_err="$(./target/release/tussle-cli health --bench "$inflated" --baseline BENCH_sim.json 2>&1 >/dev/null)"; then
  echo "FAIL: health exited 0 on a 10x-inflated bench median" >&2
  exit 1
fi
echo "$health_err" | grep -q "regressed" || {
  echo "FAIL: health regression error did not name the regressed bench: $health_err" >&2
  exit 1
}
rm -f "$inflated"
echo "health negative smoke OK: inflated median exits 1 and names the bench"

echo "==> explain smoke: causal ancestry JSON, schema-checked"
explain_json="$(./target/release/tussle-cli explain --only E9 --event E3 --json)"
echo "$explain_json" | jq -e '
  (.id == "E9")
  and (.seed == 2002)
  and (.target == 3)
  and (.complete == true)
  and (.hops | length >= 1)
  and ([.hops[] | has("event") and has("time_micros") and has("span")] | all)
  and (.hops[0].parent == null)
  and (.hops[-1].event == 3)
' > /dev/null
echo "explain smoke OK: chain is root-first and ends at the queried event"

echo "==> diff smoke: divergence pinpointing JSON, schema-checked"
diff_json="$(./target/release/tussle-cli diff --only E9 --seed 2002 --seed-b 2003 --json)"
echo "$diff_json" | jq -e '
  (.id == "E9")
  and (.seed_a == 2002) and (.seed_b == 2003)
  and (.digest_a | test("^[0-9a-f]{16}$"))
  and (.digest_b | test("^[0-9a-f]{16}$"))
  and (.identical == false)
  and (.divergence != null)
  and (.divergence.index >= 0)
  and (.divergence.probes >= 1)
  and (.divergence.a | has("entry") and has("context") and has("ancestry"))
  and (.divergence.b | has("entry") and has("context") and has("ancestry"))
' > /dev/null
# The acceptance bar: the pinpointed divergence is byte-identical however
# many threads run the two sides.
for t in 1 2 8; do
  threaded="$(./target/release/tussle-cli diff --only E9 --seed 2002 --seed-b 2003 --threads "$t" --json)"
  if [[ "$threaded" != "$diff_json" ]]; then
    echo "FAIL: diff output changed at --threads $t" >&2
    exit 1
  fi
done
echo "diff smoke OK: first divergence located, byte-identical at 1/2/8 threads"

echo "==> flamegraph smoke: collapsed stacks match the golden snapshots"
for fg in E10 E14; do
  ./target/release/tussle-cli profile --only "$fg" --collapsed \
    | diff -u "tests/golden/$fg.collapsed" - > /dev/null \
    || { echo "FAIL: profile --collapsed diverged from tests/golden/$fg.collapsed" >&2; exit 1; }
done
echo "flamegraph smoke OK: E10 + E14 virtual-time collapsed stacks are stable"

echo "==> causal sweep: explain/diff/checkpoint meaningful for all 17 experiments"
sweep_start=$(date +%s)
sweep_dir="$(mktemp -d)"
for id in E1 E2 E3 E4 E5 E6 E7 E8 E9 E10 E11 E12 E13 E14 E15 E16 E17; do
  # explain: every experiment schedules engine events, so event e0 has a
  # complete root-first ancestry chain.
  ./target/release/tussle-cli explain --only "$id" --event e0 --json | jq -e --arg id "$id" '
    (.id == $id)
    and (.seed == 2002)
    and (.complete == true)
    and (.hops | length >= 1)
    and (.hops[0].parent == null)
    and (.hops[-1].event == 0)
  ' > /dev/null || { echo "FAIL: explain sweep broke at $id" >&2; exit 1; }
  # diff: the seeded pacing lags guarantee seeds 1 and 2 diverge, and the
  # divergence is pinpointed with context and ancestry on both sides.
  ./target/release/tussle-cli diff --only "$id" --seed 1 --seed-b 2 --json | jq -e --arg id "$id" '
    (.id == $id)
    and (.seed_a == 1) and (.seed_b == 2)
    and (.identical == false)
    and (.divergence != null)
    and (.divergence.probes >= 1)
    and (.divergence.a | has("entry") and has("context") and has("ancestry"))
    and (.divergence.b | has("entry") and has("context") and has("ancestry"))
  ' > /dev/null || { echo "FAIL: diff sweep broke at $id" >&2; exit 1; }
  # checkpoint: the event cursor is live for every id (snapshots fire only
  # when a run crosses the interval, so `checkpoints` may be 0 at 500).
  ./target/release/tussle-cli checkpoint --only "$id" --seed 1 --every 500 \
    --dir "$sweep_dir/$id" --json | jq -e --arg id "$id" '
    (.experiment == $id)
    and (.seed == 1) and (.every == 500)
    and (.events > 0)
    and ((.files | length) == .checkpoints)
    and (.shape_holds == true)
  ' > /dev/null || { echo "FAIL: checkpoint sweep broke at $id" >&2; exit 1; }
done
rm -rf "$sweep_dir"
sweep_elapsed=$(( $(date +%s) - sweep_start ))
if (( sweep_elapsed > BUDGET_S )); then
  echo "FAIL: causal sweep exceeded the ${BUDGET_S}s budget (${sweep_elapsed}s)" >&2
  exit 1
fi
echo "causal sweep OK: all 17 ids explain, diff and checkpoint on the event cursor (${sweep_elapsed}s)"

echo "==> route-cache smoke: cached and uncached forwarding digests match"
cache_on="$(./target/release/tussle-cli profile --only E4 --json | jq -r '.[0].cost.digest')"
cache_off="$(TUSSLE_ROUTE_CACHE=off ./target/release/tussle-cli profile --only E4 --json | jq -r '.[0].cost.digest')"
if [[ "$cache_on" != "$cache_off" ]]; then
  echo "FAIL: E4 digest differs with the route cache disabled ($cache_on vs $cache_off)" >&2
  exit 1
fi
echo "route-cache smoke OK: E4 digest $cache_on with and without the cache"

echo "==> checkpoint smoke: write E9 checkpoints, resume from disk, schema-checked"
ck_dir="$(mktemp -d)"
ck_json="$(./target/release/tussle-cli checkpoint --only E9 --seed 5 --every 1 --dir "$ck_dir" --json)"
echo "$ck_json" | jq -e '
  (.experiment == "E9") and (.seed == 5) and (.every == 1)
  and (.checkpoints >= 1)
  and ((.files | length) == .checkpoints)
  and (.manifest != null)
  and (.shape_holds == true)
' > /dev/null
last_ck="$(echo "$ck_json" | jq -r '.files[-1]')"
resume_json="$(./target/release/tussle-cli resume --from "$last_ck" --json)"
echo "$resume_json" | jq -e '
  (.experiment == "E9") and (.seed == 5)
  and (.cursor >= 1)
  and (.verified == true)
  and (.report.id == "E9")
  and (.report.shape_holds == true)
' > /dev/null
echo "checkpoint smoke OK: E9 checkpointed to disk and resumed verified"

echo "==> restore smoke: a snapshot from the wrong version must be refused"
bad_ck="$ck_dir/bad_version.json"
jq '.version = 99' "$last_ck" > "$bad_ck"
resume_err=""
if resume_err="$(./target/release/tussle-cli resume --from "$bad_ck" 2>&1 >/dev/null)"; then
  echo "FAIL: resume from a version-99 snapshot exited 0" >&2
  exit 1
fi
echo "$resume_err" | grep -q "version mismatch" || {
  echo "FAIL: version-mismatch error did not name the cause: $resume_err" >&2
  exit 1
}
rm -rf "$ck_dir"
echo "restore smoke OK: version mismatch exits 1 with a diagnostic"

echo "==> recovery smoke: E4 crash/resume digest equality, schema-checked"
recovery_json="$(./target/release/tussle-cli recovery --only E4 --seeds 1 --every 200 --json)"
echo "$recovery_json" | jq -e '
  (.seeds == 1) and (.kill_points == 1)
  and (.cells | length == 1)
  and (.cells[0].id == "E4")
  and (.cells[0].crashed == true)
  and (.cells[0].kill_at != null)
  and (.cells[0].golden_events > 0)
  and (.cells[0].verified == true)
  and (.cells[0].identical == true)
  and (.cells[0].detail == "")
' > /dev/null
# Determinism in the thread grid: same recovery report at any worker count.
for t in 1 2 8; do
  threaded="$(./target/release/tussle-cli recovery --only E4 --seeds 1 --every 200 --threads "$t" --json)"
  if [[ "$threaded" != "$recovery_json" ]]; then
    echo "FAIL: recovery output changed at --threads $t" >&2
    exit 1
  fi
done
echo "recovery smoke OK: E4 crashed mid-run and resumed byte-identical at 1/2/8 threads"

echo "==> fuzz smoke: fixed-seed campaign, schema-checked, thread-count invariant"
fuzz_start=$(date +%s)
fuzz_json="$(./target/release/tussle-cli fuzz --budget 200 --seeds 3 --json)"
echo "$fuzz_json" | jq -e '
  (.schema == 1)
  and (.base_seed == 1) and (.seeds == 3) and (.budget == 200)
  and (.executions == 200)
  and (.coverage_cells >= 1)
  and (.digest | test("^[0-9a-f]{16}$"))
  and (.oracles | length == 8)
  and ([.oracles[] | has("oracle") and has("checks") and has("violations")] | all)
  and ([.oracles[] | .checks >= 1] | all)
  and (.chains | length == 3)
  and ([.chains[] | has("seed") and has("executions") and has("coverage_cells") and has("digest")] | all)
  and (.findings | type == "array")
' > /dev/null
# Every oracle must have fired at least once AND found nothing on the
# pinned seed; any finding here is a real regression in a substrate.
echo "$fuzz_json" | jq -e '[.oracles[].violations] | add == 0' > /dev/null || {
  echo "FAIL: the fixed-seed fuzz campaign found violations:" >&2
  echo "$fuzz_json" | jq '.findings' >&2
  exit 1
}
# Byte-determinism across thread counts — the acceptance bar.
for t in 1 2 8; do
  threaded="$(./target/release/tussle-cli fuzz --budget 200 --seeds 3 --threads "$t" --json)"
  if [[ "$threaded" != "$fuzz_json" ]]; then
    echo "FAIL: fuzz output changed at --threads $t" >&2
    exit 1
  fi
done
fuzz_elapsed=$(( $(date +%s) - fuzz_start ))
if (( fuzz_elapsed > BUDGET_S )); then
  echo "FAIL: fuzz smoke exceeded the ${BUDGET_S}s budget (${fuzz_elapsed}s)" >&2
  exit 1
fi
echo "fuzz smoke OK: 200 executions, 8 oracles green, byte-identical at 1/2/8 threads (${fuzz_elapsed}s)"

echo "==> corpus hygiene: no untracked repro artifacts in tests/corpus/"
untracked_corpus="$(git status --porcelain -- tests/corpus | grep '^??' || true)"
if [[ -n "$untracked_corpus" ]]; then
  echo "FAIL: untracked files in tests/corpus/ — commit the repro or clean it up:" >&2
  echo "$untracked_corpus" >&2
  exit 1
fi
echo "corpus hygiene OK: every tests/corpus entry is tracked"

echo "==> perf baseline: BENCH_sim.json from the obs + sweep + net + checkpoint + fuzz benches"
bench_jsonl="$(mktemp)"
trap 'rm -f "$bench_jsonl"' EXIT
CRITERION_JSON="$bench_jsonl" cargo bench -p tussle-bench --bench obs --bench sweep --bench net --bench checkpoint --bench fuzz
jq -s 'sort_by(.bench)' "$bench_jsonl" > BENCH_sim.json
jq -e '
  (length >= 12)
  and ([.[] | has("bench") and has("median_ns")] | all)
  and ([.[].median_ns | . > 0] | all)
  and ([.[].bench] | any(startswith("obs/")))
  and ([.[].bench] | any(startswith("sweep/")))
  and ([.[].bench] | any(startswith("net/")))
  and ([.[].bench] | any(startswith("checkpoint/")))
  and ([.[].bench] | any(startswith("fuzz/")))
' BENCH_sim.json > /dev/null
echo "perf baseline OK: $(jq length BENCH_sim.json) benches recorded in BENCH_sim.json"

# Opt-in long fuzz campaign, off the critical path: set FUZZ_BUDGET=N to
# run N extra executions over 5 seed chains after the gate itself is green.
# No time budget applies — this is the ROADMAP's long-campaign hook, not a
# tier-1 stage.
if [[ -n "${FUZZ_BUDGET:-}" ]]; then
  echo "==> opt-in fuzz campaign: FUZZ_BUDGET=${FUZZ_BUDGET} executions over 5 seed chains"
  long_fuzz="$(./target/release/tussle-cli fuzz --budget "$FUZZ_BUDGET" --seeds 5 --json)"
  echo "$long_fuzz" | jq -e '[.oracles[].violations] | add == 0' > /dev/null || {
    echo "FAIL: the long fuzz campaign found violations:" >&2
    echo "$long_fuzz" | jq '.findings' >&2
    exit 1
  }
  echo "long fuzz campaign OK: $(echo "$long_fuzz" | jq -r '.executions') executions, all oracles green"
fi

echo "CI OK"

//! Property tests for the value-flow ledger and pricing.

use proptest::prelude::*;
use tussle_econ::{AccountId, Ledger, Money, PricingScheme, Usage};

proptest! {
    /// Conservation: any sequence of mints and transfers keeps the total
    /// balance equal to the total minted, and no successful transfer
    /// overdraws.
    #[test]
    fn ledger_conserves_value(
        ops in proptest::collection::vec((0u64..8, 0u64..8, 1i64..1_000_000), 1..200),
    ) {
        let mut l = Ledger::new();
        for i in 0..8 {
            l.open(AccountId(i));
            l.mint(AccountId(i), Money::from_dollars(10));
        }
        for (from, to, amount) in ops {
            let _ = l.transfer(AccountId(from), AccountId(to), Money(amount), "prop");
        }
        prop_assert!(l.is_conserving());
        for i in 0..8 {
            prop_assert!(l.balance(AccountId(i)) >= Money::ZERO);
        }
    }

    /// Paid and received totals reconcile with balances.
    #[test]
    fn flows_reconcile(
        ops in proptest::collection::vec((0u64..4, 0u64..4, 1i64..100_000), 1..100),
    ) {
        let mut l = Ledger::new();
        for i in 0..4 {
            l.open(AccountId(i));
            l.mint(AccountId(i), Money::from_dollars(100));
        }
        for (from, to, amount) in ops {
            let _ = l.transfer(AccountId(from), AccountId(to), Money(amount), "prop");
        }
        for i in 0..4 {
            let id = AccountId(i);
            let expected = Money::from_dollars(100) + l.total_received(id) - l.total_paid(id);
            prop_assert_eq!(l.balance(id), expected);
        }
    }

    /// Money arithmetic survives a scale/unscale round trip within
    /// rounding, and ordering agrees with micros.
    #[test]
    fn money_ordering(a in -1_000_000_000i64..1_000_000_000, b in -1_000_000_000i64..1_000_000_000) {
        let ma = Money(a);
        let mb = Money(b);
        prop_assert_eq!(ma < mb, a < b);
        prop_assert_eq!(ma.max(mb).micros(), a.max(b));
        prop_assert_eq!((ma + mb).micros(), a + b);
    }

    /// Value pricing never charges a hidden server more than a visible
    /// one, and flat pricing is usage-invariant.
    #[test]
    fn pricing_monotonicity(mb in 0u64..100_000, res in 1i64..100, bus in 100i64..500) {
        let vp = PricingScheme::ValuePricing {
            residential: Money::from_dollars(res),
            business: Money::from_dollars(bus),
        };
        let hidden = vp.bill(Usage::hidden_server(mb));
        let open = vp.bill(Usage::open_server(mb));
        let plain = vp.bill(Usage::residential(mb));
        prop_assert!(hidden <= open);
        prop_assert_eq!(hidden, plain);

        let flat = PricingScheme::Flat { monthly: Money::from_dollars(res) };
        prop_assert_eq!(flat.bill(Usage::residential(mb)), flat.bill(Usage::open_server(mb)));
    }

    /// Per-byte bills scale linearly in usage.
    #[test]
    fn per_byte_linear(mb in 0u64..1_000_000, rate in 1i64..1_000) {
        let s = PricingScheme::PerByte { per_mb: Money(rate) };
        let one = s.bill(Usage::residential(mb));
        let two = s.bill(Usage::residential(mb * 2));
        prop_assert_eq!(two.micros(), one.micros() * 2);
    }
}

//! Event-driven traffic: flows scheduled on the simulation engine.
//!
//! The rest of `tussle-net` answers "what happens to one packet"; this
//! module runs *workloads* — periodic flows with jitter, driven by
//! [`tussle_sim::Engine`] events, with delivery and latency statistics
//! accumulated in the engine's metric sink. Experiments that care about
//! time (congestion windows of tussle, detection delays, failover) build
//! on this instead of calling [`Network::send`] in a loop.

use crate::network::Network;
use crate::node::NodeId;
use crate::packet::Packet;
use tussle_sim::{ComponentState, Ctx, Engine, RunDigest, SimTime, Snapshottable};

/// Retry-with-backoff policy for transient drops.
///
/// When a flow packet is dropped for a *transient* reason (link down, loss,
/// rate limiting, queue overflow — see
/// [`crate::network::DropReason::is_transient`]), the sender reschedules the
/// same packet after an exponential backoff of
/// `min(max_backoff, base_backoff * 2^attempt)` plus uniform seeded jitter.
/// Permanent drops (no route, firewall, TTL) are never retried — retrying
/// cannot help.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum retry attempts per packet (0 = no retries).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base_backoff: SimTime,
    /// Cap on the exponential backoff.
    pub max_backoff: SimTime,
    /// Uniform jitter added to each backoff, in microseconds.
    pub jitter_us: u64,
}

impl RetryPolicy {
    /// A conventional policy: `max_retries` attempts starting at 10 ms,
    /// doubling, capped at 500 ms, with 1 ms of jitter.
    pub fn backoff(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            base_backoff: SimTime::from_millis(10),
            max_backoff: SimTime::from_millis(500),
            jitter_us: 1_000,
        }
    }

    /// Backoff delay before retry number `attempt` (0-based), without jitter.
    pub fn delay(&self, attempt: u32) -> SimTime {
        let base = self.base_backoff.as_micros();
        let exp = base.saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX));
        SimTime::from_micros(exp.min(self.max_backoff.as_micros()))
    }
}

/// A periodic flow specification.
#[derive(Debug, Clone)]
pub struct Flow {
    /// Sending node.
    pub from: NodeId,
    /// Packet template (cloned per transmission).
    pub template: Packet,
    /// Inter-packet interval.
    pub interval: SimTime,
    /// Uniform jitter added to each interval, in microseconds.
    pub jitter_us: u64,
    /// Packets to send (`None` = until the horizon).
    pub count: Option<u64>,
    /// Metrics label; counters appear as `flow.<label>.delivered` etc.
    pub label: String,
    /// Retry transient drops with exponential backoff (`None` = fire and
    /// forget, the pre-chaos behaviour).
    pub retry: Option<RetryPolicy>,
}

impl Flow {
    /// A flow sending `count` packets at a fixed interval.
    pub fn periodic(
        label: &str,
        from: NodeId,
        template: Packet,
        interval: SimTime,
        count: u64,
    ) -> Self {
        Flow {
            from,
            template,
            interval,
            jitter_us: 0,
            count: Some(count),
            label: label.to_owned(),
            retry: None,
        }
    }

    /// Builder: add jitter.
    pub fn with_jitter(mut self, jitter_us: u64) -> Self {
        self.jitter_us = jitter_us;
        self
    }

    /// Builder: retry transient drops under `policy`.
    pub fn with_retries(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }
}

/// The world type for traffic simulations: a network plus its flows.
#[derive(Debug)]
pub struct TrafficWorld {
    /// The network under load.
    pub network: Network,
}

impl Snapshottable for TrafficWorld {
    fn component(&self) -> &'static str {
        "traffic"
    }

    /// Flow progress lives in scheduled closures, which the engine's
    /// queue-shape digest already pins; the world's own logical state is
    /// exactly the network's.
    fn state_digest(&self) -> RunDigest {
        self.network.state_digest()
    }

    fn post_restore(&mut self) {
        self.network.invalidate_routes();
    }
}

/// Build an engine over `network` with every flow scheduled, ready to run.
///
/// The engine comes checkpoint-wired: ambient snapshots capture the
/// world's state digest, and ambient restore verification invalidates the
/// network's route memo — resumed runs must re-derive every cached route.
pub fn build_engine(network: Network, flows: Vec<Flow>, seed: u64) -> Engine<TrafficWorld> {
    let mut engine = Engine::new(TrafficWorld { network }, seed);
    engine.set_snapshot_probe(|w: &TrafficWorld| vec![ComponentState::of(w)]);
    engine.set_restore_hook(|w: &mut TrafficWorld| w.post_restore());
    for flow in flows {
        let start = SimTime::from_micros(0);
        schedule_next(&mut engine, flow, start, 0);
    }
    engine
}

fn schedule_next(engine: &mut Engine<TrafficWorld>, flow: Flow, at: SimTime, sent: u64) {
    engine.schedule_at(at, move |w: &mut TrafficWorld, ctx| {
        send_and_reschedule(w, ctx, flow, sent);
    });
}

fn send_and_reschedule(w: &mut TrafficWorld, ctx: &mut Ctx<TrafficWorld>, flow: Flow, sent: u64) {
    if let Some(max) = flow.count {
        if sent >= max {
            return;
        }
    }
    attempt_send(w, ctx, &flow, 0);
    let jitter = if flow.jitter_us > 0 {
        SimTime::from_micros(ctx.rng.range(0..=flow.jitter_us))
    } else {
        SimTime::ZERO
    };
    let next = ctx.now().saturating_add(flow.interval).saturating_add(jitter);
    let sent = sent + 1;
    if flow.count.map(|max| sent < max).unwrap_or(true) {
        ctx.schedule_at(next, move |w2: &mut TrafficWorld, ctx2| {
            send_and_reschedule(w2, ctx2, flow, sent);
        });
    }
}

/// One transmission attempt, plus retry scheduling on transient drops.
///
/// Retries are independent of the periodic schedule: the flow keeps sending
/// new packets at its interval while a dropped packet backs off on the side.
/// With `flow.retry == None` this draws exactly the same rng sequence as the
/// pre-retry code path, preserving byte-identical runs.
fn attempt_send(w: &mut TrafficWorld, ctx: &mut Ctx<TrafficWorld>, flow: &Flow, attempt: u32) {
    let report = w.network.send_at(flow.from, flow.template.clone(), ctx.now(), ctx.rng);
    let label = &flow.label;
    let hops = report.hops() as u64;
    if hops > 0 {
        ctx.metrics.record_series("net.forwards", ctx.now(), hops);
    }
    if let Some(outcome) = report.fault_outcome() {
        ctx.metrics.record_fault(label, outcome);
        if outcome != tussle_sim::FaultOutcome::Pass {
            ctx.metrics.record_series("net.faults", ctx.now(), 1);
        }
    }
    if report.delivered {
        ctx.metrics.incr(&format!("flow.{label}.delivered"));
        ctx.metrics.observe(&format!("flow.{label}.latency_us"), report.latency.as_micros() as f64);
        return;
    }
    ctx.metrics.incr(&format!("flow.{label}.dropped"));
    let reason = report.drop.map(|(_, r)| r);
    // Every drop carries exactly one reason-labeled counter. A report
    // with no recorded drop point must not vanish into the aggregate
    // only: it gets an explicit Unattributed label so a future drop path
    // that forgets its reason shows up in dashboards instead of hiding.
    match reason {
        Some(r) => ctx.metrics.incr(&format!("flow.{label}.drop.{r:?}")),
        None => ctx.metrics.incr(&format!("flow.{label}.drop.Unattributed")),
    }
    let Some(policy) = flow.retry else {
        return;
    };
    let Some(r) = reason.filter(|r| r.is_transient()) else {
        return;
    };
    if attempt >= policy.max_retries {
        ctx.metrics.incr(&format!("flow.{label}.abandoned"));
        ctx.metrics.incr(&format!("flow.{label}.abandoned.{r:?}"));
        ctx.trace("flow.retry", format!("{label}: abandoned after {} attempts", attempt + 1));
        return;
    }
    ctx.metrics.incr(&format!("flow.{label}.retried"));
    ctx.metrics.incr(&format!("flow.{label}.retried.{r:?}"));
    let jitter = if policy.jitter_us > 0 {
        SimTime::from_micros(ctx.rng.range(0..=policy.jitter_us))
    } else {
        SimTime::ZERO
    };
    let at = ctx.now().saturating_add(policy.delay(attempt)).saturating_add(jitter);
    let flow = flow.clone();
    ctx.schedule_at(at, move |w2: &mut TrafficWorld, ctx2| {
        attempt_send(w2, ctx2, &flow, attempt + 1);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Address, AddressOrigin, Asn, Prefix};
    use crate::packet::{ports, Protocol};
    use tussle_sim::FaultInjector;

    fn world() -> (Network, NodeId, Packet) {
        let mut net = Network::new();
        let h0 = net.add_host(Asn(1));
        let r = net.add_router(Asn(1));
        let h1 = net.add_host(Asn(2));
        net.connect(h0, r, SimTime::from_millis(1), 1_000_000_000);
        net.connect(r, h1, SimTime::from_millis(1), 1_000_000_000);
        let a0 =
            Address::in_prefix(Prefix::new(0x0a000000, 16), 1, AddressOrigin::ProviderIndependent);
        let a1 =
            Address::in_prefix(Prefix::new(0x0b000000, 16), 1, AddressOrigin::ProviderIndependent);
        net.node_mut(h0).bind(a0);
        net.node_mut(h1).bind(a1);
        net.fib_mut(h0).install(Prefix::DEFAULT, r, 0);
        net.fib_mut(r).install(Prefix::new(0x0b000000, 16), h1, 0);
        let pkt = Packet::new(a0, a1, Protocol::Udp, 1, ports::VOIP);
        (net, h0, pkt)
    }

    #[test]
    fn periodic_flow_sends_exactly_count() {
        let (net, h0, pkt) = world();
        let flow = Flow::periodic("voip", h0, pkt, SimTime::from_millis(20), 50);
        let mut eng = build_engine(net, vec![flow], 1);
        eng.run_to_completion();
        assert_eq!(eng.metrics().counter("flow.voip.delivered"), 50);
        assert_eq!(eng.metrics().counter("flow.voip.dropped"), 0);
        // 50 packets, 20ms apart, first at t=0: clock ends at 49*20ms
        assert_eq!(eng.now(), SimTime::from_millis(980));
        let h = eng.metrics().histogram("flow.voip.latency_us").unwrap();
        assert_eq!(h.count(), 50);
        assert_eq!(h.mean().unwrap(), 2000.0);
    }

    #[test]
    fn lossy_links_show_up_in_flow_stats() {
        let (mut net, h0, pkt) = world();
        let lid = net.links()[1].id;
        net.link_mut(lid).faults = FaultInjector::lossy(0.3, 0.0);
        let flow = Flow::periodic("lossy", h0, pkt, SimTime::from_millis(10), 200);
        let mut eng = build_engine(net, vec![flow], 7);
        eng.run_to_completion();
        let delivered = eng.metrics().counter("flow.lossy.delivered");
        let dropped = eng.metrics().counter("flow.lossy.dropped");
        assert_eq!(delivered + dropped, 200);
        assert!((100..180).contains(&delivered), "delivered={delivered}");
        assert_eq!(eng.metrics().counter("flow.lossy.drop.LinkLoss"), dropped);
    }

    #[test]
    fn multiple_flows_interleave_deterministically() {
        let run = |seed| {
            let (net, h0, pkt) = world();
            let f1 = Flow::periodic("a", h0, pkt.clone(), SimTime::from_millis(7), 30)
                .with_jitter(3_000);
            let f2 = Flow::periodic("b", h0, pkt, SimTime::from_millis(11), 30).with_jitter(3_000);
            let mut eng = build_engine(net, vec![f1, f2], seed);
            eng.run_to_completion();
            (
                eng.metrics().counter("flow.a.delivered"),
                eng.metrics().counter("flow.b.delivered"),
                eng.now(),
            )
        };
        assert_eq!(run(5), run(5));
        assert_eq!(run(5).0, 30);
        assert_eq!(run(5).1, 30);
    }

    #[test]
    fn congested_link_queues_and_overflows() {
        // a slow link (100 kbps) with a 20ms queue cap, hammered at 1ms
        // spacing with 1000-byte packets (~80ms serialization each):
        // the first packet sails, the next queue briefly, then overflow.
        let (mut net, h0, pkt) = world();
        let lid = net.links()[1].id;
        net.link_mut(lid).bandwidth_bps = 100_000;
        let cap = SimTime::from_millis(20);
        let l = net.link_mut(lid);
        l.queue_delay_cap = Some(cap);
        let big = pkt.with_payload(bytes::Bytes::from(vec![0u8; 960]));
        let flow = Flow::periodic("burst", h0, big, SimTime::from_millis(1), 30);
        let mut eng = build_engine(net, vec![flow], 1);
        eng.run_to_completion();
        let delivered = eng.metrics().counter("flow.burst.delivered");
        let overflow = eng.metrics().counter("flow.burst.drop.QueueOverflow");
        assert!(delivered >= 1, "the head of the burst gets through");
        assert!(overflow > 20, "most of the burst overflows: {overflow}");
        assert_eq!(delivered + overflow, 30);
    }

    #[test]
    fn uncongested_queue_caps_change_nothing() {
        let (mut net, h0, pkt) = world();
        let lid = net.links()[1].id;
        let l = net.link_mut(lid);
        l.queue_delay_cap = Some(SimTime::from_millis(50));
        // 20ms spacing, tiny packets on a gigabit link: no queueing
        let flow = Flow::periodic("calm", h0, pkt, SimTime::from_millis(20), 20);
        let mut eng = build_engine(net, vec![flow], 1);
        eng.run_to_completion();
        assert_eq!(eng.metrics().counter("flow.calm.delivered"), 20);
        let h = eng.metrics().histogram("flow.calm.latency_us").unwrap();
        assert_eq!(h.mean().unwrap(), 2000.0, "no queueing delay appears");
    }

    #[test]
    fn retries_recover_transient_drops() {
        // 30% loss on the second hop; with 6 retries per packet almost
        // every packet eventually lands, and retry counters show the work.
        let (mut net, h0, pkt) = world();
        let lid = net.links()[1].id;
        net.link_mut(lid).faults = FaultInjector::lossy(0.3, 0.0);
        let flow = Flow::periodic("rt", h0, pkt, SimTime::from_millis(10), 100)
            .with_retries(RetryPolicy::backoff(6));
        let mut eng = build_engine(net, vec![flow], 7);
        eng.run_to_completion();
        let delivered = eng.metrics().counter("flow.rt.delivered");
        let retried = eng.metrics().counter("flow.rt.retried");
        let abandoned = eng.metrics().counter("flow.rt.abandoned");
        assert!(delivered >= 98, "retries recover nearly all: {delivered}");
        assert!(retried > 10, "loss at 30% forces retries: {retried}");
        assert_eq!(delivered + abandoned, 100, "every packet resolves");
        // fault outcomes surfaced as counters per satellite (b)
        let stats = eng.metrics().fault_stats("rt");
        assert_eq!(stats.dropped, eng.metrics().counter("flow.rt.drop.LinkLoss"));
        assert!(stats.passed >= delivered);
    }

    #[test]
    fn permanent_drops_are_never_retried() {
        let (mut net, h0, pkt) = world();
        // break routing at the router: NoRoute is permanent
        let r = net.links()[1].a;
        *net.fib_mut(r) = crate::table::Fib::default();
        let flow = Flow::periodic("perm", h0, pkt, SimTime::from_millis(10), 20)
            .with_retries(RetryPolicy::backoff(5));
        let mut eng = build_engine(net, vec![flow], 1);
        eng.run_to_completion();
        assert_eq!(eng.metrics().counter("flow.perm.drop.NoRoute"), 20);
        assert_eq!(eng.metrics().counter("flow.perm.retried"), 0);
        assert_eq!(eng.metrics().counter("flow.perm.abandoned"), 0);
    }

    #[test]
    fn exhausted_retries_are_abandoned() {
        let (mut net, h0, pkt) = world();
        let lid = net.links()[1].id;
        net.link_mut(lid).faults = FaultInjector::lossy(1.0, 0.0); // always drop
        let flow = Flow::periodic("gone", h0, pkt, SimTime::from_millis(50), 5)
            .with_retries(RetryPolicy::backoff(3));
        let mut eng = build_engine(net, vec![flow], 2);
        eng.run_to_completion();
        assert_eq!(eng.metrics().counter("flow.gone.delivered"), 0);
        assert_eq!(eng.metrics().counter("flow.gone.abandoned"), 5);
        // 5 packets × 3 retries each
        assert_eq!(eng.metrics().counter("flow.gone.retried"), 15);
        assert_eq!(eng.metrics().counter("flow.gone.dropped"), 20);
    }

    #[test]
    fn retry_and_abandon_counters_carry_reason_labels() {
        // Satellite audit: no drop-path counter may be emitted without a
        // reason-labeled companion. Here every transient drop is LinkLoss,
        // so the labeled tallies must equal their aggregates exactly.
        let (mut net, h0, pkt) = world();
        let lid = net.links()[1].id;
        net.link_mut(lid).faults = FaultInjector::lossy(1.0, 0.0);
        let flow = Flow::periodic("lbl", h0, pkt, SimTime::from_millis(50), 4)
            .with_retries(RetryPolicy::backoff(2));
        let mut eng = build_engine(net, vec![flow], 3);
        eng.run_to_completion();
        let m = eng.metrics();
        assert!(m.counter("flow.lbl.retried") > 0);
        assert_eq!(m.counter("flow.lbl.retried.LinkLoss"), m.counter("flow.lbl.retried"));
        assert_eq!(m.counter("flow.lbl.abandoned.LinkLoss"), m.counter("flow.lbl.abandoned"));
        // Every drop got exactly one reason label, and none fell back to
        // the Unattributed lane (this topology always records a reason).
        assert_eq!(m.counter("flow.lbl.drop.LinkLoss"), m.counter("flow.lbl.dropped"));
        assert_eq!(m.counter("flow.lbl.drop.Unattributed"), 0);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_retries: 10,
            base_backoff: SimTime::from_millis(10),
            max_backoff: SimTime::from_millis(70),
            jitter_us: 0,
        };
        assert_eq!(p.delay(0), SimTime::from_millis(10));
        assert_eq!(p.delay(1), SimTime::from_millis(20));
        assert_eq!(p.delay(2), SimTime::from_millis(40));
        assert_eq!(p.delay(3), SimTime::from_millis(70), "capped");
        assert_eq!(p.delay(63), SimTime::from_millis(70), "shift overflow capped");
    }

    #[test]
    fn without_retry_policy_runs_are_byte_identical_to_before() {
        // Two structurally identical runs — retry=None must not perturb the
        // rng stream relative to a flow that never consults the policy.
        let run = || {
            let (mut net, h0, pkt) = world();
            let lid = net.links()[1].id;
            net.link_mut(lid).faults = FaultInjector::lossy(0.25, 0.05);
            let flow =
                Flow::periodic("base", h0, pkt, SimTime::from_millis(10), 80).with_jitter(2_000);
            let mut eng = build_engine(net, vec![flow], 11);
            eng.run_to_completion();
            format!("{:?}", eng.metrics().counters().collect::<Vec<_>>())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn ambient_intensity_perturbs_and_restores() {
        let baseline = || {
            let (net, h0, pkt) = world();
            let flow = Flow::periodic("amb", h0, pkt, SimTime::from_millis(10), 100);
            let mut eng = build_engine(net, vec![flow], 5);
            eng.run_to_completion();
            eng.metrics().counter("flow.amb.delivered")
        };
        let clean = baseline();
        assert_eq!(clean, 100);
        {
            let _guard = tussle_sim::fault::set_ambient_intensity(0.8);
            let noisy = baseline();
            assert!(noisy < 100, "ambient chaos drops packets: {noisy}");
            let stats = tussle_sim::fault::take_ambient_stats();
            assert!(stats.faults() > 0, "ambient stats tally the damage");
        }
        assert_eq!(baseline(), 100, "guard restores clean behaviour");
        let _ = tussle_sim::fault::take_ambient_stats();
    }

    #[test]
    fn traffic_world_checkpoints_and_restores_through_build_engine() {
        let mk = || {
            let (mut net, h0, pkt) = world();
            let lid = net.links()[1].id;
            net.link_mut(lid).faults = FaultInjector::lossy(0.2, 0.0);
            let flow = Flow::periodic("ck", h0, pkt, SimTime::from_millis(10), 40)
                .with_jitter(1_000)
                .with_retries(RetryPolicy::backoff(3));
            build_engine(net, vec![flow], 13)
        };
        let mut golden = mk();
        golden.run(25);
        let snap = golden.checkpoint();
        let mut resumed = mk();
        resumed.run(25);
        resumed.restore(&snap).expect("replay frontier matches");
        golden.run_to_completion();
        resumed.run_to_completion();
        assert_eq!(golden.digest(), resumed.digest(), "resumed run equals never-crashed");
        assert_eq!(
            golden.metrics().counter("flow.ck.delivered"),
            resumed.metrics().counter("flow.ck.delivered")
        );
    }

    #[test]
    fn horizon_bounded_flows_stop_at_run_until() {
        let (net, h0, pkt) = world();
        let flow =
            Flow { count: None, ..Flow::periodic("forever", h0, pkt, SimTime::from_millis(10), 0) };
        let mut eng = build_engine(net, vec![flow], 1);
        eng.run_until(SimTime::from_millis(100));
        let sent = eng.metrics().counter("flow.forever.delivered");
        assert_eq!(sent, 11, "t=0..100ms inclusive at 10ms spacing");
        assert!(eng.queued() > 0, "the next transmission stays queued");
    }
}

//! E8 — Anonymity vs. accountability (§V.B.1).
//!
//! Paper claim: "There is a fundamental tussle between the ideas of
//! anonymous action, and the idea that ... one can be held accountable for
//! ones actions. A possible outcome of this tension is that while it will
//! be possible to act anonymously, many people will choose not to
//! communicate with you if you do, or will attempt to limit what you do. A
//! compromise outcome of this tussle might be that if you are trying to act
//! in an anonymous way, it should be hard to disguise this fact."
//!
//! Measured: senders using each identity scheme approach a population of
//! receivers with mixed anonymity policies; we record reach (acceptance),
//! limitation, and whether disguised anonymity is detected.

use tussle_core::{ExperimentReport, Table};
use tussle_sim::{Engine, SimTime};
use tussle_trust::identity::{AnonymityPolicy, IdentityFramework, IdentityScheme};

/// Aggregate outcome for one identity scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct IdentityOutcome {
    /// Fraction of receivers who accept the sender at all.
    pub reach: f64,
    /// Fraction of receivers who accept but limit the sender.
    pub limited: f64,
    /// Whether the framework flags the scheme as disguised anonymity.
    pub disguise_detected: bool,
}

fn framework() -> IdentityFramework {
    let mut f = IdentityFramework::new(vec![100], vec![7]);
    f.register_tag(42); // a certified user
    f.register_tag(55); // a registered pseudonym
    f.register_tag(tussle_trust::identity::derive_role_tag("purchasing", 7));
    f
}

/// The receiver population: a third of each §V.B.1 posture.
fn receivers() -> Vec<AnonymityPolicy> {
    let mut v = Vec::new();
    for _ in 0..10 {
        v.push(AnonymityPolicy::AcceptAll);
        v.push(AnonymityPolicy::RefuseAnonymous);
        v.push(AnonymityPolicy::LimitAnonymous);
    }
    v
}

/// Evaluate one scheme against the receiver population.
pub fn run_scheme(scheme: &IdentityScheme) -> IdentityOutcome {
    let f = framework();
    let rs = receivers();
    let mut accepted = 0usize;
    let mut limited = 0usize;
    for policy in &rs {
        let (ok, lim) = f.admit(*policy, scheme);
        if ok {
            accepted += 1;
            if lim {
                limited += 1;
            }
        }
    }
    IdentityOutcome {
        reach: accepted as f64 / rs.len() as f64,
        limited: limited as f64 / rs.len() as f64,
        disguise_detected: f.disguised_anonymity(scheme),
    }
}

/// World for the engine-driven replay: settled outcomes per scheme.
#[derive(Default)]
struct IdentityWorld {
    outcomes: Vec<(&'static str, IdentityOutcome)>,
}

/// Run E8 and produce the report. The admission logic is pure; each scheme
/// plays as a two-event causal chain (the sender presents credentials,
/// then — after a seeded challenge lag — the receiver population rules) on
/// the shared engine clock.
pub fn run(seed: u64) -> ExperimentReport {
    let schemes: Vec<(&'static str, IdentityScheme)> = vec![
        ("certified", IdentityScheme::Certified { id: 42, authority: 100 }),
        ("pseudonym", IdentityScheme::Pseudonym { key: 55 }),
        ("role (org 7)", IdentityScheme::Role { role: "purchasing".into(), org: 7 }),
        ("anonymous", IdentityScheme::Anonymous),
        ("forged tag", IdentityScheme::ForgedTag { fake: 9999 }),
    ];
    let mut eng = Engine::new(IdentityWorld::default(), seed);
    for (i, (label, scheme)) in schemes.iter().cloned().enumerate() {
        // Each identity scheme's approach is a root injection.
        eng.schedule_at(SimTime::from_millis(i as u64), move |_w: &mut IdentityWorld, ctx| {
            ctx.span_enter("e8.present", Some("user"), &[("scheme", label)]);
            let lag = SimTime::from_micros(ctx.rng.range(100..5_000u64));
            ctx.trace_fields(
                "e8.challenge",
                Some("provider"),
                &[("lag_us", &lag.as_micros().to_string())],
                format!("{label} credentials presented; receivers deliberate"),
            );
            ctx.span_exit(&[]);
            ctx.schedule_in(lag, move |w2: &mut IdentityWorld, ctx2| {
                ctx2.span_enter("e8.ruling", Some("provider"), &[("scheme", label)]);
                let o = run_scheme(&scheme);
                ctx2.span_exit(&[("reach", &format!("{:.2}", o.reach))]);
                w2.outcomes.push((label, o));
            });
        });
    }
    eng.run_to_completion();

    let mut table = Table::new(
        "Reach by identity scheme (30 receivers: accept-all / refuse-anon / limit-anon)",
        &["reach", "limited", "disguise detected"],
    );
    let mut outcomes = Vec::new();
    for (label, _) in &schemes {
        let o = eng
            .world
            .outcomes
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, o)| o.clone())
            .expect("every scheme's ruling settles");
        table.push_row(
            label,
            &[
                format!("{:.2}", o.reach),
                format!("{:.2}", o.limited),
                o.disguise_detected.to_string(),
            ],
        );
        outcomes.push(o);
    }
    let certified = &outcomes[0];
    let role = &outcomes[2];
    let anon = &outcomes[3];
    let forged = &outcomes[4];
    let shape_holds = certified.reach > anon.reach
        && role.reach == certified.reach // no global namespace needed
        && anon.reach > 0.0 // anonymity remains possible
        && anon.limited > 0.0 // but limited
        && forged.disguise_detected
        && !anon.disguise_detected;

    ExperimentReport {
        id: "E8".into(),
        section: "V.B.1".into(),
        paper_claim: "Anonymity stays possible but costs reach (receivers refuse or limit \
                      anonymous parties); identity needs a framework, not a global namespace \
                      (role identities reach as far as certified ones); and disguising \
                      anonymity should be hard — forged tags are detectable."
            .into(),
        summary: format!(
            "reach: certified {:.0}%, role {:.0}%, anonymous {:.0}% (of which {:.0}% limited); \
             forged tags detected: {}.",
            certified.reach * 100.0,
            role.reach * 100.0,
            anon.reach * 100.0,
            anon.limited * 100.0,
            forged.disguise_detected,
        ),
        table,
        shape_holds,
        cost: None,
        scoreboard: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identified_parties_reach_everyone() {
        let o = run_scheme(&IdentityScheme::Certified { id: 42, authority: 100 });
        assert_eq!(o.reach, 1.0);
        assert_eq!(o.limited, 0.0);
    }

    #[test]
    fn anonymous_parties_lose_a_third_and_get_limited() {
        let o = run_scheme(&IdentityScheme::Anonymous);
        assert!((o.reach - 2.0 / 3.0).abs() < 1e-9);
        assert!((o.limited - 1.0 / 3.0).abs() < 1e-9);
        assert!(!o.disguise_detected);
    }

    #[test]
    fn role_identity_equals_certified_reach() {
        let cert = run_scheme(&IdentityScheme::Certified { id: 42, authority: 100 });
        let role = run_scheme(&IdentityScheme::Role { role: "purchasing".into(), org: 7 });
        assert_eq!(cert.reach, role.reach);
    }

    #[test]
    fn forgery_is_detected_and_treated_as_anonymous() {
        let o = run_scheme(&IdentityScheme::ForgedTag { fake: 9999 });
        assert!(o.disguise_detected);
        assert!((o.reach - 2.0 / 3.0).abs() < 1e-9, "forged = anonymous in reach");
    }

    #[test]
    fn report_shape_holds() {
        let r = run(1);
        assert!(r.shape_holds, "{}", r.summary);
    }
}

//! Pricing schemes, including value pricing.
//!
//! §V.A.2: "One of the standard ways to improve revenues is to find ways to
//! divide customers into classes based on their willingness to pay, and
//! charge them accordingly — what economists call value pricing." The
//! Internet instance the paper gives: residential broadband contracts that
//! prohibit running a server, forcing server-runners onto a pricier
//! "business" rate. The consumer counter-move (tunneling to hide the
//! server) works precisely because the price discrimination keys on
//! *observable* behaviour.

use crate::money::Money;
use serde::{Deserialize, Serialize};

/// A customer's observable usage in one billing period.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Usage {
    /// Megabytes carried.
    pub megabytes: u64,
    /// Does the customer run a server?
    pub runs_server: bool,
    /// Is the server *visible* to the provider? Tunneling (§V.A.2) makes
    /// `runs_server` true but `server_visible` false.
    pub server_visible: bool,
}

impl Usage {
    /// Light residential browsing.
    pub fn residential(megabytes: u64) -> Self {
        Usage { megabytes, runs_server: false, server_visible: false }
    }

    /// Openly running a server.
    pub fn open_server(megabytes: u64) -> Self {
        Usage { megabytes, runs_server: true, server_visible: true }
    }

    /// Running a server behind a tunnel.
    pub fn hidden_server(megabytes: u64) -> Self {
        Usage { megabytes, runs_server: true, server_visible: false }
    }
}

/// How a provider charges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PricingScheme {
    /// One price for everyone.
    Flat {
        /// Monthly charge.
        monthly: Money,
    },
    /// Pure usage pricing — the "onerous pay-by-the-byte situation"
    /// consumers fear (§V.A.4).
    PerByte {
        /// Charge per megabyte.
        per_mb: Money,
    },
    /// Subscription plus usage.
    TwoPart {
        /// Monthly charge.
        monthly: Money,
        /// Charge per megabyte.
        per_mb: Money,
    },
    /// Value pricing: a cheap class and an expensive class, separated by an
    /// observable criterion (running a server).
    ValuePricing {
        /// Rate for customers who appear residential.
        residential: Money,
        /// Rate for customers observed running servers.
        business: Money,
    },
}

impl PricingScheme {
    /// The bill for one period of `usage`.
    ///
    /// Value pricing can only charge what it can see: a hidden server pays
    /// the residential rate. That asymmetry is the engine of the §V.A.2
    /// escalation (prohibit → tunnel → detect → ...).
    pub fn bill(&self, usage: Usage) -> Money {
        match self {
            PricingScheme::Flat { monthly } => *monthly,
            PricingScheme::PerByte { per_mb } => *per_mb * usage.megabytes as i64,
            PricingScheme::TwoPart { monthly, per_mb } => {
                *monthly + *per_mb * usage.megabytes as i64
            }
            PricingScheme::ValuePricing { residential, business } => {
                if usage.runs_server && usage.server_visible {
                    *business
                } else {
                    *residential
                }
            }
        }
    }

    /// The headline price a shopper compares (the residential/monthly
    /// rate; per-byte schemes quote a typical 1000 MB month).
    pub fn headline(&self) -> Money {
        match self {
            PricingScheme::Flat { monthly } => *monthly,
            PricingScheme::PerByte { per_mb } => *per_mb * 1000,
            PricingScheme::TwoPart { monthly, per_mb } => *monthly + *per_mb * 1000,
            PricingScheme::ValuePricing { residential, .. } => *residential,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_ignores_usage() {
        let s = PricingScheme::Flat { monthly: Money::from_dollars(40) };
        assert_eq!(s.bill(Usage::residential(1)), Money::from_dollars(40));
        assert_eq!(s.bill(Usage::open_server(100_000)), Money::from_dollars(40));
    }

    #[test]
    fn per_byte_scales() {
        let s = PricingScheme::PerByte { per_mb: Money(1000) };
        assert_eq!(s.bill(Usage::residential(0)), Money::ZERO);
        assert_eq!(s.bill(Usage::residential(500)), Money(500_000));
    }

    #[test]
    fn two_part_combines() {
        let s = PricingScheme::TwoPart { monthly: Money::from_dollars(10), per_mb: Money(100) };
        assert_eq!(s.bill(Usage::residential(1000)), Money(10_100_000));
    }

    #[test]
    fn value_pricing_discriminates_on_visibility() {
        let s = PricingScheme::ValuePricing {
            residential: Money::from_dollars(40),
            business: Money::from_dollars(120),
        };
        assert_eq!(s.bill(Usage::residential(100)), Money::from_dollars(40));
        assert_eq!(s.bill(Usage::open_server(100)), Money::from_dollars(120));
        // the tunnel: same behaviour, hidden, residential rate
        assert_eq!(s.bill(Usage::hidden_server(100)), Money::from_dollars(40));
    }

    #[test]
    fn headline_prices() {
        assert_eq!(
            PricingScheme::Flat { monthly: Money::from_dollars(40) }.headline(),
            Money::from_dollars(40)
        );
        assert_eq!(PricingScheme::PerByte { per_mb: Money(1000) }.headline(), Money(1_000_000));
        assert_eq!(
            PricingScheme::ValuePricing {
                residential: Money::from_dollars(40),
                business: Money::from_dollars(120)
            }
            .headline(),
            Money::from_dollars(40)
        );
    }
}

//! The `tussle-cli` binary: see [`tussle_cli`] for the commands.

#![forbid(unsafe_code)]

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match tussle_cli::parse_args(&args).and_then(tussle_cli::execute) {
        Ok(text) => {
            println!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", tussle_cli::USAGE);
            ExitCode::FAILURE
        }
    }
}

//! Deterministic checkpoint/restore: versioned snapshots of a run's replay
//! frontier, policy-driven capture, crash injection, and byte-exact
//! recovery verification.
//!
//! ## Why a snapshot records a *frontier*, not a heap
//!
//! The engine's queue holds boxed `FnOnce` closures — they capture arbitrary
//! world references and cannot be serialized. Freezing the process image is
//! exactly the non-portable, non-auditable design the paper's "design for
//! choice" guideline warns against. Instead a [`Snapshot`] records everything
//! needed to *reconstruct and verify* the run state deterministically:
//!
//! * the scope-global **event cursor** (how many events have dispatched),
//! * the engine clock, next sequence number, and the exact **queue shape**
//!   (scheduled times, sequence numbers, parent links, spans — digested),
//! * the [`SimRng`](crate::SimRng) **seed and stream position** (ChaCha
//!   output is pure in `(seed, word position)`, so this pins the entire
//!   remaining stream),
//! * trace length / drop count / open spans and the trace digest,
//! * the rolling [`RunDigest`](crate::RunDigest) over trace + metrics,
//! * per-component substrate digests via [`Snapshottable`].
//!
//! Restore re-runs the same deterministic construction up to the cursor and
//! verifies every recorded field byte-exactly; any mismatch is a structured
//! [`RestoreError::Divergence`], never silent drift. Checkpoint *writing*
//! therefore costs a few digest folds plus (for directory sinks) one
//! atomic write — cheap enough to take every thousand events.
//!
//! What is deliberately **excluded** from snapshots: wall-clock time (never
//! deterministic), the [`obs`](crate::obs) capture rings and provenance ring
//! (diagnostic views *of* the run, not state *in* it — they regrow on
//! replay), and derived caches like the route memo (rebuilt and explicitly
//! invalidated at the restore boundary). See DESIGN.md §8.
//!
//! Like [`obs`](crate::obs), the capture scope is ambient and thread-local:
//! [`begin`] a scope, run experiments, [`CheckpointGuard::finish`] to
//! collect the [`CheckpointRecord`]. The engine feeds the scope from its
//! dispatch loop; a scope can also *kill* the run at a chosen event index
//! (crash injection) or *verify* a prior snapshot when the replay reaches
//! its cursor (recovery).

use crate::digest::{Fnv1a, RunDigest};
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell};
use std::fmt;
use std::path::{Path, PathBuf};

/// Format version stamped into every snapshot and manifest. Bump on any
/// change to the digest recipe or field layout; [`Snapshot::validate`]
/// rejects other versions with a structured error.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Identity of the run a snapshot belongs to.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotMeta {
    /// Experiment id (e.g. `"E9"`), or empty for ad-hoc engine snapshots.
    pub experiment: String,
    /// The run's seed.
    pub seed: u64,
}

/// The engine-side replay frontier: everything the engine itself must
/// reproduce for a restore to be exact. All digests render as 16 lowercase
/// hex digits so snapshots stay `jq`-able.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineState {
    /// Virtual clock, in microseconds.
    pub now_micros: u64,
    /// Next scheduling sequence number (total-order tiebreak position).
    pub next_seq: u64,
    /// Events dispatched by this engine so far.
    pub events_processed: u64,
    /// Events still waiting in the queue.
    pub queued: u64,
    /// FNV-1a digest over the sorted queue shape: each pending event's
    /// `(time, seq, parent, span)`. The closures themselves cannot be
    /// digested; their scheduling coordinates can, and a replay that
    /// rebuilds a different queue is caught here.
    pub queue_digest: String,
    /// The run rng's 32-byte seed, hex-encoded.
    pub rng_seed: String,
    /// 32-bit words consumed from the rng stream ([`crate::SimRng::word_pos`]).
    pub rng_word_pos: u64,
    /// Entries currently retained in the trace ring.
    pub trace_entries: u64,
    /// Entries evicted from the trace ring so far.
    pub trace_dropped: u64,
    /// Spans entered but not yet exited.
    pub open_spans: u64,
    /// Digest of the retained trace stream.
    pub trace_digest: String,
    /// The rolling run digest over trace + metrics — the same value
    /// [`RunDigest::of_run`](crate::RunDigest) reports at run end.
    pub run_digest: String,
}

impl EngineState {
    fn absorb_into(&self, h: &mut Fnv1a) {
        h.write_u8(0xB1);
        h.write_u64(self.now_micros);
        h.write_u64(self.next_seq);
        h.write_u64(self.events_processed);
        h.write_u64(self.queued);
        h.write_str(&self.queue_digest);
        h.write_str(&self.rng_seed);
        h.write_u64(self.rng_word_pos);
        h.write_u64(self.trace_entries);
        h.write_u64(self.trace_dropped);
        h.write_u64(self.open_spans);
        h.write_str(&self.trace_digest);
        h.write_str(&self.run_digest);
    }
}

/// One substrate component's digest inside a snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComponentState {
    /// Stable component name (e.g. `"network"`).
    pub name: String,
    /// The component's [`Snapshottable::state_digest`], hex-encoded.
    pub digest: String,
}

impl ComponentState {
    /// Capture one component's current state digest.
    pub fn of(component: &impl Snapshottable) -> Self {
        ComponentState {
            name: component.component().to_string(),
            digest: component.state_digest().to_hex(),
        }
    }
}

/// Substrate state that participates in checkpoints.
///
/// Implementors digest their *logical* state — the fields that determine
/// future behavior — and exclude derived caches and bookkeeping that a
/// restore rebuilds (for `tussle-net::Network`: the topology generation
/// counter and the next-hop route memo).
pub trait Snapshottable {
    /// Stable name identifying this component in snapshots.
    fn component(&self) -> &'static str;

    /// Digest of the component's logical state. Two components with equal
    /// digests must behave identically for the remainder of the run.
    fn state_digest(&self) -> RunDigest;

    /// Called after a successful restore/verify at this component.
    ///
    /// This is the cache-invalidation boundary: implementations must drop
    /// or version-bump any derived caches so nothing cached before the
    /// crash can leak across it. Default: nothing to invalidate.
    fn post_restore(&mut self) {}
}

/// A versioned, self-digesting snapshot of one run position.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Format version ([`SNAPSHOT_VERSION`] when written by this build).
    pub version: u32,
    /// Which run this snapshot belongs to.
    pub meta: SnapshotMeta,
    /// Scope-global event cursor at capture time (events dispatched across
    /// *all* engines under the scope; an experiment may run several).
    pub cursor: u64,
    /// The engine replay frontier.
    pub engine: EngineState,
    /// Substrate component digests, in capture order.
    pub components: Vec<ComponentState>,
    /// Self-digest over every field above; an edited or truncated snapshot
    /// fails [`Snapshot::validate`] before any field is trusted.
    pub digest: String,
}

impl Snapshot {
    /// Build a snapshot and seal it with its self-digest.
    pub fn sealed(
        meta: SnapshotMeta,
        cursor: u64,
        engine: EngineState,
        components: Vec<ComponentState>,
    ) -> Snapshot {
        let mut snap = Snapshot {
            version: SNAPSHOT_VERSION,
            meta,
            cursor,
            engine,
            components,
            digest: String::new(),
        };
        snap.digest = snap.compute_digest();
        snap
    }

    /// Recompute the self-digest from the current field values.
    pub fn compute_digest(&self) -> String {
        let mut h = Fnv1a::new();
        h.write_u64(self.version as u64);
        h.write_str(&self.meta.experiment);
        h.write_u64(self.meta.seed);
        h.write_u64(self.cursor);
        self.engine.absorb_into(&mut h);
        h.write_u8(0xB2);
        h.write_u64(self.components.len() as u64);
        for c in &self.components {
            h.write_str(&c.name);
            h.write_str(&c.digest);
        }
        RunDigest(h.finish()).to_hex()
    }

    /// Check version and integrity. Every load path calls this before any
    /// field is acted on.
    pub fn validate(&self) -> Result<(), RestoreError> {
        if self.version != SNAPSHOT_VERSION {
            return Err(RestoreError::VersionMismatch {
                found: self.version,
                expected: SNAPSHOT_VERSION,
            });
        }
        let expected = self.compute_digest();
        if self.digest != expected {
            return Err(RestoreError::Corrupted { expected, found: self.digest.clone() });
        }
        Ok(())
    }
}

/// When to capture snapshots.
///
/// The default policy never fires on its own (useful for scopes that only
/// verify or kill); combine event-count and virtual-time triggers freely.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckpointPolicy {
    every: Option<u64>,
    at_micros: Vec<u64>,
}

impl CheckpointPolicy {
    /// Never checkpoint automatically (verify/kill-only scopes).
    pub fn manual() -> Self {
        CheckpointPolicy::default()
    }

    /// Checkpoint after every `n` dispatched events. `n` must be ≥ 1; the
    /// CLI validates user input before reaching this assertion.
    pub fn every_n_events(n: u64) -> Self {
        assert!(n >= 1, "checkpoint interval must be at least 1 event");
        CheckpointPolicy { every: Some(n), at_micros: Vec::new() }
    }

    /// Checkpoint the first time the clock reaches each given virtual
    /// time (each threshold fires once, in order).
    pub fn at_virtual_times(times: impl IntoIterator<Item = SimTime>) -> Self {
        let mut at_micros: Vec<u64> = times.into_iter().map(|t| t.as_micros()).collect();
        at_micros.sort_unstable();
        at_micros.dedup();
        CheckpointPolicy { every: None, at_micros }
    }

    /// Whether a checkpoint is due at this cursor/clock. `times_fired`
    /// tracks how many time thresholds have already fired.
    fn due(&self, cursor: u64, now_micros: u64, times_fired: &mut usize) -> bool {
        let mut due = false;
        if let Some(n) = self.every {
            due |= cursor.is_multiple_of(n);
        }
        while *times_fired < self.at_micros.len() && now_micros >= self.at_micros[*times_fired] {
            *times_fired += 1;
            due = true;
        }
        due
    }
}

/// Where captured snapshots go.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum CheckpointSink {
    /// Keep snapshots in memory only (the recovery oracle's mode).
    #[default]
    Memory,
    /// Additionally persist each snapshot into this directory as
    /// `ck_<cursor>.json` via write-to-temp + atomic rename, maintaining a
    /// `manifest.json` of chained per-checkpoint digests.
    Dir(PathBuf),
}

/// Configuration for one checkpoint scope.
#[derive(Debug, Clone, Default)]
pub struct CheckpointConfig {
    /// Capture policy.
    pub policy: CheckpointPolicy,
    /// Snapshot destination.
    pub sink: CheckpointSink,
    /// Crash injection: panic when the scope's engine-event cursor reaches
    /// this index. Every experiment schedules its work as engine events, so
    /// the cursor is the complete crash surface — the same index space the
    /// capture policy and recovery verification run on.
    pub kill_at: Option<u64>,
    /// Recovery verification: when the replay reaches this snapshot's
    /// cursor, compare the live state against it byte-for-byte.
    pub verify: Option<Snapshot>,
    /// Identity stamped into captured snapshots.
    pub meta: SnapshotMeta,
}

impl CheckpointConfig {
    /// A memory-sink scope with the given capture policy.
    pub fn new(policy: CheckpointPolicy) -> Self {
        CheckpointConfig { policy, ..CheckpointConfig::default() }
    }

    /// Persist snapshots into `dir` (atomic write-rename + manifest).
    pub fn dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.sink = CheckpointSink::Dir(dir.into());
        self
    }

    /// Inject a crash when the scope-global event cursor reaches `event`.
    pub fn kill_at(mut self, event: u64) -> Self {
        self.kill_at = Some(event);
        self
    }

    /// Verify the replay against `snapshot` when its cursor is reached.
    pub fn verify(mut self, snapshot: Snapshot) -> Self {
        self.verify = Some(snapshot);
        self
    }

    /// Stamp snapshots with the run's experiment id and seed.
    pub fn meta(mut self, experiment: &str, seed: u64) -> Self {
        self.meta = SnapshotMeta { experiment: experiment.to_string(), seed };
        self
    }
}

/// Structured restore/verification failure. `Divergence` is the oracle's
/// key error: it names the first field whose replayed value differs from
/// the snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RestoreError {
    /// The snapshot was written by a different format version.
    VersionMismatch {
        /// Version found in the snapshot file.
        found: u32,
        /// Version this build reads and writes.
        expected: u32,
    },
    /// The snapshot file could not be read.
    Unreadable {
        /// Path that failed.
        path: String,
        /// Underlying I/O error.
        error: String,
    },
    /// The snapshot file is not valid snapshot JSON.
    Malformed {
        /// Path that failed.
        path: String,
        /// Parse error.
        error: String,
    },
    /// The snapshot's self-digest does not match its contents.
    Corrupted {
        /// Digest recomputed from the fields.
        expected: String,
        /// Digest recorded in the file.
        found: String,
    },
    /// The replayed state differs from the snapshot.
    Divergence {
        /// First differing field (e.g. `"rng_word_pos"`).
        field: String,
        /// Value recorded in the snapshot.
        expected: String,
        /// Value observed in the live state.
        found: String,
    },
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::VersionMismatch { found, expected } => {
                write!(
                    f,
                    "snapshot version mismatch: found {found}, this build reads version {expected}"
                )
            }
            RestoreError::Unreadable { path, error } => {
                write!(f, "cannot read snapshot {path}: {error}")
            }
            RestoreError::Malformed { path, error } => {
                write!(f, "malformed snapshot {path}: {error}")
            }
            RestoreError::Corrupted { expected, found } => {
                write!(f, "snapshot corrupted: digest {found} recorded, {expected} recomputed")
            }
            RestoreError::Divergence { field, expected, found } => {
                write!(
                    f,
                    "restore diverged at {field}: snapshot has {expected}, live state has {found}"
                )
            }
        }
    }
}

impl std::error::Error for RestoreError {}

/// One entry in a checkpoint directory's manifest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// Snapshot file name within the directory.
    pub file: String,
    /// The snapshot's event cursor.
    pub cursor: u64,
    /// The snapshot's self-digest.
    pub digest: String,
    /// Chained digest: `fnv(previous chain, this digest)`. Any dropped,
    /// reordered, or substituted snapshot breaks every later link.
    pub chain: String,
}

/// The `manifest.json` a directory sink maintains: the run identity plus
/// the digest chain of every checkpoint written, in order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Manifest {
    /// Format version.
    pub version: u32,
    /// Experiment id the checkpoints belong to.
    pub experiment: String,
    /// The run's seed.
    pub seed: u64,
    /// Checkpoints in capture order.
    pub checkpoints: Vec<ManifestEntry>,
}

impl Manifest {
    /// Recompute and verify the digest chain.
    pub fn verify_chain(&self) -> bool {
        let mut prev = String::new();
        for entry in &self.checkpoints {
            if entry.chain != chain_digest(&prev, &entry.digest) {
                return false;
            }
            prev.clone_from(&entry.chain);
        }
        true
    }
}

fn chain_digest(prev: &str, digest: &str) -> String {
    let mut h = Fnv1a::new();
    h.write_u8(0xB3);
    h.write_str(prev);
    h.write_str(digest);
    RunDigest(h.finish()).to_hex()
}

/// Load a snapshot from disk, checking version and integrity.
pub fn load_snapshot(path: &Path) -> Result<Snapshot, RestoreError> {
    let text = std::fs::read_to_string(path).map_err(|e| RestoreError::Unreadable {
        path: path.display().to_string(),
        error: e.to_string(),
    })?;
    let snap: Snapshot = serde_json::from_str(&text).map_err(|e| RestoreError::Malformed {
        path: path.display().to_string(),
        error: e.to_string(),
    })?;
    snap.validate()?;
    Ok(snap)
}

/// Load and chain-verify a directory sink's `manifest.json`.
pub fn load_manifest(path: &Path) -> Result<Manifest, RestoreError> {
    let text = std::fs::read_to_string(path).map_err(|e| RestoreError::Unreadable {
        path: path.display().to_string(),
        error: e.to_string(),
    })?;
    let manifest: Manifest = serde_json::from_str(&text).map_err(|e| RestoreError::Malformed {
        path: path.display().to_string(),
        error: e.to_string(),
    })?;
    if manifest.version != SNAPSHOT_VERSION {
        return Err(RestoreError::VersionMismatch {
            found: manifest.version,
            expected: SNAPSHOT_VERSION,
        });
    }
    if !manifest.verify_chain() {
        return Err(RestoreError::Corrupted {
            expected: "a consistent digest chain".to_string(),
            found: "a broken manifest chain".to_string(),
        });
    }
    Ok(manifest)
}

/// Compare two engine frontiers field by field, reporting the first
/// divergence by name.
pub fn engine_divergence(expected: &EngineState, found: &EngineState) -> Result<(), RestoreError> {
    check("now_micros", &expected.now_micros, &found.now_micros)?;
    check("next_seq", &expected.next_seq, &found.next_seq)?;
    check("events_processed", &expected.events_processed, &found.events_processed)?;
    check("queued", &expected.queued, &found.queued)?;
    check("queue_digest", &expected.queue_digest, &found.queue_digest)?;
    check("rng_seed", &expected.rng_seed, &found.rng_seed)?;
    check("rng_word_pos", &expected.rng_word_pos, &found.rng_word_pos)?;
    check("trace_entries", &expected.trace_entries, &found.trace_entries)?;
    check("trace_dropped", &expected.trace_dropped, &found.trace_dropped)?;
    check("open_spans", &expected.open_spans, &found.open_spans)?;
    check("trace_digest", &expected.trace_digest, &found.trace_digest)?;
    check("run_digest", &expected.run_digest, &found.run_digest)?;
    Ok(())
}

/// Compare component digest lists, reporting the first divergence.
pub fn components_divergence(
    expected: &[ComponentState],
    found: &[ComponentState],
) -> Result<(), RestoreError> {
    check("components", &expected.len(), &found.len())?;
    for (e, f) in expected.iter().zip(found) {
        check(&format!("component {}", e.name), &e.name, &f.name)?;
        check(&format!("{} digest", e.name), &e.digest, &f.digest)?;
    }
    Ok(())
}

fn check<T: PartialEq + fmt::Display>(
    field: &str,
    expected: &T,
    found: &T,
) -> Result<(), RestoreError> {
    if expected == found {
        Ok(())
    } else {
        Err(RestoreError::Divergence {
            field: field.to_string(),
            expected: expected.to_string(),
            found: found.to_string(),
        })
    }
}

// ---------------------------------------------------------------------------
// Ambient checkpoint scope (same shape as `obs`: one mode byte on the hot
// path, full state behind a RefCell, RAII guard with panic-safe restore).
// ---------------------------------------------------------------------------

const MODE_OFF: u8 = 0;
const MODE_ON: u8 = 1;

thread_local! {
    static MODE: Cell<u8> = const { Cell::new(MODE_OFF) };
    static STATE: RefCell<Option<CkState>> = const { RefCell::new(None) };
}

struct CkState {
    policy: CheckpointPolicy,
    sink: CheckpointSink,
    kill_at: Option<u64>,
    verify: Option<Snapshot>,
    meta: SnapshotMeta,
    cursor: u64,
    times_fired: usize,
    snapshots: Vec<Snapshot>,
    files: Vec<PathBuf>,
    manifest_path: Option<PathBuf>,
    manifest_entries: Vec<ManifestEntry>,
    verified_at: Option<u64>,
    divergence: Option<RestoreError>,
    killed_at: Option<u64>,
    io_error: Option<String>,
}

impl CkState {
    fn new(config: CheckpointConfig) -> Self {
        CkState {
            policy: config.policy,
            sink: config.sink,
            kill_at: config.kill_at,
            verify: config.verify,
            meta: config.meta,
            cursor: 0,
            times_fired: 0,
            snapshots: Vec::new(),
            files: Vec::new(),
            manifest_path: None,
            manifest_entries: Vec::new(),
            verified_at: None,
            divergence: None,
            killed_at: None,
            io_error: None,
        }
    }

    fn into_record(self) -> CheckpointRecord {
        CheckpointRecord {
            cursor: self.cursor,
            snapshots: self.snapshots,
            files: self.files,
            manifest: self.manifest_path,
            verified_at: self.verified_at,
            divergence: self.divergence,
            killed_at: self.killed_at,
            io_error: self.io_error,
        }
    }

    fn persist(&mut self, snap: &Snapshot) {
        let CheckpointSink::Dir(dir) = self.sink.clone() else { return };
        if self.io_error.is_some() {
            // One failed write poisons the sink; later snapshots stay
            // memory-only rather than leaving gaps in the chain.
            return;
        }
        if let Err(e) = self.persist_to(&dir, snap) {
            self.io_error = Some(e);
        }
    }

    fn persist_to(&mut self, dir: &Path, snap: &Snapshot) -> Result<(), String> {
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        let name = format!("ck_{:012}.json", snap.cursor);
        let path = dir.join(&name);
        let json =
            serde_json::to_string_pretty(snap).map_err(|e| format!("serialize {name}: {e}"))?;
        atomic_write(&path, &json)?;
        let prev = self.manifest_entries.last().map(|e| e.chain.clone()).unwrap_or_default();
        self.manifest_entries.push(ManifestEntry {
            file: name,
            cursor: snap.cursor,
            digest: snap.digest.clone(),
            chain: chain_digest(&prev, &snap.digest),
        });
        let manifest = Manifest {
            version: SNAPSHOT_VERSION,
            experiment: self.meta.experiment.clone(),
            seed: self.meta.seed,
            checkpoints: self.manifest_entries.clone(),
        };
        let manifest_path = dir.join("manifest.json");
        let manifest_json = serde_json::to_string_pretty(&manifest)
            .map_err(|e| format!("serialize manifest: {e}"))?;
        atomic_write(&manifest_path, &manifest_json)?;
        self.files.push(path);
        self.manifest_path = Some(manifest_path);
        Ok(())
    }
}

fn atomic_write(path: &Path, contents: &str) -> Result<(), String> {
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, contents).map_err(|e| format!("write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| format!("rename {} -> {}: {e}", tmp.display(), path.display()))?;
    Ok(())
}

/// Everything one checkpoint scope observed, returned by
/// [`CheckpointGuard::finish`].
#[derive(Debug, Clone, Default)]
pub struct CheckpointRecord {
    /// Total events dispatched under the scope (across all engines). The
    /// shared index space for capture policy, crash injection and recovery
    /// verification.
    pub cursor: u64,
    /// Snapshots captured, in order (always populated, even with a
    /// directory sink).
    pub snapshots: Vec<Snapshot>,
    /// Snapshot files written (directory sinks only).
    pub files: Vec<PathBuf>,
    /// Path of the manifest maintained alongside the files.
    pub manifest: Option<PathBuf>,
    /// Cursor at which a configured verification snapshot matched.
    pub verified_at: Option<u64>,
    /// First verification divergence, if any.
    pub divergence: Option<RestoreError>,
    /// Cursor at which an injected crash fired.
    pub killed_at: Option<u64>,
    /// First persistence failure, if any (later writes are skipped).
    pub io_error: Option<String>,
}

/// RAII handle for an ambient checkpoint scope.
///
/// Call [`CheckpointGuard::finish`] to collect the record; merely dropping
/// the guard (e.g. on a panic that unwinds past it) discards the scope and
/// restores whatever scope was active before. The recovery harness
/// therefore holds the guard *outside* its `catch_unwind` so snapshots
/// survive the injected crash.
#[must_use = "checkpoint scopes must be finished to collect their record"]
pub struct CheckpointGuard {
    prev_mode: u8,
    prev_state: Option<CkState>,
}

/// Open an ambient checkpoint scope on this thread. Nesting is allowed;
/// the inner scope shadows the outer until finished or dropped.
pub fn begin(config: CheckpointConfig) -> CheckpointGuard {
    let prev_state = STATE.with(|s| s.borrow_mut().replace(CkState::new(config)));
    let prev_mode = MODE.with(|m| m.replace(MODE_ON));
    CheckpointGuard { prev_mode, prev_state }
}

impl CheckpointGuard {
    /// Close the scope and return everything it captured.
    pub fn finish(self) -> CheckpointRecord {
        // Take the record now; `Drop` then restores the previous scope.
        STATE.with(|s| s.borrow_mut().take()).map(CkState::into_record).unwrap_or_default()
    }
}

impl Drop for CheckpointGuard {
    fn drop(&mut self) {
        let prev = self.prev_state.take();
        STATE.with(|s| *s.borrow_mut() = prev);
        MODE.with(|m| m.set(self.prev_mode));
    }
}

/// Whether a checkpoint scope is active on this thread (one byte-load; the
/// engine's per-event fast path).
#[inline]
pub fn active() -> bool {
    MODE.with(|m| m.get()) != MODE_OFF
}

fn with_state<R>(f: impl FnOnce(&mut CkState) -> R) -> Option<R> {
    if !active() {
        return None;
    }
    STATE.with(|s| s.borrow_mut().as_mut().map(f))
}

/// What the engine should do after dispatching the current event.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct StepDirective {
    /// Capture a snapshot at this cursor.
    pub checkpoint: bool,
    /// Verify the scope's recovery snapshot against live state.
    pub verify: bool,
    /// Panic with an injected crash.
    pub kill: bool,
}

/// Advance the scope cursor past one dispatched event and decide what the
/// engine must do next. Called by the engine after every dispatch; the
/// cursor is the only index space — capture, verify and crash injection
/// all key on it.
pub(crate) fn on_event(now: SimTime) -> StepDirective {
    with_state(|s| {
        s.cursor += 1;
        StepDirective {
            checkpoint: s.policy.due(s.cursor, now.as_micros(), &mut s.times_fired),
            verify: s.verify.as_ref().is_some_and(|v| v.cursor == s.cursor),
            kill: s.kill_at == Some(s.cursor),
        }
    })
    .unwrap_or_default()
}

/// Capture a snapshot of the given frontier at the current cursor. Skips
/// silently if the cursor was already snapshotted (the budget-exhaustion
/// hook and an `every_n_events` boundary can land on the same event).
pub(crate) fn record(engine: EngineState, components: Vec<ComponentState>) {
    with_state(|s| {
        if s.snapshots.last().is_some_and(|p| p.cursor == s.cursor) {
            return;
        }
        let snap = Snapshot::sealed(s.meta.clone(), s.cursor, engine, components);
        s.persist(&snap);
        s.snapshots.push(snap);
    });
}

/// Whether the budget-exhaustion hook should emit a final snapshot: a
/// scope is active, events have run, and the current cursor is not already
/// covered by the latest snapshot.
pub(crate) fn halt_checkpoint_due() -> bool {
    with_state(|s| s.cursor > 0 && s.snapshots.last().is_none_or(|p| p.cursor != s.cursor))
        .unwrap_or(false)
}

/// Compare the live frontier against the scope's recovery snapshot.
/// Returns `true` on an exact match (the engine then runs its restore
/// hook); records the first divergence otherwise.
pub(crate) fn verify_frontier(engine: EngineState, components: Vec<ComponentState>) -> bool {
    with_state(|s| {
        let Some(snap) = s.verify.as_ref() else { return false };
        let result = engine_divergence(&snap.engine, &engine)
            .and_then(|()| components_divergence(&snap.components, &components));
        match result {
            Ok(()) => {
                s.verified_at = Some(s.cursor);
                true
            }
            Err(e) => {
                s.divergence.get_or_insert(e);
                false
            }
        }
    })
    .unwrap_or(false)
}

/// Mark the injected crash as fired and build its panic message.
pub(crate) fn kill_now() -> String {
    with_state(|s| {
        s.killed_at = Some(s.cursor);
        format!("checkpoint: injected crash at event {}", s.cursor)
    })
    .unwrap_or_else(|| "checkpoint: injected crash".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine_state(events: u64) -> EngineState {
        EngineState {
            now_micros: events * 10,
            next_seq: events + 1,
            events_processed: events,
            queued: 1,
            queue_digest: "00000000000000aa".into(),
            rng_seed: "ab".repeat(32),
            rng_word_pos: events * 2,
            trace_entries: events,
            trace_dropped: 0,
            open_spans: 0,
            trace_digest: "00000000000000bb".into(),
            run_digest: "00000000000000cc".into(),
        }
    }

    fn snap(cursor: u64) -> Snapshot {
        Snapshot::sealed(
            SnapshotMeta { experiment: "E1".into(), seed: 7 },
            cursor,
            engine_state(cursor),
            vec![ComponentState { name: "network".into(), digest: "00000000000000dd".into() }],
        )
    }

    #[test]
    fn sealed_snapshots_validate_and_detect_tampering() {
        let s = snap(100);
        assert_eq!(s.version, SNAPSHOT_VERSION);
        assert!(s.validate().is_ok());

        let mut edited = s.clone();
        edited.engine.rng_word_pos += 1;
        assert!(matches!(edited.validate(), Err(RestoreError::Corrupted { .. })));

        let mut wrong_version = s.clone();
        wrong_version.version = 99;
        assert_eq!(
            wrong_version.validate(),
            Err(RestoreError::VersionMismatch { found: 99, expected: SNAPSHOT_VERSION })
        );
    }

    #[test]
    fn snapshot_json_roundtrip() {
        let s = snap(42);
        let json = serde_json::to_string_pretty(&s).unwrap();
        let back: Snapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        assert!(back.validate().is_ok());
    }

    #[test]
    fn policy_every_n_fires_on_multiples() {
        let p = CheckpointPolicy::every_n_events(3);
        let mut fired = 0;
        let fires: Vec<u64> = (1..=10).filter(|&c| p.due(c, 0, &mut fired)).collect();
        assert_eq!(fires, vec![3, 6, 9]);
    }

    #[test]
    fn policy_at_times_fires_each_threshold_once() {
        let p = CheckpointPolicy::at_virtual_times([
            SimTime::from_micros(50),
            SimTime::from_micros(10),
            SimTime::from_micros(50),
        ]);
        let mut fired = 0;
        // Clock 5: nothing due yet.
        assert!(!p.due(1, 5, &mut fired));
        // Clock 60 crosses both thresholds at once: one snapshot, both
        // thresholds consumed.
        assert!(p.due(2, 60, &mut fired));
        assert_eq!(fired, 2);
        assert!(!p.due(3, 70, &mut fired));
    }

    #[test]
    #[should_panic(expected = "at least 1 event")]
    fn zero_interval_is_rejected() {
        let _ = CheckpointPolicy::every_n_events(0);
    }

    #[test]
    fn scope_records_deduplicates_and_kills() {
        let guard = begin(
            CheckpointConfig::new(CheckpointPolicy::every_n_events(2)).kill_at(5).meta("E1", 7),
        );
        for i in 1..=5u64 {
            let d = on_event(SimTime::from_micros(i * 10));
            if d.checkpoint {
                record(engine_state(i), Vec::new());
                // A second record at the same cursor must be a no-op.
                record(engine_state(i), Vec::new());
            }
            if d.kill {
                assert_eq!(i, 5);
                let msg = kill_now();
                assert!(msg.contains("injected crash at event 5"), "{msg}");
            }
        }
        // Simulate the budget hook firing right after event 5: cursor 5 has
        // no snapshot yet, so a final one is due — and then no longer.
        assert!(halt_checkpoint_due());
        record(engine_state(5), Vec::new());
        assert!(!halt_checkpoint_due());

        let rec = guard.finish();
        assert_eq!(rec.cursor, 5);
        assert_eq!(rec.snapshots.iter().map(|s| s.cursor).collect::<Vec<_>>(), vec![2, 4, 5]);
        assert_eq!(rec.killed_at, Some(5));
        assert_eq!(rec.snapshots[0].meta.experiment, "E1");
        assert!(!active(), "finish must close the scope");
    }

    #[test]
    fn verify_matches_and_reports_first_divergence() {
        let reference = snap(3);

        // Exact replay: verified at the cursor.
        let guard =
            begin(CheckpointConfig::new(CheckpointPolicy::manual()).verify(reference.clone()));
        for i in 1..=3u64 {
            let d = on_event(SimTime::from_micros(i));
            if d.verify {
                assert!(verify_frontier(
                    engine_state(i),
                    vec![ComponentState {
                        name: "network".into(),
                        digest: "00000000000000dd".into()
                    }],
                ));
            }
        }
        let rec = guard.finish();
        assert_eq!(rec.verified_at, Some(3));
        assert!(rec.divergence.is_none());

        // Diverged replay: the first differing field is named.
        let guard = begin(CheckpointConfig::new(CheckpointPolicy::manual()).verify(reference));
        for i in 1..=3u64 {
            let d = on_event(SimTime::from_micros(i));
            if d.verify {
                let mut wrong = engine_state(i);
                wrong.rng_word_pos += 7;
                assert!(!verify_frontier(wrong, Vec::new()));
            }
        }
        let rec = guard.finish();
        assert_eq!(rec.verified_at, None);
        match rec.divergence {
            Some(RestoreError::Divergence { ref field, .. }) => assert_eq!(field, "rng_word_pos"),
            other => panic!("expected a divergence, got {other:?}"),
        }
    }

    #[test]
    fn scopes_nest_and_restore_on_drop() {
        assert!(!active());
        let outer = begin(CheckpointConfig::new(CheckpointPolicy::manual()));
        on_event(SimTime::from_micros(1));
        {
            let inner = begin(CheckpointConfig::new(CheckpointPolicy::manual()));
            on_event(SimTime::from_micros(2));
            on_event(SimTime::from_micros(3));
            let rec = inner.finish();
            assert_eq!(rec.cursor, 2, "inner scope counts only its own events");
        }
        on_event(SimTime::from_micros(4));
        let rec = outer.finish();
        assert_eq!(rec.cursor, 2, "outer scope resumes after the inner closes");
        assert!(!active());
    }

    #[test]
    fn dir_sink_persists_atomically_with_chained_manifest() {
        let dir = std::env::temp_dir().join(format!(
            "tussle-ck-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let guard = begin(
            CheckpointConfig::new(CheckpointPolicy::every_n_events(1)).dir(&dir).meta("E2", 9),
        );
        for i in 1..=3u64 {
            let d = on_event(SimTime::from_micros(i));
            assert!(d.checkpoint);
            record(engine_state(i), Vec::new());
        }
        let rec = guard.finish();
        assert!(rec.io_error.is_none(), "{:?}", rec.io_error);
        assert_eq!(rec.files.len(), 3);

        // No temp files may survive the renames.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");

        // Every written snapshot loads back and validates.
        for (file, snap) in rec.files.iter().zip(&rec.snapshots) {
            assert_eq!(&load_snapshot(file).unwrap(), snap);
        }

        // The manifest chain holds, and breaks under tampering.
        let manifest = load_manifest(rec.manifest.as_deref().unwrap()).unwrap();
        assert_eq!(manifest.experiment, "E2");
        assert_eq!(manifest.seed, 9);
        assert_eq!(manifest.checkpoints.len(), 3);
        assert!(manifest.verify_chain());
        let mut tampered = manifest.clone();
        tampered.checkpoints.remove(1);
        assert!(!tampered.verify_chain());

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_snapshot_reports_structured_errors() {
        let dir = std::env::temp_dir().join(format!(
            "tussle-ck-load-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();

        let missing = dir.join("nope.json");
        assert!(matches!(load_snapshot(&missing), Err(RestoreError::Unreadable { .. })));

        let garbage = dir.join("garbage.json");
        std::fs::write(&garbage, "not json").unwrap();
        assert!(matches!(load_snapshot(&garbage), Err(RestoreError::Malformed { .. })));

        let mut wrong = snap(5);
        wrong.version = 99;
        let path = dir.join("wrong-version.json");
        std::fs::write(&path, serde_json::to_string_pretty(&wrong).unwrap()).unwrap();
        assert_eq!(
            load_snapshot(&path),
            Err(RestoreError::VersionMismatch { found: 99, expected: SNAPSHOT_VERSION })
        );

        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Distribution helpers: uniform sampling over ranges.

pub mod uniform {
    //! Uniform range sampling, mirroring `rand::distributions::uniform`.

    use crate::RngCore;
    use core::ops::{Range, RangeInclusive};

    /// Types that support uniform sampling between two bounds.
    pub trait SampleUniform: Sized {
        /// Uniform draw from `[low, high)` when `inclusive` is false, or
        /// `[low, high]` when true. Callers guarantee a non-empty range.
        fn sample_uniform<R: RngCore + ?Sized>(
            rng: &mut R,
            low: Self,
            high: Self,
            inclusive: bool,
        ) -> Self;
    }

    /// Range expressions (`a..b`, `a..=b`) usable with `Rng::gen_range`.
    pub trait SampleRange<T> {
        /// Draw one value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        /// Whether the range contains no values.
        fn is_empty(&self) -> bool;
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_uniform(rng, self.start, self.end, false)
        }
        fn is_empty(&self) -> bool {
            // Incomparable bounds (NaN) also count as empty.
            !matches!(self.start.partial_cmp(&self.end), Some(core::cmp::Ordering::Less))
        }
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (low, high) = self.into_inner();
            T::sample_uniform(rng, low, high, true)
        }
        fn is_empty(&self) -> bool {
            RangeInclusive::is_empty(self)
        }
    }

    macro_rules! impl_uniform_uint {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_uniform<R: RngCore + ?Sized>(
                    rng: &mut R,
                    low: Self,
                    high: Self,
                    inclusive: bool,
                ) -> Self {
                    // Span as u128 so `0..=u64::MAX` cannot overflow.
                    let span = (high as u128) - (low as u128) + if inclusive { 1 } else { 0 };
                    if span == 0 || span > u64::MAX as u128 {
                        // Full 64-bit span: every word is a valid draw.
                        return (low as u128).wrapping_add(rng.next_u64() as u128) as $t;
                    }
                    let span = span as u64;
                    // Widening-multiply rejection sampling (Lemire): unbiased
                    // and one division in the rare rejection path only.
                    let zone = span.wrapping_neg() % span;
                    loop {
                        let word = rng.next_u64();
                        let m = (word as u128) * (span as u128);
                        if (m as u64) >= zone {
                            return low + (m >> 64) as $t;
                        }
                    }
                }
            }
        )*};
    }

    impl_uniform_uint!(u8, u16, u32, u64, usize);

    macro_rules! impl_uniform_int {
        ($($t:ty => $u:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_uniform<R: RngCore + ?Sized>(
                    rng: &mut R,
                    low: Self,
                    high: Self,
                    inclusive: bool,
                ) -> Self {
                    // Map to the unsigned span, sample, map back.
                    let ulow = (low as $u) ^ (1 << (<$u>::BITS - 1));
                    let uhigh = (high as $u) ^ (1 << (<$u>::BITS - 1));
                    let drawn = <$u>::sample_uniform(rng, ulow, uhigh, inclusive);
                    (drawn ^ (1 << (<$u>::BITS - 1))) as $t
                }
            }
        )*};
    }

    impl_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

    macro_rules! impl_uniform_float {
        ($($t:ty => $next:ident, $shift:expr, $denom:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_uniform<R: RngCore + ?Sized>(
                    rng: &mut R,
                    low: Self,
                    high: Self,
                    _inclusive: bool,
                ) -> Self {
                    let unit = (rng.$next() >> $shift) as $t
                        / (1 as $denom << (<$denom>::BITS as usize - $shift)) as $t;
                    let v = low + unit * (high - low);
                    // Guard the open upper bound against rounding.
                    if v >= high && low < high {
                        low.max(high - (high - low) * <$t>::EPSILON)
                    } else {
                        v
                    }
                }
            }
        )*};
    }

    impl_uniform_float!(f64 => next_u64, 11, u64, f32 => next_u32, 8, u32);
}

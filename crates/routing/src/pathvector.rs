//! Path-vector (BGP-flavoured) inter-domain routing.
//!
//! The protocol the tussle actually produced (§V.A.4): providers control
//! policy, business relationships shape what is announced to whom, and the
//! protocol *hides* internal choices — a neighbor sees AS paths, never link
//! costs. Export filtering and route preference follow the Gao–Rexford
//! conditions, which encode the economics: routes learned from customers
//! (revenue) are preferred and announced to everyone; routes learned from
//! peers or providers (cost) are only ever handed down to customers.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use tussle_net::{Asn, Prefix};

/// What a neighbor is to me, commercially.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Relationship {
    /// The neighbor pays me for transit.
    Customer,
    /// I pay the neighbor for transit.
    Provider,
    /// Settlement-free peering.
    Peer,
}

impl Relationship {
    /// The same edge seen from the other side.
    pub fn inverse(self) -> Relationship {
        match self {
            Relationship::Customer => Relationship::Provider,
            Relationship::Provider => Relationship::Customer,
            Relationship::Peer => Relationship::Peer,
        }
    }
}

/// A route to a prefix as known by one AS.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Route {
    /// Destination prefix.
    pub prefix: Prefix,
    /// AS path, nearest first, ending at the originator.
    pub as_path: Vec<Asn>,
    /// Where this route was learned: the announcing neighbor and what that
    /// neighbor is to us. `None` means we originate the prefix.
    pub learned_from: Option<(Asn, Relationship)>,
}

impl Route {
    /// Gao–Rexford preference rank: higher is better.
    fn rank(&self) -> u8 {
        match self.learned_from {
            None => 3,                              // our own prefix
            Some((_, Relationship::Customer)) => 2, // revenue
            Some((_, Relationship::Peer)) => 1,     // free
            Some((_, Relationship::Provider)) => 0, // we pay
        }
    }

    /// Is `self` strictly preferred over `other`?
    fn better_than(&self, other: &Route) -> bool {
        (self.rank(), other.as_path.len(), other.first_hop())
            > (other.rank(), self.as_path.len(), self.first_hop())
    }

    fn first_hop(&self) -> u32 {
        self.as_path.first().map(|a| a.0).unwrap_or(0)
    }

    /// May this route be exported to a neighbor of kind `to`?
    ///
    /// The Gao–Rexford export rule: own and customer routes go to everyone;
    /// peer and provider routes go only to customers (no free transit).
    pub fn exportable_to(&self, to: Relationship) -> bool {
        match self.rank() {
            2.. => true,
            _ => to == Relationship::Customer,
        }
    }
}

#[derive(Debug, Clone, Default)]
struct AsState {
    neighbors: BTreeMap<Asn, Relationship>,
    originated: Vec<Prefix>,
    rib: BTreeMap<Prefix, Route>,
}

/// The inter-domain routing system: a set of ASes, their commercial
/// relationships, and per-AS routing tables.
#[derive(Debug, Clone, Default)]
pub struct AsGraph {
    ases: BTreeMap<Asn, AsState>,
}

impl AsGraph {
    /// An empty AS graph.
    pub fn new() -> Self {
        AsGraph::default()
    }

    /// Register an AS.
    pub fn add_as(&mut self, asn: Asn) {
        self.ases.entry(asn).or_default();
    }

    /// Record that `customer` buys transit from `provider`.
    pub fn customer_of(&mut self, customer: Asn, provider: Asn) {
        self.add_as(customer);
        self.add_as(provider);
        self.ases.get_mut(&customer).unwrap().neighbors.insert(provider, Relationship::Provider);
        self.ases.get_mut(&provider).unwrap().neighbors.insert(customer, Relationship::Customer);
    }

    /// Record settlement-free peering between `a` and `b`.
    pub fn peers(&mut self, a: Asn, b: Asn) {
        self.add_as(a);
        self.add_as(b);
        self.ases.get_mut(&a).unwrap().neighbors.insert(b, Relationship::Peer);
        self.ases.get_mut(&b).unwrap().neighbors.insert(a, Relationship::Peer);
    }

    /// Remove the session between two ASes (de-peering — a very real
    /// tussle move).
    pub fn disconnect(&mut self, a: Asn, b: Asn) {
        if let Some(s) = self.ases.get_mut(&a) {
            s.neighbors.remove(&b);
        }
        if let Some(s) = self.ases.get_mut(&b) {
            s.neighbors.remove(&a);
        }
        self.reset_ribs();
    }

    /// AS `asn` originates `prefix`.
    pub fn originate(&mut self, asn: Asn, prefix: Prefix) {
        self.add_as(asn);
        let st = self.ases.get_mut(&asn).unwrap();
        if !st.originated.contains(&prefix) {
            st.originated.push(prefix);
        }
        st.rib.insert(prefix, Route { prefix, as_path: vec![asn], learned_from: None });
    }

    /// Registered ASes, ascending.
    pub fn ases(&self) -> impl Iterator<Item = Asn> + '_ {
        self.ases.keys().copied()
    }

    /// The relationship `of` has with `with`, if adjacent.
    pub fn relationship(&self, of: Asn, with: Asn) -> Option<Relationship> {
        self.ases.get(&of)?.neighbors.get(&with).copied()
    }

    /// Drop all learned routes (keep originations) so the graph can
    /// reconverge after a topology change.
    pub fn reset_ribs(&mut self) {
        for st in self.ases.values_mut() {
            st.rib.retain(|_, r| r.learned_from.is_none());
        }
    }

    /// Run synchronous announcement rounds until no RIB changes, or
    /// `max_rounds` is hit. Returns the number of rounds used.
    pub fn converge(&mut self, max_rounds: usize) -> usize {
        let asns: Vec<Asn> = self.ases.keys().copied().collect();
        for round in 0..max_rounds {
            let mut changed = false;
            for &asn in &asns {
                // Collect announcements this AS makes to each neighbor.
                let exports: Vec<(Asn, Route)> = {
                    let st = &self.ases[&asn];
                    let mut exports = Vec::new();
                    for (&nbr, &rel) in &st.neighbors {
                        for route in st.rib.values() {
                            if route.exportable_to(rel) {
                                exports.push((nbr, route.clone()));
                            }
                        }
                    }
                    exports
                };
                for (nbr, route) in exports {
                    if route.as_path.contains(&nbr) {
                        continue; // loop prevention
                    }
                    // What is `asn` to `nbr`?
                    let rel_back = self.ases[&nbr].neighbors[&asn];
                    let mut path = Vec::with_capacity(route.as_path.len() + 1);
                    path.push(asn);
                    // asn is already at the head of its own route's path
                    if route.as_path.first() == Some(&asn) {
                        path = route.as_path.clone();
                    } else {
                        path.extend_from_slice(&route.as_path);
                    }
                    let candidate = Route {
                        prefix: route.prefix,
                        as_path: path,
                        learned_from: Some((asn, rel_back)),
                    };
                    let st = self.ases.get_mut(&nbr).unwrap();
                    let current = st.rib.get(&route.prefix);
                    let install = match current {
                        None => true,
                        Some(cur) => candidate.better_than(cur),
                    };
                    if install {
                        st.rib.insert(route.prefix, candidate);
                        changed = true;
                    }
                }
            }
            if !changed {
                return round + 1;
            }
        }
        max_rounds
    }

    /// The best route `asn` holds for `prefix`.
    pub fn best_route(&self, asn: Asn, prefix: Prefix) -> Option<&Route> {
        self.ases.get(&asn)?.rib.get(&prefix)
    }

    /// The AS path `asn` would use toward `prefix` (starting at `asn`'s
    /// next hop side — i.e. the stored path, which ends at the originator).
    pub fn as_path(&self, asn: Asn, prefix: Prefix) -> Option<&[Asn]> {
        self.best_route(asn, prefix).map(|r| r.as_path.as_slice())
    }

    /// Number of RIB entries at an AS (information it was *told*).
    pub fn rib_size(&self, asn: Asn) -> usize {
        self.ases.get(&asn).map(|s| s.rib.len()).unwrap_or(0)
    }

    /// Verify that a path of ASNs is valley-free in this graph: zero or
    /// more customer→provider hops, at most one peer hop, then zero or
    /// more provider→customer hops. This is the structural guarantee the
    /// Gao–Rexford rules buy.
    pub fn is_valley_free(&self, path: &[Asn]) -> bool {
        #[derive(PartialEq, PartialOrd)]
        enum Phase {
            Up,
            Peered,
            Down,
        }
        let mut phase = Phase::Up;
        for w in path.windows(2) {
            // relationship of w[0] toward w[1]
            let Some(rel) = self.relationship(w[0], w[1]) else {
                return false; // not even adjacent
            };
            match rel {
                Relationship::Provider => {
                    // going up: only allowed before any peer/down step
                    if phase > Phase::Up {
                        return false;
                    }
                }
                Relationship::Peer => {
                    if phase > Phase::Up {
                        return false;
                    }
                    phase = Phase::Peered;
                }
                Relationship::Customer => {
                    phase = Phase::Down;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(bits: u32) -> Prefix {
        Prefix::new(bits, 16)
    }

    /// Classic small topology:
    ///
    /// ```text
    ///        T1a ==peer== T1b        (tier 1s)
    ///       /   \           \
    ///     M1     M2          M3      (mid tier, customers of tier 1s)
    ///    /  \      \        /
    ///  S1    S2     S3    S4         (stubs)
    /// ```
    fn topology() -> AsGraph {
        let mut g = AsGraph::new();
        let (t1a, t1b) = (Asn(10), Asn(20));
        let (m1, m2, m3) = (Asn(100), Asn(200), Asn(300));
        let (s1, s2, s3, s4) = (Asn(1001), Asn(1002), Asn(1003), Asn(1004));
        g.peers(t1a, t1b);
        g.customer_of(m1, t1a);
        g.customer_of(m2, t1a);
        g.customer_of(m3, t1b);
        g.customer_of(s1, m1);
        g.customer_of(s2, m1);
        g.customer_of(s3, m2);
        g.customer_of(s4, m3);
        g
    }

    #[test]
    fn convergence_reaches_fixpoint() {
        let mut g = topology();
        g.originate(Asn(1001), p(0x0a010000));
        let rounds = g.converge(50);
        assert!(rounds < 50, "should converge, used {rounds} rounds");
        // everyone has a route
        for asn in [10, 20, 100, 200, 300, 1002, 1003, 1004] {
            assert!(
                g.best_route(Asn(asn), p(0x0a010000)).is_some(),
                "AS{asn} should learn the route"
            );
        }
    }

    #[test]
    fn paths_end_at_originator_and_are_valley_free() {
        let mut g = topology();
        g.originate(Asn(1001), p(0x0a010000));
        g.converge(50);
        for asn in [10, 20, 100, 200, 300, 1002, 1003, 1004] {
            let path = g.as_path(Asn(asn), p(0x0a010000)).unwrap();
            assert_eq!(*path.last().unwrap(), Asn(1001));
            assert!(g.is_valley_free(path), "AS{asn} path {path:?} has a valley");
        }
    }

    #[test]
    fn customer_routes_are_preferred() {
        // m1 can reach s1 directly (customer) or via t1a (provider);
        // it must pick the customer route.
        let mut g = topology();
        g.originate(Asn(1001), p(0x0a010000));
        g.converge(50);
        let r = g.best_route(Asn(100), p(0x0a010000)).unwrap();
        assert_eq!(r.learned_from.unwrap().1, Relationship::Customer);
        assert_eq!(r.as_path, vec![Asn(1001)]);
    }

    #[test]
    fn no_free_transit_through_peers() {
        // A stub of t1a (via m1) and a stub of t1b (via m3) can reach each
        // other ONLY because t1a/t1b peer; but m-tier ASes must never carry
        // peer-learned routes to their providers.
        let mut g = topology();
        g.originate(Asn(1004), p(0x0d040000));
        g.converge(50);
        // s1 reaches s4 through the peering spine
        let path = g.as_path(Asn(1001), p(0x0d040000)).unwrap().to_vec();
        assert!(g.is_valley_free(&path));
        assert!(path.starts_with(&[Asn(100), Asn(10), Asn(20)]), "path {path:?}");
    }

    #[test]
    fn sibling_stubs_route_through_shared_provider() {
        let mut g = topology();
        g.originate(Asn(1002), p(0x0b020000));
        g.converge(50);
        let path = g.as_path(Asn(1001), p(0x0b020000)).unwrap();
        assert_eq!(path, [Asn(100), Asn(1002)]);
    }

    #[test]
    fn depeering_partitions_the_spine() {
        let mut g = topology();
        g.originate(Asn(1004), p(0x0d040000));
        g.converge(50);
        assert!(g.best_route(Asn(1001), p(0x0d040000)).is_some());
        // tier-1s de-peer: the only valley-free route vanishes
        g.disconnect(Asn(10), Asn(20));
        g.converge(50);
        assert!(
            g.best_route(Asn(1001), p(0x0d040000)).is_none(),
            "depeering must break stub-to-stub reachability"
        );
    }

    #[test]
    fn multihomed_customer_prefers_shorter_customer_path() {
        let mut g = AsGraph::new();
        g.customer_of(Asn(2), Asn(1));
        g.customer_of(Asn(3), Asn(1));
        g.customer_of(Asn(3), Asn(2)); // 3 buys from both 1 and 2
        g.originate(Asn(3), p(0x0c030000));
        g.converge(20);
        // AS1 hears the route directly from customer 3 (path [3]) and via
        // customer 2 (path [2,3]); both are customer routes, shorter wins.
        let r = g.best_route(Asn(1), p(0x0c030000)).unwrap();
        assert_eq!(r.as_path, vec![Asn(3)]);
    }

    #[test]
    fn loop_prevention() {
        let mut g = AsGraph::new();
        g.customer_of(Asn(2), Asn(1));
        g.customer_of(Asn(1), Asn(2)); // pathological mutual transit
        g.originate(Asn(1), p(0x0a000000));
        let rounds = g.converge(50);
        assert!(rounds < 50, "mutual transit must still converge");
        let r = g.best_route(Asn(2), p(0x0a000000)).unwrap();
        assert_eq!(r.as_path, vec![Asn(1)]);
    }

    #[test]
    fn rib_size_counts_information_received() {
        let mut g = topology();
        g.originate(Asn(1001), p(0x0a010000));
        g.originate(Asn(1004), p(0x0d040000));
        g.converge(50);
        assert_eq!(g.rib_size(Asn(10)), 2);
        assert_eq!(g.rib_size(Asn(9999)), 0);
    }

    #[test]
    fn relationship_inverse() {
        assert_eq!(Relationship::Customer.inverse(), Relationship::Provider);
        assert_eq!(Relationship::Peer.inverse(), Relationship::Peer);
    }

    #[test]
    fn valley_free_rejects_peer_then_up() {
        let g = topology();
        // 100 -> 10 (up), 10 -> 20 (peer), 20 -> 300 (down) : ok
        assert!(g.is_valley_free(&[Asn(100), Asn(10), Asn(20), Asn(300)]));
        // 10 -> 20 (peer) then 20's customer 300 then back UP to 20? not adjacent pattern; craft:
        // 300 -> 20 (up), 20 -> 10 (peer), 10 -> 20? no. Use: peer then peer is a valley in our graph? only one peer edge exists.
        // down then up is a valley:
        assert!(!g.is_valley_free(&[Asn(10), Asn(100), Asn(10)]));
        // non-adjacent ASes are rejected
        assert!(!g.is_valley_free(&[Asn(1001), Asn(1004)]));
    }
}

//! Fuzzer bench: what scenario generation and the oracle registry cost.
//!
//! Three questions, three groups:
//!
//! 1. `fuzz/generate` — how fast the seeded scenario generator runs on its
//!    own (the mutation loop's floor).
//! 2. `fuzz/run-scenario` — one scenario executed end to end with every
//!    always-on oracle (packet conservation, route validity, money
//!    conservation, NAT round-trip, policy determinism) attached.
//! 3. `fuzz/oracles` — the sampled cross-run oracles, priced individually:
//!    rerun-determinism (2× runs), cache-equivalence (cache-on vs
//!    cache-off) and checkpoint-resume (run + snapshot + replay), plus a
//!    small end-to-end campaign so oracle overhead can be read against
//!    total campaign cost.
//!
//! ```sh
//! cargo bench -p tussle-bench --bench fuzz
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tussle_experiments::fuzz::{
    check_cache_equivalence, check_checkpoint_resume, check_rerun_determinism, generate, mutate,
    run_scenario,
};
use tussle_experiments::{run_fuzz, FuzzConfig};
use tussle_sim::SimRng;

fn bench_generate(c: &mut Criterion) {
    let mut g = c.benchmark_group("fuzz");
    g.bench_function("generate", |b| {
        let mut rng = SimRng::seed_from_u64(7).fork("bench-generate");
        b.iter(|| black_box(generate(&mut rng)))
    });
    g.bench_function("mutate", |b| {
        let mut rng = SimRng::seed_from_u64(7).fork("bench-mutate");
        let base = generate(&mut rng);
        b.iter(|| black_box(mutate(&mut rng, black_box(&base))))
    });
    g.finish();
}

fn bench_run_scenario(c: &mut Criterion) {
    let mut rng = SimRng::seed_from_u64(11).fork("bench-run");
    let scenario = generate(&mut rng);
    let mut g = c.benchmark_group("fuzz");
    g.sample_size(20);
    g.bench_function("run-scenario", |b| b.iter(|| black_box(run_scenario(black_box(&scenario)))));
    g.finish();
}

fn bench_oracles(c: &mut Criterion) {
    let mut rng = SimRng::seed_from_u64(13).fork("bench-oracle");
    let scenario = generate(&mut rng);
    let mut g = c.benchmark_group("fuzz");
    g.sample_size(10);
    g.bench_function("oracle-rerun-determinism", |b| {
        b.iter(|| black_box(check_rerun_determinism(black_box(&scenario))))
    });
    g.bench_function("oracle-cache-equivalence", |b| {
        b.iter(|| black_box(check_cache_equivalence(black_box(&scenario))))
    });
    g.bench_function("oracle-checkpoint-resume", |b| {
        b.iter(|| black_box(check_checkpoint_resume(black_box(&scenario))))
    });
    g.bench_function("campaign-budget-20", |b| {
        let cfg = FuzzConfig { budget: 20, seeds: 2, base_seed: 1, ..FuzzConfig::default() };
        b.iter(|| black_box(run_fuzz(black_box(&cfg)).expect("campaign runs")))
    });
    g.finish();
}

criterion_group!(benches, bench_generate, bench_run_scenario, bench_oracles);
criterion_main!(benches);

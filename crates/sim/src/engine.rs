//! The discrete-event engine.
//!
//! An [`Engine`] owns a world `W`, a virtual clock, an event queue and the
//! shared facilities (RNG, metrics, trace). Event handlers receive
//! `(&mut W, &mut Ctx<W>)`; the context lets them read the clock, draw
//! randomness, record metrics/trace entries, schedule further events and
//! request a stop. Newly scheduled events are buffered in the context and
//! merged into the queue after the handler returns, preserving the total
//! `(time, sequence)` order.

use crate::checkpoint::{self, ComponentState, EngineState, RestoreError, Snapshot, SnapshotMeta};
use crate::digest::{Fnv1a, RunDigest};
use crate::event::{EventFn, EventId, Scheduled};
use crate::metrics::Metrics;
use crate::obs;
use crate::provenance::{Provenance, ProvenanceNode};
use crate::rng::SimRng;
use crate::time::SimTime;
use crate::trace::Trace;
use std::collections::BinaryHeap;
use std::time::Instant;

/// Context handed to every event handler.
pub struct Ctx<'a, W> {
    now: SimTime,
    /// Random stream for the run.
    pub rng: &'a mut SimRng,
    /// Metric sink for the run.
    pub metrics: &'a mut Metrics,
    /// Trace ring for the run.
    pub trace: &'a mut Trace,
    /// Buffered child events: (time, handler, innermost open span at
    /// schedule time). The span travels into the child's provenance node.
    pending: Vec<(SimTime, EventFn<W>, Option<String>)>,
    stop: bool,
    /// First topic traced via the context during this handler — what the
    /// profiler attributes the whole event to.
    first_topic: Option<String>,
    /// The id of the event this context is dispatching; children scheduled
    /// through the context record it as their provenance parent.
    event: EventId,
}

impl<'a, W> Ctx<'a, W> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the event currently being dispatched.
    pub fn event_id(&self) -> EventId {
        self.event
    }

    /// Schedule `f` at absolute time `at`. Times earlier than `now` are
    /// clamped to `now` (events cannot run in the past).
    pub fn schedule_at(&mut self, at: SimTime, f: impl FnOnce(&mut W, &mut Ctx<W>) + 'static) {
        let at = at.max(self.now);
        let span = self.trace.current_span().map(str::to_owned);
        self.pending.push((at, Box::new(f), span));
    }

    /// Schedule `f` after a relative `delay`.
    pub fn schedule_in(&mut self, delay: SimTime, f: impl FnOnce(&mut W, &mut Ctx<W>) + 'static) {
        let at = self.now.saturating_add(delay);
        let span = self.trace.current_span().map(str::to_owned);
        self.pending.push((at, Box::new(f), span));
    }

    /// Record a trace entry stamped with the current time.
    pub fn trace(&mut self, topic: &str, message: impl Into<String>) {
        self.note_topic(topic);
        self.trace.record(self.now, topic, message);
    }

    /// Record a structured trace event with a stakeholder and fields.
    pub fn trace_fields(
        &mut self,
        topic: &str,
        stakeholder: Option<&str>,
        fields: &[(&str, &str)],
        message: impl Into<String>,
    ) {
        self.note_topic(topic);
        self.trace.record_fields(self.now, topic, stakeholder, fields, message);
    }

    /// Open a span stamped with the current time. Close it with
    /// [`Ctx::span_exit`] before the handler returns (the trace keeps its
    /// own stack, so spans may also outlive the handler deliberately).
    pub fn span_enter(&mut self, topic: &str, stakeholder: Option<&str>, fields: &[(&str, &str)]) {
        self.note_topic(topic);
        self.trace.span_enter(self.now, topic, stakeholder, fields);
    }

    /// Close the innermost open span, returning its topic.
    pub fn span_exit(&mut self, fields: &[(&str, &str)]) -> Option<String> {
        self.trace.span_exit(self.now, fields)
    }

    fn note_topic(&mut self, topic: &str) {
        // Only the profiler reads this attribution; skip the allocation
        // entirely outside Profile mode so tracing stays free when off.
        if self.first_topic.is_none() && obs::profiling() {
            self.first_topic = Some(topic.to_owned());
        }
    }

    /// Ask the engine to stop after this handler returns.
    pub fn stop(&mut self) {
        self.stop = true;
    }
}

/// A watchdog budget for one engine run: hard caps on events executed and
/// virtual time reached. Chaos scenarios (retry storms, flapping links
/// rescheduling each other) can otherwise generate events faster than they
/// drain; a budget turns that runaway into a structured [`RunOutcome`]
/// instead of a hang.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunBudget {
    /// Maximum events to execute in this run.
    pub max_events: u64,
    /// Horizon: events scheduled after this virtual time do not run.
    pub max_time: SimTime,
}

impl RunBudget {
    /// No limits (equivalent to [`Engine::run_to_completion`]).
    pub fn unlimited() -> Self {
        RunBudget { max_events: u64::MAX, max_time: SimTime::MAX }
    }

    /// Cap events only.
    pub fn events(max_events: u64) -> Self {
        RunBudget { max_events, ..RunBudget::unlimited() }
    }

    /// Cap virtual time only.
    pub fn until(max_time: SimTime) -> Self {
        RunBudget { max_time, ..RunBudget::unlimited() }
    }

    /// Cap both.
    pub fn new(max_events: u64, max_time: SimTime) -> Self {
        RunBudget { max_events, max_time }
    }
}

/// Why a budgeted run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum RunOutcome {
    /// The queue drained: the scenario ran out of work on its own.
    Drained,
    /// A handler requested a stop.
    Stopped,
    /// The watchdog tripped: the event cap was reached with work queued.
    EventBudgetExhausted,
    /// The watchdog tripped: the next event lies past the time horizon.
    TimeBudgetExhausted,
}

impl RunOutcome {
    /// Did the scenario end by itself (drain or explicit stop) rather than
    /// by the watchdog?
    pub fn completed(self) -> bool {
        matches!(self, RunOutcome::Drained | RunOutcome::Stopped)
    }
}

/// The structured result of [`Engine::run_budgeted`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunReport {
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Events executed in this run.
    pub events: u64,
    /// The clock when the run ended.
    pub ended_at: SimTime,
}

/// A deterministic discrete-event simulation engine over a world `W`.
pub struct Engine<W> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Scheduled<W>>,
    /// The simulated world; public so scenario code can inspect and mutate
    /// it between runs.
    pub world: W,
    rng: SimRng,
    metrics: Metrics,
    trace: Trace,
    provenance: Provenance,
    stopped: bool,
    events_processed: u64,
    /// Captures substrate component digests for ambient checkpoints, when
    /// the world's constructor installed one (the traffic engine registers
    /// its network and flow digests here).
    world_probe: Option<WorldProbe<W>>,
    /// Invalidation hook run when an ambient verify succeeds: the restore
    /// boundary for worlds carrying derived caches.
    restore_hook: Option<RestoreHook<W>>,
}

/// Component-digest capture installed with [`Engine::set_snapshot_probe`].
type WorldProbe<W> = Box<dyn Fn(&W) -> Vec<ComponentState>>;
/// Cache-invalidation hook installed with [`Engine::set_restore_hook`].
type RestoreHook<W> = Box<dyn Fn(&mut W)>;

impl<W> Engine<W> {
    /// New engine over `world`, seeded for reproducibility.
    pub fn new(world: W, seed: u64) -> Self {
        Engine {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            world,
            rng: SimRng::seed_from_u64(seed),
            metrics: Metrics::new(),
            trace: Trace::default(),
            provenance: Provenance::default(),
            stopped: false,
            events_processed: 0,
            world_probe: None,
            restore_hook: None,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of events currently queued.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Metric sink (read).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Metric sink (write) — for scenario-level bookkeeping outside events.
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Trace ring (read).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Trace ring (write).
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// Causal provenance of dispatched events (read).
    pub fn provenance(&self) -> &Provenance {
        &self.provenance
    }

    /// Causal provenance (write) — e.g. to disable or resize the capture.
    pub fn provenance_mut(&mut self) -> &mut Provenance {
        &mut self.provenance
    }

    /// The run's random stream — for setup code that draws outside events.
    pub fn rng_mut(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// The next scheduling sequence number (the total-order tiebreak
    /// position a new event would receive).
    pub fn next_seq(&self) -> u64 {
        self.seq
    }

    /// Digest of the queue's *shape*: every pending event's `(time, seq,
    /// parent, span)`, sorted into dispatch order. The closures themselves
    /// cannot be digested; their scheduling coordinates pin the replay — a
    /// reconstruction that builds a different queue is caught here.
    pub fn queue_digest(&self) -> String {
        let mut shape: Vec<(u64, u64, u64, Option<&str>)> = self
            .queue
            .iter()
            .map(|ev| {
                (
                    ev.time.as_micros(),
                    ev.seq,
                    ev.parent.map_or(u64::MAX, |p| p.0),
                    ev.span.as_deref(),
                )
            })
            .collect();
        shape.sort_unstable_by_key(|&(time, seq, ..)| (time, seq));
        let mut h = Fnv1a::new();
        h.write_u64(shape.len() as u64);
        for (time, seq, parent, span) in shape {
            h.write_u64(time);
            h.write_u64(seq);
            h.write_u64(parent);
            match span {
                Some(s) => h.write_str(s),
                None => h.write_u8(0),
            }
        }
        RunDigest(h.finish()).to_hex()
    }

    /// The engine-side replay frontier: what checkpoints record and what
    /// restore verifies. See [`crate::checkpoint`].
    pub fn core_state(&self) -> EngineState {
        EngineState {
            now_micros: self.now.as_micros(),
            next_seq: self.seq,
            events_processed: self.events_processed,
            queued: self.queue.len() as u64,
            queue_digest: self.queue_digest(),
            rng_seed: self.rng.seed().iter().map(|b| format!("{b:02x}")).collect(),
            rng_word_pos: self.rng.word_pos(),
            trace_entries: self.trace.len() as u64,
            trace_dropped: self.trace.dropped(),
            open_spans: self.trace.open_spans() as u64,
            trace_digest: self.trace.digest().to_hex(),
            run_digest: self.digest().to_hex(),
        }
    }

    /// Install a probe that captures substrate component digests into
    /// ambient checkpoints. World constructors (not experiment code) call
    /// this so every checkpoint of the run carries the substrate state.
    pub fn set_snapshot_probe(&mut self, probe: impl Fn(&W) -> Vec<ComponentState> + 'static) {
        self.world_probe = Some(Box::new(probe));
    }

    /// Install the hook run when an ambient verify succeeds — the restore
    /// boundary. Implementations must invalidate derived caches here (the
    /// traffic engine bumps the network's topology generation) so nothing
    /// cached before a crash can leak across it.
    pub fn set_restore_hook(&mut self, hook: impl Fn(&mut W) + 'static) {
        self.restore_hook = Some(Box::new(hook));
    }

    fn probe_components(&self) -> Vec<ComponentState> {
        self.world_probe.as_ref().map_or_else(Vec::new, |probe| probe(&self.world))
    }

    /// Feed the ambient checkpoint scope after one dispatch: capture,
    /// verify, or crash as the scope directs. Kept out of `step`'s happy
    /// path — `checkpoint::active()` is a single byte-load when no scope
    /// is open.
    fn checkpoint_step(&mut self) {
        let directive = checkpoint::on_event(self.now);
        if directive.checkpoint {
            checkpoint::record(self.core_state(), self.probe_components());
        }
        if directive.verify
            && checkpoint::verify_frontier(self.core_state(), self.probe_components())
        {
            // A verified replay crosses the restore boundary: let the
            // world invalidate its derived caches.
            if let Some(hook) = &self.restore_hook {
                hook(&mut self.world);
            }
        }
        if directive.kill {
            panic!("{}", checkpoint::kill_now());
        }
    }

    /// Schedule `f` at absolute time `at` (clamped to `now`). Events
    /// scheduled here — from outside any handler — are *root injections*:
    /// their provenance records no parent.
    pub fn schedule_at(&mut self, at: SimTime, f: impl FnOnce(&mut W, &mut Ctx<W>) + 'static) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled { time: at, seq, f: Box::new(f), parent: None, span: None });
    }

    /// Schedule `f` after a relative `delay`.
    pub fn schedule_in(&mut self, delay: SimTime, f: impl FnOnce(&mut W, &mut Ctx<W>) + 'static) {
        self.schedule_at(self.now.saturating_add(delay), f);
    }

    /// Run the next event. Returns `false` when the queue is empty or a
    /// handler requested a stop.
    pub fn step(&mut self) -> bool {
        if self.stopped {
            return false;
        }
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.time >= self.now, "event queue produced a past event");
        let Scheduled { time, seq, f, parent, span } = ev;
        // Virtual time attributed to this event: how far it advanced the
        // clock. Wall-clock reads are gated on Profile mode so the common
        // Off/Cost paths never touch `Instant`.
        let virtual_micros = time.as_micros().saturating_sub(self.now.as_micros());
        let started = if obs::profiling() { Some(Instant::now()) } else { None };
        self.now = time;
        let id = EventId(seq);
        let node = ProvenanceNode { id, parent, time, span };
        obs::on_dispatch(&node);
        self.provenance.record(node);
        self.metrics.record_series("engine.events", time, 1);
        self.trace.set_current_event(Some(id));
        let mut ctx = Ctx {
            now: self.now,
            rng: &mut self.rng,
            metrics: &mut self.metrics,
            trace: &mut self.trace,
            pending: Vec::new(),
            stop: false,
            first_topic: None,
            event: id,
        };
        f(&mut self.world, &mut ctx);
        let Ctx { pending, stop, first_topic, .. } = ctx;
        if let Some(start) = started {
            let topic = first_topic.as_deref().unwrap_or("engine.untraced");
            obs::on_handler(topic, virtual_micros, start.elapsed().as_nanos() as u64);
        }
        self.trace.set_current_event(None);
        obs::on_dispatch_end();
        for (at, f, span) in pending {
            let seq = self.seq;
            self.seq += 1;
            self.queue.push(Scheduled { time: at, seq, f, parent: Some(id), span });
        }
        self.events_processed += 1;
        if checkpoint::active() {
            self.checkpoint_step();
        }
        if stop {
            self.stopped = true;
        }
        !self.stopped
    }

    /// Run until the queue drains, a handler stops the engine, or
    /// `max_events` have executed. Returns the number of events run,
    /// including the event whose handler requested the stop; an engine that
    /// is already stopped (or has an empty queue) runs zero events.
    pub fn run(&mut self, max_events: u64) -> u64 {
        let before = self.events_processed;
        while self.events_processed - before < max_events && self.step() {}
        self.events_processed - before
    }

    /// Run events up to and including time `until`. Events scheduled later
    /// stay queued. Returns the number of events run.
    pub fn run_until(&mut self, until: SimTime) -> u64 {
        let before = self.events_processed;
        while !self.stopped {
            match self.queue.peek() {
                Some(ev) if ev.time <= until => {
                    self.step();
                }
                _ => break,
            }
        }
        // The clock advances to the horizon even if no event sits exactly on
        // it, so periodic scenario code sees consistent "end of epoch" times.
        // A stop freezes the clock at the stopping event's time instead:
        // time must not appear to pass on a halted engine.
        if !self.stopped && self.now < until {
            self.now = until;
        }
        self.events_processed - before
    }

    /// Drain the queue completely (no event cap). Intended for scenarios
    /// that are known to terminate.
    pub fn run_to_completion(&mut self) -> u64 {
        self.run(u64::MAX)
    }

    /// Run under a watchdog [`RunBudget`]: execute events until the queue
    /// drains, a handler stops the engine, or a budget cap trips. Like
    /// [`Engine::run_until`], the clock advances to the time horizon when
    /// the run ends because the next event lies past it.
    pub fn run_budgeted(&mut self, budget: &RunBudget) -> RunReport {
        let before = self.events_processed;
        let outcome = loop {
            if self.stopped {
                break RunOutcome::Stopped;
            }
            let Some(next) = self.queue.peek() else {
                break RunOutcome::Drained;
            };
            if next.time > budget.max_time {
                if self.now < budget.max_time {
                    self.now = budget.max_time;
                }
                break RunOutcome::TimeBudgetExhausted;
            }
            if self.events_processed - before >= budget.max_events {
                break RunOutcome::EventBudgetExhausted;
            }
            self.step();
        };
        // A budget-halted run must stay resumable: emit a final snapshot at
        // the halt frontier unless one already covers it (the budget can
        // expire exactly on a policy checkpoint event).
        if !outcome.completed() && checkpoint::halt_checkpoint_due() {
            checkpoint::record(self.core_state(), self.probe_components());
        }
        RunReport { outcome, events: self.events_processed - before, ended_at: self.now }
    }

    /// Whether a handler has requested a stop.
    pub fn is_stopped(&self) -> bool {
        self.stopped
    }

    /// Digest of this run so far: the retained structured trace plus the
    /// current metrics snapshot. The one-line determinism check for code
    /// that owns the engine.
    pub fn digest(&self) -> RunDigest {
        RunDigest::of_run(&self.trace, &self.metrics)
    }

    /// Consume the engine, returning the world and the metrics.
    pub fn into_parts(self) -> (W, Metrics, Trace) {
        (self.world, self.metrics, self.trace)
    }
}

impl<W: checkpoint::Snapshottable> Engine<W> {
    /// Capture a snapshot of this engine's current state, including the
    /// world's component digest. Uses the engine-local event count as the
    /// cursor; snapshots taken by an ambient scope policy use the
    /// scope-global cursor instead.
    pub fn checkpoint(&self) -> Snapshot {
        Snapshot::sealed(
            SnapshotMeta::default(),
            self.events_processed,
            self.core_state(),
            vec![ComponentState::of(&self.world)],
        )
    }

    /// Verify this engine against `snapshot` and cross the restore
    /// boundary.
    ///
    /// Restore does not overwrite state — the queue's closures cannot be
    /// deserialized, so the caller reconstructs the run deterministically
    /// (same seed, same schedule) and `restore` proves the reconstruction
    /// matches the snapshot field by field, returning the first
    /// [`RestoreError::Divergence`] otherwise. On success it calls
    /// [`checkpoint::Snapshottable::post_restore`] so the world drops
    /// derived caches (the network bumps its topology generation, killing
    /// the next-hop memo) — cached state never leaks across a crash
    /// boundary.
    pub fn restore(&mut self, snapshot: &Snapshot) -> Result<(), RestoreError> {
        snapshot.validate()?;
        checkpoint::engine_divergence(&snapshot.engine, &self.core_state())?;
        checkpoint::components_divergence(
            &snapshot.components,
            &[ComponentState::of(&self.world)],
        )?;
        self.world.post_restore();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct World {
        log: Vec<u32>,
    }

    #[test]
    fn events_run_in_time_order() {
        let mut eng = Engine::new(World::default(), 1);
        eng.schedule_at(SimTime::from_millis(30), |w: &mut World, _| w.log.push(3));
        eng.schedule_at(SimTime::from_millis(10), |w: &mut World, _| w.log.push(1));
        eng.schedule_at(SimTime::from_millis(20), |w: &mut World, _| w.log.push(2));
        eng.run_to_completion();
        assert_eq!(eng.world.log, [1, 2, 3]);
        assert_eq!(eng.now(), SimTime::from_millis(30));
    }

    #[test]
    fn simultaneous_events_run_in_schedule_order() {
        let mut eng = Engine::new(World::default(), 1);
        for i in 0..10 {
            eng.schedule_at(SimTime::from_millis(5), move |w: &mut World, _| w.log.push(i));
        }
        eng.run_to_completion();
        assert_eq!(eng.world.log, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn handlers_can_schedule_more_events() {
        let mut eng = Engine::new(World::default(), 1);
        eng.schedule_at(SimTime::from_millis(1), |w: &mut World, ctx| {
            w.log.push(1);
            ctx.schedule_in(SimTime::from_millis(1), |w: &mut World, ctx| {
                w.log.push(2);
                ctx.schedule_in(SimTime::from_millis(1), |w: &mut World, _| w.log.push(3));
            });
        });
        eng.run_to_completion();
        assert_eq!(eng.world.log, [1, 2, 3]);
        assert_eq!(eng.now(), SimTime::from_millis(3));
        assert_eq!(eng.events_processed(), 3);
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut eng = Engine::new(World::default(), 1);
        eng.schedule_at(SimTime::from_millis(10), |w: &mut World, _| w.log.push(1));
        eng.schedule_at(SimTime::from_millis(50), |w: &mut World, _| w.log.push(5));
        let n = eng.run_until(SimTime::from_millis(20));
        assert_eq!(n, 1);
        assert_eq!(eng.world.log, [1]);
        assert_eq!(eng.now(), SimTime::from_millis(20));
        assert_eq!(eng.queued(), 1);
        eng.run_until(SimTime::from_millis(100));
        assert_eq!(eng.world.log, [1, 5]);
    }

    #[test]
    fn stop_halts_the_run() {
        let mut eng = Engine::new(World::default(), 1);
        eng.schedule_at(SimTime::from_millis(1), |w: &mut World, ctx| {
            w.log.push(1);
            ctx.stop();
        });
        eng.schedule_at(SimTime::from_millis(2), |w: &mut World, _| w.log.push(2));
        eng.run_to_completion();
        assert_eq!(eng.world.log, [1]);
        assert!(eng.is_stopped());
        assert!(!eng.step());
    }

    #[test]
    fn run_on_stopped_engine_counts_zero_events() {
        let mut eng = Engine::new(World::default(), 1);
        eng.schedule_at(SimTime::from_millis(1), |w: &mut World, ctx| {
            w.log.push(1);
            ctx.stop();
        });
        assert_eq!(eng.run(10), 1, "the stopping event itself counts");
        // Subsequent runs on a stopped engine execute nothing at all.
        assert_eq!(eng.run(10), 0);
        assert_eq!(eng.run_to_completion(), 0);
        assert_eq!(eng.events_processed(), 1);
    }

    #[test]
    fn run_until_freezes_clock_on_stop() {
        let mut eng = Engine::new(World::default(), 1);
        eng.schedule_at(SimTime::from_millis(5), |w: &mut World, ctx| {
            w.log.push(1);
            ctx.stop();
        });
        eng.schedule_at(SimTime::from_millis(8), |w: &mut World, _| w.log.push(2));
        let n = eng.run_until(SimTime::from_millis(100));
        assert_eq!(n, 1);
        assert_eq!(eng.world.log, [1]);
        // A stop freezes the clock at the stopping event, not the horizon.
        assert_eq!(eng.now(), SimTime::from_millis(5));
        // And a further run_until on the stopped engine does nothing.
        assert_eq!(eng.run_until(SimTime::from_millis(200)), 0);
        assert_eq!(eng.now(), SimTime::from_millis(5));
    }

    #[test]
    fn past_schedules_clamp_to_now() {
        let mut eng = Engine::new(World::default(), 1);
        eng.schedule_at(SimTime::from_millis(10), |w: &mut World, ctx| {
            // Deliberately in the past; must run at `now`, not panic.
            ctx.schedule_at(SimTime::from_millis(1), |w: &mut World, _| w.log.push(2));
            w.log.push(1);
        });
        eng.run_to_completion();
        assert_eq!(eng.world.log, [1, 2]);
        assert_eq!(eng.now(), SimTime::from_millis(10));
    }

    #[test]
    fn identical_seeds_produce_identical_runs() {
        fn run(seed: u64) -> Vec<u32> {
            let mut eng = Engine::new(World::default(), seed);
            for _ in 0..5 {
                eng.schedule_at(SimTime::ZERO, |w: &mut World, ctx| {
                    let delay = SimTime::from_micros(ctx.rng.range(1..1000u64));
                    ctx.schedule_in(delay, move |w2: &mut World, _| {
                        w2.log.push(delay.as_micros() as u32)
                    });
                    let _ = w;
                });
            }
            eng.run_to_completion();
            eng.world.log
        }
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(100));
    }

    #[test]
    fn ctx_trace_and_metrics() {
        let mut eng = Engine::new(World::default(), 1);
        eng.schedule_at(SimTime::from_millis(7), |_, ctx| {
            ctx.trace("test.topic", "hello");
            ctx.metrics.incr("events");
        });
        eng.run_to_completion();
        assert_eq!(eng.metrics().counter("events"), 1);
        let e = eng.trace().entries().next().unwrap();
        assert_eq!(e.time, SimTime::from_millis(7));
        assert_eq!(e.topic, "test.topic");
    }

    /// An event that perpetually reschedules itself: the runaway scenario
    /// the watchdog exists for.
    fn runaway(w: &mut World, ctx: &mut Ctx<World>) {
        w.log.push(0);
        ctx.schedule_in(SimTime::from_millis(1), runaway);
    }

    #[test]
    fn budget_caps_a_runaway_run_by_events() {
        let mut eng = Engine::new(World::default(), 1);
        eng.schedule_at(SimTime::ZERO, runaway);
        let report = eng.run_budgeted(&RunBudget::events(50));
        assert_eq!(report.outcome, RunOutcome::EventBudgetExhausted);
        assert!(!report.outcome.completed());
        assert_eq!(report.events, 50);
        assert_eq!(eng.world.log.len(), 50);
        assert!(eng.queued() > 0, "the runaway is still queued, not lost");
    }

    #[test]
    fn budget_caps_a_runaway_run_by_time() {
        let mut eng = Engine::new(World::default(), 1);
        eng.schedule_at(SimTime::ZERO, runaway);
        let report = eng.run_budgeted(&RunBudget::until(SimTime::from_millis(10)));
        assert_eq!(report.outcome, RunOutcome::TimeBudgetExhausted);
        assert_eq!(report.events, 11, "t=0..10ms inclusive at 1ms spacing");
        assert_eq!(report.ended_at, SimTime::from_millis(10));
        assert_eq!(eng.now(), SimTime::from_millis(10));
    }

    #[test]
    fn budget_reports_natural_endings() {
        let mut eng = Engine::new(World::default(), 1);
        eng.schedule_at(SimTime::from_millis(1), |w: &mut World, _| w.log.push(1));
        let report = eng.run_budgeted(&RunBudget::unlimited());
        assert_eq!(report.outcome, RunOutcome::Drained);
        assert!(report.outcome.completed());
        assert_eq!(report.events, 1);

        let mut eng = Engine::new(World::default(), 1);
        eng.schedule_at(SimTime::from_millis(1), |_: &mut World, ctx| ctx.stop());
        eng.schedule_at(SimTime::from_millis(2), |w: &mut World, _| w.log.push(2));
        let report = eng.run_budgeted(&RunBudget::unlimited());
        assert_eq!(report.outcome, RunOutcome::Stopped);
        assert_eq!(report.events, 1);
        assert!(eng.world.log.is_empty());
        // a further budgeted run on the stopped engine does nothing
        let again = eng.run_budgeted(&RunBudget::unlimited());
        assert_eq!(again.outcome, RunOutcome::Stopped);
        assert_eq!(again.events, 0);
    }

    #[test]
    fn budgeted_runs_are_deterministic() {
        let run = |budget: RunBudget| {
            let mut eng = Engine::new(World::default(), 9);
            eng.schedule_at(SimTime::ZERO, runaway);
            let r = eng.run_budgeted(&budget);
            (r.events, r.ended_at, eng.world.log.len())
        };
        assert_eq!(run(RunBudget::events(25)), run(RunBudget::events(25)));
        assert_eq!(
            run(RunBudget::new(1000, SimTime::from_millis(7))),
            run(RunBudget::new(1000, SimTime::from_millis(7)))
        );
    }

    #[test]
    fn digest_is_deterministic_and_sensitive() {
        fn run(seed: u64) -> RunDigest {
            let mut eng = Engine::new(World::default(), seed);
            eng.schedule_at(SimTime::from_millis(1), |_, ctx| {
                let roll = ctx.rng.range(0..100u32);
                ctx.trace("test.roll", format!("rolled {roll}"));
                ctx.metrics.incr("rolls");
                ctx.metrics.observe("value", roll as f64);
            });
            eng.run_to_completion();
            eng.digest()
        }
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn obs_scope_counts_engine_events() {
        let g = crate::obs::begin(crate::obs::ObsMode::Cost);
        let mut eng = Engine::new(World::default(), 1);
        for i in 0..4 {
            eng.schedule_at(SimTime::from_millis(i), |w: &mut World, _| w.log.push(0));
        }
        eng.run_to_completion();
        let rec = g.finish();
        assert_eq!(rec.events, 4);
    }

    #[test]
    fn profile_mode_attributes_events_to_first_topic() {
        let g = crate::obs::begin(crate::obs::ObsMode::Profile);
        let mut eng = Engine::new(World::default(), 1);
        eng.schedule_at(SimTime::from_millis(2), |_, ctx| {
            ctx.trace("alpha.work", "first");
            ctx.trace("beta.other", "second topic does not win");
        });
        eng.schedule_at(SimTime::from_millis(5), |_, ctx| ctx.trace("alpha.work", "again"));
        eng.schedule_at(SimTime::from_millis(9), |_, _| {});
        eng.run_to_completion();
        let rec = g.finish();
        let alpha = &rec.topics["alpha.work"];
        assert_eq!(alpha.events, 2);
        assert_eq!(alpha.virtual_micros, 2_000 + 3_000, "clock advances attributed");
        assert_eq!(rec.topics["engine.untraced"].events, 1);
        assert!(!rec.topics.contains_key("beta.other"));
    }

    #[test]
    fn ctx_spans_nest_in_engine_trace() {
        let mut eng = Engine::new(World::default(), 1);
        eng.schedule_at(SimTime::from_millis(1), |_, ctx| {
            ctx.span_enter("net.send", Some("user"), &[("dst", "h9")]);
            ctx.trace("net.hop", "r1");
            assert_eq!(ctx.span_exit(&[("hops", "1")]).as_deref(), Some("net.send"));
        });
        eng.run_to_completion();
        assert_eq!(eng.trace().open_spans(), 0);
        assert_eq!(eng.trace().len(), 3);
        let entries: Vec<_> = eng.trace().entries().collect();
        assert_eq!(entries[1].depth, 1);
    }

    #[test]
    fn provenance_links_children_to_their_scheduler() {
        let mut eng = Engine::new(World::default(), 1);
        eng.schedule_at(SimTime::from_millis(1), |w: &mut World, ctx| {
            w.log.push(1);
            ctx.schedule_in(SimTime::from_millis(1), |w: &mut World, ctx| {
                w.log.push(2);
                ctx.schedule_in(SimTime::from_millis(1), |w: &mut World, _| w.log.push(3));
            });
        });
        eng.schedule_at(SimTime::from_millis(9), |w: &mut World, _| w.log.push(9));
        eng.run_to_completion();

        let p = eng.provenance();
        assert_eq!(p.len(), 4);
        assert_eq!(p.roots().count(), 2, "both external schedules are roots");
        // The chain 1 -> 2 -> 3 is recorded parent by parent.
        let chain: Vec<(u64, Option<u64>)> =
            p.ancestry(EventId(3)).iter().map(|n| (n.id.0, n.parent.map(|e| e.0))).collect();
        assert_eq!(chain, [(3, Some(2)), (2, Some(0)), (0, None)]);
        // Dispatch times are recorded.
        assert_eq!(p.get(EventId(3)).unwrap().time, SimTime::from_millis(3));
        // The engine also tallies a windowed event series.
        assert_eq!(eng.metrics().series("engine.events").unwrap().total(), 4);
    }

    #[test]
    fn provenance_captures_the_open_span_at_schedule_time() {
        let mut eng = Engine::new(World::default(), 1);
        eng.schedule_at(SimTime::from_millis(1), |_, ctx| {
            ctx.span_enter("net.send", None, &[]);
            ctx.schedule_in(SimTime::from_millis(1), |_, _| {});
            ctx.span_exit(&[]);
            ctx.schedule_in(SimTime::from_millis(2), |_, _| {});
        });
        eng.run_to_completion();
        let inside = eng.provenance().get(EventId(1)).unwrap();
        assert_eq!(inside.span.as_deref(), Some("net.send"));
        let outside = eng.provenance().get(EventId(2)).unwrap();
        assert_eq!(outside.span, None);
    }

    #[test]
    fn trace_entries_are_stamped_with_their_event() {
        let mut eng = Engine::new(World::default(), 1);
        eng.schedule_at(SimTime::from_millis(1), |_, ctx| ctx.trace("t", "first"));
        eng.schedule_at(SimTime::from_millis(2), |_, ctx| {
            assert_eq!(ctx.event_id(), EventId(1));
            ctx.trace("t", "second");
        });
        eng.run_to_completion();
        let stamps: Vec<_> = eng.trace().entries().map(|e| e.event).collect();
        assert_eq!(stamps, [Some(EventId(0)), Some(EventId(1))]);
        // Outside dispatch, entries carry no stamp.
        eng.trace_mut().record(SimTime::from_millis(9), "t", "outside");
        assert_eq!(eng.trace().entries().last().unwrap().event, None);
    }

    #[test]
    fn provenance_capture_never_changes_the_run_digest() {
        let run = |disable: bool| {
            let mut eng = Engine::new(World::default(), 5);
            if disable {
                eng.provenance_mut().disable();
            }
            eng.schedule_at(SimTime::from_millis(1), |_, ctx| {
                let roll = ctx.rng.range(0..100u32);
                ctx.trace("t", format!("rolled {roll}"));
                ctx.schedule_in(SimTime::from_millis(1), |_, ctx| ctx.metrics.incr("x"));
            });
            eng.run_to_completion();
            eng.digest()
        };
        assert_eq!(run(false), run(true));
    }

    impl checkpoint::Snapshottable for World {
        fn component(&self) -> &'static str {
            "world"
        }
        fn state_digest(&self) -> RunDigest {
            let mut h = Fnv1a::new();
            h.write_u64(self.log.len() as u64);
            for v in &self.log {
                h.write_u64(*v as u64);
            }
            RunDigest(h.finish())
        }
    }

    /// A seeded workload with rng draws, traces and metrics: each chain
    /// link rolls a delay and reschedules until the log holds 30 entries.
    fn chain(w: &mut World, ctx: &mut Ctx<World>) {
        let roll = ctx.rng.range(1..100u64);
        w.log.push(roll as u32);
        ctx.trace("unit.chain", format!("roll {roll}"));
        ctx.metrics.incr("chain.links");
        if w.log.len() < 30 {
            ctx.schedule_in(SimTime::from_micros(roll), chain);
        }
    }

    fn chain_engine() -> Engine<World> {
        let mut eng = Engine::new(World::default(), 7);
        for _ in 0..4 {
            eng.schedule_at(SimTime::ZERO, chain);
        }
        eng
    }

    #[test]
    fn checkpoint_restore_verifies_an_exact_replay() {
        let mut original = chain_engine();
        original.run(20);
        let snap = original.checkpoint();
        assert_eq!(snap.cursor, 20);
        assert_eq!(snap.components[0].name, "world");
        assert!(snap.validate().is_ok());

        // The same construction replayed to the same point restores.
        let mut replay = chain_engine();
        replay.run(20);
        replay.restore(&snap).expect("an exact replay must verify");
        // And continues identically to the end.
        original.run_to_completion();
        replay.run_to_completion();
        assert_eq!(replay.digest(), original.digest());
        assert_eq!(replay.world.log, original.world.log);
    }

    #[test]
    fn restore_rejects_a_diverged_replay_with_the_field_name() {
        let mut original = chain_engine();
        original.run(20);
        let snap = original.checkpoint();

        // Same construction, one event short: caught by name.
        let mut short = chain_engine();
        short.run(19);
        match short.restore(&snap) {
            Err(RestoreError::Divergence { field, .. }) => assert_eq!(field, "now_micros"),
            other => panic!("expected a divergence, got {other:?}"),
        }

        // A different seed diverges before any field beyond the clock is
        // even reached — whatever field reports first, it must not verify.
        let mut other_seed = Engine::new(World::default(), 8);
        for _ in 0..4 {
            other_seed.schedule_at(SimTime::ZERO, chain);
        }
        other_seed.run(20);
        assert!(other_seed.restore(&snap).is_err());
    }

    #[test]
    fn scope_crash_and_resume_reproduces_the_run() {
        // Golden: uninterrupted.
        let mut golden = chain_engine();
        golden.run_to_completion();

        // Crash run: checkpoint every 5 events, injected crash at event 13.
        let guard = checkpoint::begin(
            crate::checkpoint::CheckpointConfig::new(
                crate::checkpoint::CheckpointPolicy::every_n_events(5),
            )
            .kill_at(13)
            .meta("unit", 7),
        );
        let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut eng = chain_engine();
            eng.run_to_completion();
        }));
        let crash_rec = guard.finish();
        assert!(crashed.is_err(), "the injected crash must fire");
        assert_eq!(crash_rec.killed_at, Some(13));
        assert_eq!(crash_rec.cursor, 13);
        let latest = crash_rec.snapshots.last().cloned().expect("snapshots before the crash");
        assert_eq!(latest.cursor, 10, "latest checkpoint before event 13");

        // Resume: replay with verification at the snapshot's cursor.
        let guard = checkpoint::begin(
            crate::checkpoint::CheckpointConfig::new(crate::checkpoint::CheckpointPolicy::manual())
                .verify(latest),
        );
        let mut resumed = chain_engine();
        resumed.run_to_completion();
        let resume_rec = guard.finish();
        assert_eq!(resume_rec.verified_at, Some(10));
        assert!(resume_rec.divergence.is_none(), "{:?}", resume_rec.divergence);
        assert_eq!(resumed.digest(), golden.digest());
        assert_eq!(resumed.world.log, golden.world.log);
        assert_eq!(resumed.core_state(), golden.core_state());
    }

    #[test]
    fn budget_halt_emits_final_checkpoint_without_duplicating_a_boundary() {
        // Budget expires exactly on a checkpoint event: the policy snapshot
        // at event 10 already covers the halt frontier, so exactly one
        // snapshot exists at cursor 10.
        let guard = checkpoint::begin(crate::checkpoint::CheckpointConfig::new(
            crate::checkpoint::CheckpointPolicy::every_n_events(10),
        ));
        let mut eng = Engine::new(World::default(), 1);
        eng.schedule_at(SimTime::ZERO, runaway);
        let report = eng.run_budgeted(&RunBudget::events(10));
        assert_eq!(report.outcome, RunOutcome::EventBudgetExhausted);
        let rec = guard.finish();
        assert_eq!(
            rec.snapshots.iter().map(|s| s.cursor).collect::<Vec<_>>(),
            vec![10],
            "boundary halt must not duplicate the policy snapshot"
        );

        // Budget expires off-boundary: the halt itself is checkpointed so
        // the halted storm stays resumable.
        let guard = checkpoint::begin(crate::checkpoint::CheckpointConfig::new(
            crate::checkpoint::CheckpointPolicy::every_n_events(10),
        ));
        let mut eng = Engine::new(World::default(), 1);
        eng.schedule_at(SimTime::ZERO, runaway);
        let report = eng.run_budgeted(&RunBudget::events(13));
        assert_eq!(report.outcome, RunOutcome::EventBudgetExhausted);
        let rec = guard.finish();
        assert_eq!(
            rec.snapshots.iter().map(|s| s.cursor).collect::<Vec<_>>(),
            vec![10, 13],
            "an off-boundary halt emits a final snapshot at the frontier"
        );

        // A time-budget halt is checkpointed the same way.
        let guard = checkpoint::begin(crate::checkpoint::CheckpointConfig::new(
            crate::checkpoint::CheckpointPolicy::every_n_events(100),
        ));
        let mut eng = Engine::new(World::default(), 1);
        eng.schedule_at(SimTime::ZERO, runaway);
        let report = eng.run_budgeted(&RunBudget::until(SimTime::from_millis(5)));
        assert_eq!(report.outcome, RunOutcome::TimeBudgetExhausted);
        let rec = guard.finish();
        assert_eq!(rec.snapshots.len(), 1, "halt snapshot despite no policy boundary");
        assert_eq!(rec.snapshots[0].cursor, rec.cursor);

        // A run that completes naturally emits no halt snapshot.
        let guard = checkpoint::begin(crate::checkpoint::CheckpointConfig::new(
            crate::checkpoint::CheckpointPolicy::every_n_events(100),
        ));
        let mut eng = Engine::new(World::default(), 1);
        eng.schedule_at(SimTime::from_millis(1), |w: &mut World, _| w.log.push(1));
        let report = eng.run_budgeted(&RunBudget::unlimited());
        assert_eq!(report.outcome, RunOutcome::Drained);
        let rec = guard.finish();
        assert!(rec.snapshots.is_empty(), "drained runs need no halt snapshot");
    }

    #[test]
    fn injected_crash_panics_at_the_chosen_event() {
        let guard = checkpoint::begin(
            crate::checkpoint::CheckpointConfig::new(crate::checkpoint::CheckpointPolicy::manual())
                .kill_at(3),
        );
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut eng = Engine::new(World::default(), 1);
            eng.schedule_at(SimTime::ZERO, runaway);
            eng.run(100);
        }));
        let rec = guard.finish();
        let payload = result.expect_err("the kill must panic");
        let msg = payload.downcast_ref::<String>().expect("string panic payload");
        assert!(msg.contains("injected crash at event 3"), "{msg}");
        assert_eq!(rec.killed_at, Some(3));
        assert_eq!(rec.cursor, 3, "no events run past the crash");
    }

    #[test]
    fn run_with_event_cap() {
        let mut eng = Engine::new(World::default(), 1);
        fn tick(w: &mut World, ctx: &mut Ctx<World>) {
            w.log.push(0);
            ctx.schedule_in(SimTime::from_millis(1), tick);
        }
        eng.schedule_at(SimTime::ZERO, tick);
        let n = eng.run(100);
        assert_eq!(n, 100);
        assert_eq!(eng.world.log.len(), 100);
    }
}

//! Replays every committed fuzz-corpus entry in `tests/corpus/`.
//!
//! The corpus is the fuzzer's long-term memory (see DESIGN.md §9): shrunk
//! violation repros, fixed-bug regression scenarios, and seeded near-miss
//! scenarios all live here as stable-schema JSON. This suite keeps them
//! honest on every CI run:
//!
//! - `violation` entries must still trip their recorded oracle (a repro
//!   that went quiet means the bug moved, not that it is fixed — update
//!   the entry's kind to `regression` once the fix lands),
//! - `regression` and `near-miss` entries must stay green on every oracle,
//! - every entry must round-trip the schema and sit under its own stable
//!   filename, so the corpus can't rot in place.

use std::fs;
use std::path::PathBuf;
use tussle::experiments::fuzz::{check_oracle, run_scenario, CorpusEntry, CORPUS_SCHEMA, ORACLES};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn entries() -> Vec<(String, CorpusEntry)> {
    let mut out = Vec::new();
    for item in fs::read_dir(corpus_dir()).expect("tests/corpus exists") {
        let path = item.expect("corpus entries are readable").path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let name = path.file_name().expect("corpus files are named").to_string_lossy().to_string();
        let body = fs::read_to_string(&path).expect("corpus entries are readable");
        let entry: CorpusEntry =
            serde_json::from_str(&body).unwrap_or_else(|e| panic!("{name} does not parse: {e}"));
        out.push((name, entry));
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

#[test]
fn corpus_is_not_empty_and_on_the_current_schema() {
    let all = entries();
    assert!(!all.is_empty(), "tests/corpus must hold at least one committed entry");
    for (name, entry) in &all {
        assert_eq!(entry.schema, CORPUS_SCHEMA, "{name}: stale schema");
        assert!(
            matches!(entry.kind.as_str(), "violation" | "regression" | "near-miss"),
            "{name}: unknown kind {:?}",
            entry.kind
        );
        assert_eq!(name, &entry.filename(), "{name}: filename out of sync with content");
        if let Some(oracle) = &entry.oracle {
            assert!(
                ORACLES.iter().any(|(id, _)| id == oracle),
                "{name}: names unknown oracle {oracle:?}"
            );
        }
    }
}

#[test]
fn violation_entries_still_reproduce_and_green_entries_stay_green() {
    for (name, entry) in entries() {
        match entry.kind.as_str() {
            "violation" => {
                let oracle = entry
                    .oracle
                    .as_deref()
                    .unwrap_or_else(|| panic!("{name}: violation entry without an oracle"));
                assert!(
                    check_oracle(&entry.scenario, oracle).is_some(),
                    "{name}: recorded violation no longer reproduces — if the bug is \
                     fixed, reclassify the entry as a regression"
                );
            }
            "regression" | "near-miss" => {
                let outcome = run_scenario(&entry.scenario);
                assert!(
                    outcome.violations.is_empty(),
                    "{name}: scenario regressed: {:?}",
                    outcome.violations
                );
                for (oracle, _) in ORACLES {
                    assert!(
                        check_oracle(&entry.scenario, oracle).is_none(),
                        "{name}: {oracle} oracle now fires"
                    );
                }
            }
            other => panic!("{name}: unknown kind {other:?}"),
        }
    }
}

#[test]
fn corpus_replay_is_deterministic() {
    for (name, entry) in entries() {
        let a = run_scenario(&entry.scenario);
        let b = run_scenario(&entry.scenario);
        assert_eq!(a.digest, b.digest, "{name}: replay digest drifted");
        assert_eq!(a.coverage, b.coverage, "{name}: replay coverage drifted");
    }
}

//! The discrete-event engine.
//!
//! An [`Engine`] owns a world `W`, a virtual clock, an event queue and the
//! shared facilities (RNG, metrics, trace). Event handlers receive
//! `(&mut W, &mut Ctx<W>)`; the context lets them read the clock, draw
//! randomness, record metrics/trace entries, schedule further events and
//! request a stop. Newly scheduled events are buffered in the context and
//! merged into the queue after the handler returns, preserving the total
//! `(time, sequence)` order.

use crate::event::{EventFn, Scheduled};
use crate::metrics::Metrics;
use crate::rng::SimRng;
use crate::time::SimTime;
use crate::trace::Trace;
use std::collections::BinaryHeap;

/// Context handed to every event handler.
pub struct Ctx<'a, W> {
    now: SimTime,
    /// Random stream for the run.
    pub rng: &'a mut SimRng,
    /// Metric sink for the run.
    pub metrics: &'a mut Metrics,
    /// Trace ring for the run.
    pub trace: &'a mut Trace,
    pending: Vec<(SimTime, EventFn<W>)>,
    stop: bool,
}

impl<'a, W> Ctx<'a, W> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `f` at absolute time `at`. Times earlier than `now` are
    /// clamped to `now` (events cannot run in the past).
    pub fn schedule_at(&mut self, at: SimTime, f: impl FnOnce(&mut W, &mut Ctx<W>) + 'static) {
        let at = at.max(self.now);
        self.pending.push((at, Box::new(f)));
    }

    /// Schedule `f` after a relative `delay`.
    pub fn schedule_in(&mut self, delay: SimTime, f: impl FnOnce(&mut W, &mut Ctx<W>) + 'static) {
        let at = self.now.saturating_add(delay);
        self.pending.push((at, Box::new(f)));
    }

    /// Record a trace entry stamped with the current time.
    pub fn trace(&mut self, topic: &str, message: impl Into<String>) {
        self.trace.record(self.now, topic, message);
    }

    /// Ask the engine to stop after this handler returns.
    pub fn stop(&mut self) {
        self.stop = true;
    }
}

/// A deterministic discrete-event simulation engine over a world `W`.
pub struct Engine<W> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Scheduled<W>>,
    /// The simulated world; public so scenario code can inspect and mutate
    /// it between runs.
    pub world: W,
    rng: SimRng,
    metrics: Metrics,
    trace: Trace,
    stopped: bool,
    events_processed: u64,
}

impl<W> Engine<W> {
    /// New engine over `world`, seeded for reproducibility.
    pub fn new(world: W, seed: u64) -> Self {
        Engine {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            world,
            rng: SimRng::seed_from_u64(seed),
            metrics: Metrics::new(),
            trace: Trace::default(),
            stopped: false,
            events_processed: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of events currently queued.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Metric sink (read).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Metric sink (write) — for scenario-level bookkeeping outside events.
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Trace ring (read).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Trace ring (write).
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// The run's random stream — for setup code that draws outside events.
    pub fn rng_mut(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Schedule `f` at absolute time `at` (clamped to `now`).
    pub fn schedule_at(&mut self, at: SimTime, f: impl FnOnce(&mut W, &mut Ctx<W>) + 'static) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled { time: at, seq, f: Box::new(f) });
    }

    /// Schedule `f` after a relative `delay`.
    pub fn schedule_in(&mut self, delay: SimTime, f: impl FnOnce(&mut W, &mut Ctx<W>) + 'static) {
        self.schedule_at(self.now.saturating_add(delay), f);
    }

    /// Run the next event. Returns `false` when the queue is empty or a
    /// handler requested a stop.
    pub fn step(&mut self) -> bool {
        if self.stopped {
            return false;
        }
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.time >= self.now, "event queue produced a past event");
        self.now = ev.time;
        let mut ctx = Ctx {
            now: self.now,
            rng: &mut self.rng,
            metrics: &mut self.metrics,
            trace: &mut self.trace,
            pending: Vec::new(),
            stop: false,
        };
        (ev.f)(&mut self.world, &mut ctx);
        let Ctx { pending, stop, .. } = ctx;
        for (at, f) in pending {
            let seq = self.seq;
            self.seq += 1;
            self.queue.push(Scheduled { time: at, seq, f });
        }
        self.events_processed += 1;
        if stop {
            self.stopped = true;
        }
        !self.stopped
    }

    /// Run until the queue drains, a handler stops the engine, or
    /// `max_events` have executed. Returns the number of events run,
    /// including the event whose handler requested the stop; an engine that
    /// is already stopped (or has an empty queue) runs zero events.
    pub fn run(&mut self, max_events: u64) -> u64 {
        let before = self.events_processed;
        while self.events_processed - before < max_events && self.step() {}
        self.events_processed - before
    }

    /// Run events up to and including time `until`. Events scheduled later
    /// stay queued. Returns the number of events run.
    pub fn run_until(&mut self, until: SimTime) -> u64 {
        let before = self.events_processed;
        while !self.stopped {
            match self.queue.peek() {
                Some(ev) if ev.time <= until => {
                    self.step();
                }
                _ => break,
            }
        }
        // The clock advances to the horizon even if no event sits exactly on
        // it, so periodic scenario code sees consistent "end of epoch" times.
        // A stop freezes the clock at the stopping event's time instead:
        // time must not appear to pass on a halted engine.
        if !self.stopped && self.now < until {
            self.now = until;
        }
        self.events_processed - before
    }

    /// Drain the queue completely (no event cap). Intended for scenarios
    /// that are known to terminate.
    pub fn run_to_completion(&mut self) -> u64 {
        self.run(u64::MAX)
    }

    /// Whether a handler has requested a stop.
    pub fn is_stopped(&self) -> bool {
        self.stopped
    }

    /// Consume the engine, returning the world and the metrics.
    pub fn into_parts(self) -> (W, Metrics, Trace) {
        (self.world, self.metrics, self.trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct World {
        log: Vec<u32>,
    }

    #[test]
    fn events_run_in_time_order() {
        let mut eng = Engine::new(World::default(), 1);
        eng.schedule_at(SimTime::from_millis(30), |w: &mut World, _| w.log.push(3));
        eng.schedule_at(SimTime::from_millis(10), |w: &mut World, _| w.log.push(1));
        eng.schedule_at(SimTime::from_millis(20), |w: &mut World, _| w.log.push(2));
        eng.run_to_completion();
        assert_eq!(eng.world.log, [1, 2, 3]);
        assert_eq!(eng.now(), SimTime::from_millis(30));
    }

    #[test]
    fn simultaneous_events_run_in_schedule_order() {
        let mut eng = Engine::new(World::default(), 1);
        for i in 0..10 {
            eng.schedule_at(SimTime::from_millis(5), move |w: &mut World, _| w.log.push(i));
        }
        eng.run_to_completion();
        assert_eq!(eng.world.log, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn handlers_can_schedule_more_events() {
        let mut eng = Engine::new(World::default(), 1);
        eng.schedule_at(SimTime::from_millis(1), |w: &mut World, ctx| {
            w.log.push(1);
            ctx.schedule_in(SimTime::from_millis(1), |w: &mut World, ctx| {
                w.log.push(2);
                ctx.schedule_in(SimTime::from_millis(1), |w: &mut World, _| w.log.push(3));
            });
        });
        eng.run_to_completion();
        assert_eq!(eng.world.log, [1, 2, 3]);
        assert_eq!(eng.now(), SimTime::from_millis(3));
        assert_eq!(eng.events_processed(), 3);
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut eng = Engine::new(World::default(), 1);
        eng.schedule_at(SimTime::from_millis(10), |w: &mut World, _| w.log.push(1));
        eng.schedule_at(SimTime::from_millis(50), |w: &mut World, _| w.log.push(5));
        let n = eng.run_until(SimTime::from_millis(20));
        assert_eq!(n, 1);
        assert_eq!(eng.world.log, [1]);
        assert_eq!(eng.now(), SimTime::from_millis(20));
        assert_eq!(eng.queued(), 1);
        eng.run_until(SimTime::from_millis(100));
        assert_eq!(eng.world.log, [1, 5]);
    }

    #[test]
    fn stop_halts_the_run() {
        let mut eng = Engine::new(World::default(), 1);
        eng.schedule_at(SimTime::from_millis(1), |w: &mut World, ctx| {
            w.log.push(1);
            ctx.stop();
        });
        eng.schedule_at(SimTime::from_millis(2), |w: &mut World, _| w.log.push(2));
        eng.run_to_completion();
        assert_eq!(eng.world.log, [1]);
        assert!(eng.is_stopped());
        assert!(!eng.step());
    }

    #[test]
    fn run_on_stopped_engine_counts_zero_events() {
        let mut eng = Engine::new(World::default(), 1);
        eng.schedule_at(SimTime::from_millis(1), |w: &mut World, ctx| {
            w.log.push(1);
            ctx.stop();
        });
        assert_eq!(eng.run(10), 1, "the stopping event itself counts");
        // Subsequent runs on a stopped engine execute nothing at all.
        assert_eq!(eng.run(10), 0);
        assert_eq!(eng.run_to_completion(), 0);
        assert_eq!(eng.events_processed(), 1);
    }

    #[test]
    fn run_until_freezes_clock_on_stop() {
        let mut eng = Engine::new(World::default(), 1);
        eng.schedule_at(SimTime::from_millis(5), |w: &mut World, ctx| {
            w.log.push(1);
            ctx.stop();
        });
        eng.schedule_at(SimTime::from_millis(8), |w: &mut World, _| w.log.push(2));
        let n = eng.run_until(SimTime::from_millis(100));
        assert_eq!(n, 1);
        assert_eq!(eng.world.log, [1]);
        // A stop freezes the clock at the stopping event, not the horizon.
        assert_eq!(eng.now(), SimTime::from_millis(5));
        // And a further run_until on the stopped engine does nothing.
        assert_eq!(eng.run_until(SimTime::from_millis(200)), 0);
        assert_eq!(eng.now(), SimTime::from_millis(5));
    }

    #[test]
    fn past_schedules_clamp_to_now() {
        let mut eng = Engine::new(World::default(), 1);
        eng.schedule_at(SimTime::from_millis(10), |w: &mut World, ctx| {
            // Deliberately in the past; must run at `now`, not panic.
            ctx.schedule_at(SimTime::from_millis(1), |w: &mut World, _| w.log.push(2));
            w.log.push(1);
        });
        eng.run_to_completion();
        assert_eq!(eng.world.log, [1, 2]);
        assert_eq!(eng.now(), SimTime::from_millis(10));
    }

    #[test]
    fn identical_seeds_produce_identical_runs() {
        fn run(seed: u64) -> Vec<u32> {
            let mut eng = Engine::new(World::default(), seed);
            for _ in 0..5 {
                eng.schedule_at(SimTime::ZERO, |w: &mut World, ctx| {
                    let delay = SimTime::from_micros(ctx.rng.range(1..1000u64));
                    ctx.schedule_in(delay, move |w2: &mut World, _| {
                        w2.log.push(delay.as_micros() as u32)
                    });
                    let _ = w;
                });
            }
            eng.run_to_completion();
            eng.world.log
        }
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(100));
    }

    #[test]
    fn ctx_trace_and_metrics() {
        let mut eng = Engine::new(World::default(), 1);
        eng.schedule_at(SimTime::from_millis(7), |_, ctx| {
            ctx.trace("test.topic", "hello");
            ctx.metrics.incr("events");
        });
        eng.run_to_completion();
        assert_eq!(eng.metrics().counter("events"), 1);
        let e = eng.trace().entries().next().unwrap();
        assert_eq!(e.time, SimTime::from_millis(7));
        assert_eq!(e.topic, "test.topic");
    }

    #[test]
    fn run_with_event_cap() {
        let mut eng = Engine::new(World::default(), 1);
        fn tick(w: &mut World, ctx: &mut Ctx<World>) {
            w.log.push(0);
            ctx.schedule_in(SimTime::from_millis(1), tick);
        }
        eng.schedule_at(SimTime::ZERO, tick);
        let n = eng.run(100);
        assert_eq!(n, 100);
        assert_eq!(eng.world.log.len(), 100);
    }
}

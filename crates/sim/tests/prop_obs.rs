//! Property tests for the observability layer: span nesting, digest
//! capacity-invariance, and quantile monotonicity.

use proptest::prelude::*;
use tussle_sim::{Histogram, SimTime, Trace};

/// One random action against a trace: a plain event, a span enter, or a
/// span exit (which is a no-op when nothing is open).
#[derive(Debug, Clone)]
enum Action {
    Event(u64, String),
    Enter(u64, String),
    Exit(u64),
}

fn arb_actions() -> impl Strategy<Value = Vec<Action>> {
    let action = prop_oneof![
        (0u64..10_000, "[a-z]{1,6}\\.[a-z]{1,6}").prop_map(|(t, topic)| Action::Event(t, topic)),
        (0u64..10_000, "[a-z]{1,6}\\.[a-z]{1,6}").prop_map(|(t, topic)| Action::Enter(t, topic)),
        (0u64..10_000).prop_map(Action::Exit),
    ];
    proptest::collection::vec(action, 0..200)
}

fn apply(trace: &mut Trace, actions: &[Action]) -> (u64, u64) {
    let (mut enters, mut exits) = (0u64, 0u64);
    for a in actions {
        match a {
            Action::Event(t, topic) => {
                trace.record(SimTime::from_micros(*t), topic, "event");
            }
            Action::Enter(t, topic) => {
                trace.span_enter(SimTime::from_micros(*t), topic, None, &[]);
                enters += 1;
            }
            Action::Exit(t) => {
                if trace.span_exit(SimTime::from_micros(*t), &[]).is_some() {
                    exits += 1;
                }
            }
        }
    }
    (enters, exits)
}

proptest! {
    /// Span nesting is balanced under any action sequence: exits never
    /// outnumber enters, the open-span count is exactly the difference,
    /// and exiting with nothing open is a no-op rather than a panic.
    #[test]
    fn span_nesting_is_balanced(actions in arb_actions()) {
        let mut trace = Trace::with_capacity(100_000);
        let (enters, exits) = apply(&mut trace, &actions);
        prop_assert!(exits <= enters);
        prop_assert_eq!(trace.open_spans() as u64, enters - exits);
        // Draining every remaining span brings the count to zero, and one
        // more exit is still a no-op.
        let mut drained = 0u64;
        while trace.span_exit(SimTime::from_micros(10_000), &[]).is_some() {
            drained += 1;
        }
        prop_assert_eq!(drained, enters - exits);
        prop_assert_eq!(trace.open_spans(), 0);
        prop_assert!(trace.span_exit(SimTime::from_micros(10_000), &[]).is_none());
    }

    /// The run digest is a function of the *stream*, not the ring: any two
    /// capacities large enough to drop nothing produce the same digest.
    #[test]
    fn digest_is_invariant_under_non_dropping_capacity(
        actions in arb_actions(),
        extra in 0usize..1_000,
    ) {
        let n = actions.len().max(1);
        let mut small = Trace::with_capacity(n);
        let mut large = Trace::with_capacity(n + extra);
        apply(&mut small, &actions);
        apply(&mut large, &actions);
        prop_assert_eq!(small.dropped(), 0);
        prop_assert_eq!(large.dropped(), 0);
        prop_assert_eq!(small.digest(), large.digest());
    }

    /// The *stream-level* digest an observation scope accumulates absorbs
    /// entries as they are recorded, so it survives ring eviction: a
    /// capacity too small for the stream changes what the trace retains
    /// but not the run digest.
    #[test]
    fn obs_run_digest_survives_ring_eviction(
        times in proptest::collection::vec(0u64..1_000, 10..100),
    ) {
        let record_with_capacity = |capacity: usize| {
            let guard = tussle_sim::obs::begin(tussle_sim::obs::ObsMode::Cost);
            let mut trace = Trace::with_capacity(capacity);
            for t in &times {
                trace.record(SimTime::from_micros(*t), "evict.me", "x");
            }
            (trace.dropped(), guard.finish().digest)
        };
        let (dropped_tight, digest_tight) = record_with_capacity(4);
        let (dropped_roomy, digest_roomy) = record_with_capacity(100_000);
        prop_assert!(dropped_tight > 0, "capacity 4 must evict");
        prop_assert_eq!(dropped_roomy, 0);
        prop_assert_eq!(digest_tight, digest_roomy);
    }

    /// Histogram quantiles are monotone (p50 ≤ p95 ≤ max) and bracketed by
    /// min/max for any sample stream.
    #[test]
    fn histogram_quantiles_are_monotone(
        samples in proptest::collection::vec(-1e12f64..1e12, 1..500),
    ) {
        let mut h = Histogram::new();
        for s in &samples {
            h.record(*s);
        }
        let s = h.summary();
        prop_assert_eq!(s.count, samples.len() as u64);
        prop_assert!(s.min <= s.p50, "min {} > p50 {}", s.min, s.p50);
        prop_assert!(s.p50 <= s.p95, "p50 {} > p95 {}", s.p50, s.p95);
        prop_assert!(s.p95 <= s.max, "p95 {} > max {}", s.p95, s.max);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
    }
}

//! Property tests for the tussle scoreboard (DESIGN.md §10): the fold from
//! an observed run conserves the trace-entry count, campaign merging is
//! commutative and associative with lane-wise conservation, and the
//! winner verdict respects the ranking contract.

use proptest::prelude::*;
use std::collections::BTreeMap;
use tussle_core::Scoreboard;
use tussle_sim::obs::{self, ObsMode, UNATTRIBUTED};
use tussle_sim::{SimTime, StakeholderCost};

/// One observed action: a point event or a complete span, optionally
/// annotated with a stakeholder lane drawn from a small pool so lanes
/// collide and accumulate.
#[derive(Debug, Clone)]
enum Action {
    Event(u64, String),
    Span(u64, u64, Option<usize>),
}

const LANES: [&str; 4] = ["user", "isp", "gov", "vendor"];

fn arb_actions() -> impl Strategy<Value = Vec<Action>> {
    let action =
        prop_oneof![
            (0u64..200, "[a-z]{1,6}\\.[a-z]{1,6}").prop_map(|(d, t)| Action::Event(d, t)),
            (0u64..200, 1u64..300, 0usize..2 * LANES.len()).prop_map(
                |(d, len, pick)| Action::Span(d, len, (pick < LANES.len()).then_some(pick))
            ),
        ];
    proptest::collection::vec(action, 1..80)
}

fn observe(actions: &[Action]) -> tussle_sim::RunRecord {
    let g = obs::begin(ObsMode::Cost);
    let mut now = 0u64;
    for a in actions {
        match a {
            Action::Event(d, topic) => {
                now += d;
                obs::event(SimTime::from_micros(now), topic, "m");
            }
            Action::Span(d, len, lane) => {
                now += d;
                let lane = lane.map(|i| LANES[i]);
                obs::span_enter(SimTime::from_micros(now), "prop.span", lane, &[]);
                now += len;
                obs::span_exit(SimTime::from_micros(now), &[]);
            }
        }
    }
    g.finish()
}

fn arb_board() -> impl Strategy<Value = Scoreboard> {
    let cost = (0u64..100, 0u64..50, 0u64..50, 0u64..10_000).prop_map(
        |(entries, spans, events, virtual_micros)| StakeholderCost {
            entries,
            spans,
            events,
            virtual_micros,
        },
    );
    // Keys index a small pool (the last slot is the unattributed lane) so
    // lanes collide across boards; collecting dedups colliding keys.
    let lane = (0usize..=LANES.len(), cost).prop_map(|(i, c)| {
        let name = LANES.get(i).copied().unwrap_or(UNATTRIBUTED);
        (name.to_owned(), c)
    });
    proptest::collection::vec(lane, 0..5)
        .prop_map(|lanes| Scoreboard { stakeholders: lanes.into_iter().collect() })
}

proptest! {
    /// Conservation through the fold: every trace entry a run records
    /// lands in exactly one scoreboard lane — the sum over lanes equals
    /// the run's `trace_entries` counter, and span/event sub-tallies sum
    /// to the same total.
    #[test]
    fn fold_conserves_trace_entries(actions in arb_actions()) {
        let rec = observe(&actions);
        match Scoreboard::from_record(&rec) {
            None => prop_assert_eq!(rec.trace_entries, 0),
            Some(board) => {
                prop_assert_eq!(board.total_entries(), rec.trace_entries);
                let parts: u64 =
                    board.stakeholders.values().map(|c| c.spans * 2 + c.events).sum();
                prop_assert_eq!(parts, rec.trace_entries, "spans count enter+exit");
            }
        }
    }

    /// Campaign aggregation: merge is commutative and associative, and
    /// conserves entries — a merged campaign's total is the sum of its
    /// runs' totals however the workers delivered them.
    #[test]
    fn merge_commutes_associates_and_conserves(
        a in arb_board(),
        b in arb_board(),
        c in arb_board(),
    ) {
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);

        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);

        prop_assert_eq!(
            ab_c.total_entries(),
            a.total_entries() + b.total_entries() + c.total_entries()
        );
    }

    /// The winner contract: the verdict is never the unattributed lane,
    /// it tops every other named lane under the (virtual time, entries)
    /// order unless contested, and renaming lanes consistently renames
    /// the verdict (the ranking looks at tallies, not names).
    #[test]
    fn winner_respects_ranking(board in arb_board()) {
        let named: BTreeMap<&String, &StakeholderCost> = board
            .stakeholders
            .iter()
            .filter(|(name, _)| name.as_str() != UNATTRIBUTED)
            .collect();
        match board.who_won() {
            None => prop_assert!(named.is_empty()),
            Some(verdict) if verdict == "contested" => {
                prop_assert!(named.len() >= 2);
            }
            Some(verdict) => {
                prop_assert_ne!(&verdict, UNATTRIBUTED);
                let winner = &board.stakeholders[&verdict];
                for (name, cost) in &named {
                    if name.as_str() != verdict {
                        prop_assert!(
                            (winner.virtual_micros, winner.entries)
                                > (cost.virtual_micros, cost.entries),
                            "{name} outranks the declared winner {verdict}"
                        );
                    }
                }
            }
        }
    }
}

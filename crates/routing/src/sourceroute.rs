//! User-controlled provider-level source routing, with payment.
//!
//! §V.A.4: "The Internet should support a mechanism for choice such as
//! source routing that would permit a customer to control the path of his
//! packets at the level of providers. ... The design for provider-level
//! source routing must incorporate a recognition of the need for payment."
//!
//! This module supplies the three pieces the paper says such a design
//! needs: *where the routes come from* ([`enumerate_paths`] walks the AS
//! graph for valley-free-or-not candidate paths), *how the user knows the
//! price* ([`RouteOffer`] exposes the cost of choice, §IV.C), and *how ISPs
//! get paid* ([`authorize_route`] refuses a route whose on-path providers
//! have not been compensated).

use crate::pathvector::AsGraph;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use tussle_net::Asn;

/// A priced path offer: the cost of a choice, made visible before the
/// choice is made.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteOffer {
    /// The AS-level path, source first, destination last.
    pub path: Vec<Asn>,
    /// Total price in micro-currency for using the path (sum of each
    /// transit AS's asking price).
    pub price: u64,
}

/// Why a source route was refused.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SourceRouteError {
    /// An on-path AS was not paid its asking price.
    UnpaidTransit {
        /// The AS that refused.
        asn: Asn,
        /// What it wanted.
        asked: u64,
        /// What it was offered.
        offered: u64,
    },
    /// The path is not connected in the AS graph.
    NotConnected {
        /// The missing adjacency's tail.
        from: Asn,
        /// The missing adjacency's head.
        to_: Asn,
    },
    /// Empty or single-AS path.
    TooShort,
}

impl core::fmt::Display for SourceRouteError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SourceRouteError::UnpaidTransit { asn, asked, offered } => write!(
                f,
                "{asn} refuses the source route: asked {asked} micro-units, offered {offered}"
            ),
            SourceRouteError::NotConnected { from, to_ } => {
                write!(f, "no adjacency between {from} and {to_}")
            }
            SourceRouteError::TooShort => f.write_str("a source route needs at least two ASes"),
        }
    }
}

impl std::error::Error for SourceRouteError {}

/// Enumerate simple AS-level paths from `src` to `dst` up to `max_len`
/// ASes, priced with each transit AS's asking price.
///
/// Unlike BGP's single provider-chosen route, this hands the *user* a menu
/// of alternatives — "design for choice". Paths need not be valley-free:
/// the whole point of paid source routing is that compensation replaces
/// the no-free-transit rule. Results are sorted by price, then length,
/// then lexicographic path, so the cheapest choice is first.
pub fn enumerate_paths(
    graph: &AsGraph,
    src: Asn,
    dst: Asn,
    max_len: usize,
    asking_prices: &BTreeMap<Asn, u64>,
) -> Vec<RouteOffer> {
    let mut out = Vec::new();
    let mut stack = vec![src];
    let mut seen: BTreeSet<Asn> = BTreeSet::new();
    seen.insert(src);
    dfs(graph, dst, max_len, asking_prices, &mut stack, &mut seen, &mut out);
    out.sort_by(|a, b| {
        a.price.cmp(&b.price).then(a.path.len().cmp(&b.path.len())).then(a.path.cmp(&b.path))
    });
    out
}

fn dfs(
    graph: &AsGraph,
    dst: Asn,
    max_len: usize,
    prices: &BTreeMap<Asn, u64>,
    stack: &mut Vec<Asn>,
    seen: &mut BTreeSet<Asn>,
    out: &mut Vec<RouteOffer>,
) {
    let cur = *stack.last().expect("stack never empty");
    if cur == dst {
        let price = stack[1..stack.len().saturating_sub(1)]
            .iter()
            .map(|a| prices.get(a).copied().unwrap_or(0))
            .sum();
        out.push(RouteOffer { path: stack.clone(), price });
        return;
    }
    if stack.len() >= max_len {
        return;
    }
    let neighbors: Vec<Asn> =
        graph.ases().filter(|n| graph.relationship(cur, *n).is_some()).collect();
    for n in neighbors {
        if seen.insert(n) {
            stack.push(n);
            dfs(graph, dst, max_len, prices, stack, seen, out);
            stack.pop();
            seen.remove(&n);
        }
    }
}

/// Check a chosen route against the payments actually made.
///
/// `payments` maps each AS to the amount the user transferred to it (via
/// the `tussle-econ` ledger in full scenarios). Every *transit* AS (not
/// the source or destination edge) must receive at least its asking price;
/// the first unpaid AS refuses — exactly the §V.A.4 complaint that "ISPs
/// do not receive any benefit when they carry traffic directed by a
/// source route".
pub fn authorize_route(
    graph: &AsGraph,
    path: &[Asn],
    asking_prices: &BTreeMap<Asn, u64>,
    payments: &BTreeMap<Asn, u64>,
) -> Result<(), SourceRouteError> {
    if path.len() < 2 {
        return Err(SourceRouteError::TooShort);
    }
    for w in path.windows(2) {
        if graph.relationship(w[0], w[1]).is_none() {
            return Err(SourceRouteError::NotConnected { from: w[0], to_: w[1] });
        }
    }
    for asn in &path[1..path.len() - 1] {
        let asked = asking_prices.get(asn).copied().unwrap_or(0);
        let offered = payments.get(asn).copied().unwrap_or(0);
        if offered < asked {
            return Err(SourceRouteError::UnpaidTransit { asn: *asn, asked, offered });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// src(1) - t1(10) - dst(2), plus src(1) - t2(20) - dst(2): two transits.
    fn graph() -> AsGraph {
        let mut g = AsGraph::new();
        g.customer_of(Asn(1), Asn(10));
        g.customer_of(Asn(2), Asn(10));
        g.customer_of(Asn(1), Asn(20));
        g.customer_of(Asn(2), Asn(20));
        g
    }

    fn prices(a: u64, b: u64) -> BTreeMap<Asn, u64> {
        BTreeMap::from([(Asn(10), a), (Asn(20), b)])
    }

    #[test]
    fn enumerates_both_transits_cheapest_first() {
        let g = graph();
        let offers = enumerate_paths(&g, Asn(1), Asn(2), 4, &prices(500, 300));
        assert_eq!(offers.len(), 2);
        assert_eq!(offers[0].path, vec![Asn(1), Asn(20), Asn(2)]);
        assert_eq!(offers[0].price, 300);
        assert_eq!(offers[1].price, 500);
    }

    #[test]
    fn max_len_bounds_search() {
        let g = graph();
        let offers = enumerate_paths(&g, Asn(1), Asn(2), 2, &prices(1, 1));
        assert!(offers.is_empty(), "no 2-AS path exists");
    }

    #[test]
    fn endpoints_ride_free() {
        // Only transit ASes are priced; src and dst pay their own providers
        // through their regular contracts.
        let g = graph();
        let mut p = prices(100, 100);
        p.insert(Asn(1), 999);
        p.insert(Asn(2), 999);
        let offers = enumerate_paths(&g, Asn(1), Asn(2), 4, &p);
        assert_eq!(offers[0].price, 100);
    }

    #[test]
    fn authorize_requires_full_payment() {
        let g = graph();
        let asking = prices(500, 300);
        let path = vec![Asn(1), Asn(10), Asn(2)];
        // unpaid: refused by AS10
        let err = authorize_route(&g, &path, &asking, &BTreeMap::new()).unwrap_err();
        assert_eq!(err, SourceRouteError::UnpaidTransit { asn: Asn(10), asked: 500, offered: 0 });
        // partial payment: still refused
        let partial = BTreeMap::from([(Asn(10), 499)]);
        assert!(authorize_route(&g, &path, &asking, &partial).is_err());
        // full payment: authorized
        let full = BTreeMap::from([(Asn(10), 500)]);
        assert_eq!(authorize_route(&g, &path, &asking, &full), Ok(()));
    }

    #[test]
    fn authorize_rejects_disconnected_paths() {
        let g = graph();
        let err =
            authorize_route(&g, &[Asn(1), Asn(2)], &BTreeMap::new(), &BTreeMap::new()).unwrap_err();
        assert_eq!(err, SourceRouteError::NotConnected { from: Asn(1), to_: Asn(2) });
    }

    #[test]
    fn authorize_rejects_trivial_paths() {
        let g = graph();
        assert_eq!(
            authorize_route(&g, &[Asn(1)], &BTreeMap::new(), &BTreeMap::new()),
            Err(SourceRouteError::TooShort)
        );
    }

    #[test]
    fn errors_render_usefully() {
        let e = SourceRouteError::UnpaidTransit { asn: Asn(10), asked: 500, offered: 0 };
        assert!(e.to_string().contains("AS10"));
        assert!(SourceRouteError::TooShort.to_string().contains("two"));
    }

    #[test]
    fn overpayment_is_fine() {
        let g = graph();
        let asking = prices(500, 300);
        let path = vec![Asn(1), Asn(10), Asn(2)];
        let generous = BTreeMap::from([(Asn(10), 10_000)]);
        assert!(authorize_route(&g, &path, &asking, &generous).is_ok());
    }

    #[test]
    fn longer_paths_found_when_direct_transit_removed() {
        // 1 - 10 - 2 and 10 - 20, 1 - 20: removing 20's edge to 2 leaves a
        // path 1,20,10,2 (a "valley" — allowed under paid source routing).
        let mut g = AsGraph::new();
        g.customer_of(Asn(1), Asn(10));
        g.customer_of(Asn(2), Asn(10));
        g.customer_of(Asn(1), Asn(20));
        g.peers(Asn(10), Asn(20));
        let offers = enumerate_paths(&g, Asn(1), Asn(2), 4, &prices(100, 100));
        let paths: Vec<_> = offers.iter().map(|o| o.path.clone()).collect();
        assert!(paths.contains(&vec![Asn(1), Asn(10), Asn(2)]));
        assert!(paths.contains(&vec![Asn(1), Asn(20), Asn(10), Asn(2)]));
        // the long way is priced as the sum of both transits
        let long = offers.iter().find(|o| o.path.len() == 4).unwrap();
        assert_eq!(long.price, 200);
    }
}

//! The `tussle-cli` binary: see [`tussle_cli`] for the commands.

#![forbid(unsafe_code)]

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Usage text accompanies *parse* failures only; a command that parsed
    // fine but failed to execute (unknown experiment, empty trace filter)
    // reports just its error.
    let cmd = match tussle_cli::parse_args(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", tussle_cli::USAGE);
            return ExitCode::FAILURE;
        }
    };
    match tussle_cli::execute(cmd) {
        Ok(text) => {
            println!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

//! Coverage-guided tussle-space fuzzer with cross-layer invariant oracles.
//!
//! Every other correctness harness in this repo — goldens, the
//! determinism matrix, the recovery oracle, the fast-path equivalence
//! property — checks hand-written scenarios one subsystem at a time. The
//! paper's claim, though, is that tussles play out in the *interactions*:
//! routing meets pricing meets policy meets middleboxes. This module
//! explores that composed space mechanically:
//!
//! * a seeded **scenario generator** composes a random topology
//!   ([`tussle_net::Network::scale_topology`]), a traffic matrix, a
//!   [`FaultPlan`], firewall/QoS/NAT/tunnel/wiretap configuration,
//!   contract and payment setup, and policy snippets into one runnable
//!   [`Scenario`];
//! * a registry of **invariant oracles** ([`ORACLES`]) checks every run:
//!   packet conservation, money conservation, route validity of traversed
//!   paths, plus sampled rerun-determinism, route-cache equivalence and
//!   checkpoint/crash/resume equivalence;
//! * a **coverage map** of `(topic, depth)` cells harvested from the
//!   Profile-mode observation record steers the mutation loop toward
//!   scenarios that light up new cells;
//! * a **delta-debugging shrinker** ([`shrink`]) minimizes any violating
//!   scenario to a smallest repro, serialized as a [`CorpusEntry`] with a
//!   stable schema into `tests/corpus/`.
//!
//! ## Determinism
//!
//! Everything is derived from `SimRng` forks of the chain seed; there is
//! no wall-clock anywhere in a scenario, an outcome, or the report. Chains
//! run as grid jobs on scoped worker threads (the `sweep` execution
//! model): which thread runs a chain varies, but results land in fixed
//! slots and the reduction walks chains in seed order, so the rendered
//! report is byte-identical across `--threads 1/2/8` and across repeated
//! runs.

use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};
use tussle_econ::{AccountId, Instrument, Ledger, Money, PeeringContract, TransitContract};
use tussle_econ::{Consumer, Market, Provider};
use tussle_net::packet::ports;
use tussle_net::tunnel::{decapsulate, encapsulate, TunnelDetector};
use tussle_net::{build_engine, schedule_plan, Asn, Firewall, Flow, Nat, Network};
use tussle_net::{Cache, Packet, Protocol, QosPolicy, RetryPolicy, ScaleTopology, Wiretap};
use tussle_policy::{parse_expr, Ontology, Request};
use tussle_sim::{obs, Engine, FaultPlan, Fnv1a, RunBudget, RunDigest, SimRng, SimTime};

/// The invariant-oracle registry: `(id, what a pass guarantees)`.
///
/// The first three run on **every** scenario; the last three are expensive
/// (they re-execute the scenario) and run on a seeded sample. All six are
/// active in any campaign whose budget covers the sampling stride.
pub const ORACLES: &[(&str, &str)] = &[
    (
        "packet-conservation",
        "delivered + dropped == injected + retried for every flow; taps and caches account every packet they observe",
    ),
    ("route-validity", "every link on a traversed path was up when the packet crossed it"),
    ("money-conservation", "ledger balances always sum to the minted total"),
    (
        "nat-roundtrip",
        "every NAT binding and tunnel encapsulation translates back to the original inner flow",
    ),
    ("policy-eval", "generated policy snippets parse and evaluate deterministically"),
    ("rerun-determinism", "re-running a scenario reproduces its digest byte-for-byte"),
    ("cache-equivalence", "route cache on/off runs are digest-identical"),
    ("checkpoint-resume", "crash at an event boundary + restore equals the uninterrupted run"),
];

/// Hard ceiling on engine events per scenario run — a runaway-scenario
/// backstop far above anything the generator's clamps can produce.
const MAX_EVENTS: u64 = 250_000;

/// Sampling strides for the expensive re-execution oracles, keyed off the
/// in-chain iteration index so every chain exercises each of them.
const RERUN_STRIDE: u64 = 5;
const CACHE_STRIDE: u64 = 7;
const CHECKPOINT_STRIDE: u64 = 9;

// ---------------------------------------------------------------------------
// Scenario model
// ---------------------------------------------------------------------------

/// One composable ingredient of a scenario. All fields are scalars so the
/// shrinker can drop elements freely and the corpus schema stays stable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Element {
    /// A periodic flow between two hosts (indices taken modulo host count).
    Traffic {
        /// Source host index.
        from: u32,
        /// Destination host index.
        to: u32,
        /// Packets to send (clamped to 1..=12).
        packets: u32,
        /// Inter-packet interval in microseconds (clamped to 1ms..=50ms).
        interval_us: u64,
        /// Uniform jitter per interval, microseconds.
        jitter_us: u64,
        /// Transient-drop retries (0 = fire and forget; clamped to 0..=4).
        retries: u32,
        /// Type-of-service byte on every packet.
        tos: u8,
        /// Destination port.
        port: u16,
    },
    /// One link flap (down, then back up) scripted on the fault plan.
    LinkFlap {
        /// Link index (modulo link count).
        link: u32,
        /// When the link goes down, microseconds.
        down_at_us: u64,
        /// Outage length, microseconds.
        down_for_us: u64,
    },
    /// One node crash/restore window scripted on the fault plan.
    NodeOutage {
        /// Node index (modulo node count).
        node: u32,
        /// Crash time, microseconds.
        at_us: u64,
        /// Outage length, microseconds.
        for_us: u64,
    },
    /// Intensity-scaled fault injectors + random flaps on every link.
    LinkFaults {
        /// Intensity in percent (clamped to 0..=60).
        intensity_pct: u8,
    },
    /// A port-allowlist firewall on one edge router.
    Firewall {
        /// Edge router index (modulo edge count).
        edge: u32,
        /// The single port allowed through.
        allow_port: u16,
    },
    /// A ToS-based QoS policy on one edge router.
    Qos {
        /// Edge router index (modulo edge count).
        edge: u32,
        /// ToS value at or above which traffic rides premium.
        tos_threshold: u8,
        /// Premium advantage in tenths: the premium delay factor is
        /// `1.0 - tenths/10` (3 => premium rides at 0.7x the queue delay).
        speedup_tenths: u8,
    },
    /// A NAT multiplexing inner hosts behind one external address.
    Nat {
        /// Inner flows to bind (clamped to 1..=16).
        flows: u32,
    },
    /// A transit contract settled once through the ledger.
    Transit {
        /// Customer edge index (modulo edge count).
        customer: u32,
        /// Provider edge index (modulo edge count).
        provider: u32,
        /// Price per megabyte, cents.
        per_mb_cents: u32,
        /// Fixed monthly commitment, cents.
        monthly_cents: u32,
        /// Megabytes carried this period.
        megabytes: u32,
    },
    /// A peering contract settled once through the ledger.
    Peering {
        /// One peer's edge index.
        a: u32,
        /// The other peer's edge index.
        b: u32,
        /// Ratio cap in tenths (15 => 1.5); clamped to >= 10.
        max_ratio_tenths: u8,
        /// Overage price per megabyte, cents.
        overage_cents: u32,
        /// Traffic a -> b, megabytes.
        a_to_b: u32,
        /// Traffic b -> a, megabytes.
        b_to_a: u32,
    },
    /// One consumer payment routed through a payment instrument.
    Payment {
        /// Amount, cents.
        amount_cents: u32,
        /// Instrument selector (modulo the three instruments).
        instrument: u8,
    },
    /// A retail market simulated for a few months.
    MarketRound {
        /// Consumer count (clamped to 2..=12).
        consumers: u8,
        /// Provider count (clamped to 1..=3).
        providers: u8,
        /// Months to run (clamped to 1..=6).
        months: u8,
    },
    /// Tunneled flows: the §V.A.2 port-disguise counter-mechanism, checked
    /// as encapsulate/decapsulate roundtrips plus a provider-side detector.
    Tunnel {
        /// Inner flows to wrap (clamped to 1..=12).
        flows: u32,
        /// Detector true-positive rate, percent (clamped to 100).
        detect_tp_pct: u8,
        /// Detector false-positive rate, percent (clamped to 100).
        detect_fp_pct: u8,
    },
    /// A wiretap + cache observation point fed a cleartext/encrypted mix.
    Wiretap {
        /// Packets observed (clamped to 1..=24).
        packets: u32,
        /// Share of the stream that is encrypted, percent (clamped to 100).
        encrypted_pct: u8,
    },
    /// A policy snippet parsed and evaluated against a connection request.
    Policy {
        /// Snippet template selector.
        template: u8,
        /// Port literal substituted into the snippet.
        port: u16,
        /// ToS threshold substituted into the snippet.
        threshold: u8,
    },
}

/// One runnable point in tussle space: a topology recipe plus elements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Engine seed (flow jitter, fault draws, probe placement).
    pub seed: u64,
    /// Topology seed for [`Network::scale_topology`].
    pub topo_seed: u64,
    /// Node budget (clamped to 12..=40 when built).
    pub nodes: u32,
    /// Core/edge connectivity degree (clamped to 1..=3 when built).
    pub degree: u32,
    /// The composed ingredients, applied in order.
    pub elements: Vec<Element>,
}

impl Scenario {
    fn nodes_clamped(&self) -> usize {
        self.nodes.clamp(12, 40) as usize
    }

    fn degree_clamped(&self) -> usize {
        self.degree.clamp(1, 3) as usize
    }

    /// A short stable content hash, used for corpus filenames and logs.
    pub fn content_hash(&self) -> String {
        let mut h = Fnv1a::new();
        h.write_str(&serde_json::to_string(self).expect("scenarios serialize"));
        RunDigest(h.finish()).to_hex()
    }
}

/// One oracle violation: which invariant broke and how.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// Oracle id from [`ORACLES`].
    pub oracle: String,
    /// Human-readable evidence.
    pub detail: String,
}

impl Violation {
    fn new(oracle: &str, detail: impl Into<String>) -> Self {
        Violation { oracle: oracle.to_owned(), detail: detail.into() }
    }
}

/// What one scenario execution produced.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Folded digest of the engine run + observation record.
    pub digest: String,
    /// Coverage cells (`topic@depth`) the run lit up.
    pub coverage: BTreeSet<String>,
    /// Oracle violations, if any.
    pub violations: Vec<Violation>,
    /// Packets delivered across all flows.
    pub delivered: u64,
    /// Packets dropped across all flows.
    pub dropped: u64,
    /// Per-stakeholder attribution from the observation record
    /// (digest-excluded, feeds the campaign scoreboard).
    pub stakeholders: BTreeMap<String, tussle_sim::StakeholderCost>,
}

// ---------------------------------------------------------------------------
// Generation and mutation
// ---------------------------------------------------------------------------

fn gen_u64(rng: &mut SimRng) -> u64 {
    rng.range(0..u64::MAX)
}

fn gen_element(rng: &mut SimRng) -> Element {
    let port_pool = [ports::SMTP, ports::HTTP, ports::HTTPS, ports::VOIP, ports::P2P, ports::NOVEL];
    match rng.range(0..12u32) {
        0..=3 => Element::Traffic {
            // Traffic is weighted 4/12: without flows most oracles idle.
            from: rng.range(0..64u32),
            to: rng.range(0..64u32),
            packets: rng.range(1..=12u32),
            interval_us: rng.range(1_000..=50_000u64),
            jitter_us: rng.range(0..=5_000u64),
            retries: rng.range(0..=4u32),
            tos: rng.range(0..=255u32) as u8,
            port: *rng.pick(&port_pool).expect("pool is non-empty"),
        },
        4 => Element::LinkFlap {
            link: rng.range(0..128u32),
            down_at_us: rng.range(0..400_000u64),
            down_for_us: rng.range(10_000..=200_000u64),
        },
        5 => Element::NodeOutage {
            node: rng.range(0..64u32),
            at_us: rng.range(0..400_000u64),
            for_us: rng.range(10_000..=200_000u64),
        },
        6 => Element::LinkFaults { intensity_pct: rng.range(0..=60u32) as u8 },
        7 => Element::Firewall {
            edge: rng.range(0..16u32),
            allow_port: *rng.pick(&port_pool).expect("pool is non-empty"),
        },
        8 => Element::Qos {
            edge: rng.range(0..16u32),
            tos_threshold: rng.range(0..=255u32) as u8,
            speedup_tenths: rng.range(1..=9u32) as u8,
        },
        9 => match rng.range(0..6u32) {
            0 => Element::Nat { flows: rng.range(1..=16u32) },
            1 => Element::Transit {
                customer: rng.range(0..16u32),
                provider: rng.range(0..16u32),
                per_mb_cents: rng.range(0..=50u32),
                monthly_cents: rng.range(0..=20_000u32),
                megabytes: rng.range(0..=5_000u32),
            },
            2 => Element::Peering {
                a: rng.range(0..16u32),
                b: rng.range(0..16u32),
                max_ratio_tenths: rng.range(10..=30u32) as u8,
                overage_cents: rng.range(0..=50u32),
                a_to_b: rng.range(0..=5_000u32),
                b_to_a: rng.range(0..=5_000u32),
            },
            3 => Element::Payment {
                amount_cents: rng.range(1..=100_000u32),
                instrument: rng.range(0..=255u32) as u8,
            },
            4 => Element::Tunnel {
                flows: rng.range(1..=12u32),
                detect_tp_pct: rng.range(0..=100u32) as u8,
                detect_fp_pct: rng.range(0..=100u32) as u8,
            },
            _ => Element::Wiretap {
                packets: rng.range(1..=24u32),
                encrypted_pct: rng.range(0..=100u32) as u8,
            },
        },
        10 => Element::MarketRound {
            consumers: rng.range(2..=12u32) as u8,
            providers: rng.range(1..=3u32) as u8,
            months: rng.range(1..=6u32) as u8,
        },
        _ => Element::Policy {
            template: rng.range(0..=255u32) as u8,
            port: *rng.pick(&port_pool).expect("pool is non-empty"),
            threshold: rng.range(0..=255u32) as u8,
        },
    }
}

/// Generate a fresh scenario from the rng.
pub fn generate(rng: &mut SimRng) -> Scenario {
    let n = rng.range(3..=10usize);
    Scenario {
        seed: gen_u64(rng),
        topo_seed: gen_u64(rng),
        nodes: rng.range(12..=40u32),
        degree: rng.range(1..=3u32),
        elements: (0..n).map(|_| gen_element(rng)).collect(),
    }
}

/// Mutate a scenario: add, remove or replace an element, or reseed one of
/// the two seeds. Always returns a structurally valid scenario.
pub fn mutate(rng: &mut SimRng, base: &Scenario) -> Scenario {
    let mut s = base.clone();
    match rng.range(0..6u32) {
        0 => s.elements.push(gen_element(rng)),
        1 if s.elements.len() > 1 => {
            let i = rng.range(0..s.elements.len() as u32) as usize;
            s.elements.remove(i);
        }
        2 if !s.elements.is_empty() => {
            let i = rng.range(0..s.elements.len() as u32) as usize;
            s.elements[i] = gen_element(rng);
        }
        3 => s.seed = gen_u64(rng),
        4 => s.topo_seed = gen_u64(rng),
        _ => {
            s.nodes = rng.range(12..=40u32);
            s.degree = rng.range(1..=3u32);
        }
    }
    if s.elements.is_empty() {
        s.elements.push(gen_element(rng));
    }
    s
}

// ---------------------------------------------------------------------------
// Scenario execution
// ---------------------------------------------------------------------------

struct FlowSpec {
    label: String,
    count: u64,
}

struct BuiltWorld {
    engine: Engine<tussle_net::TrafficWorld>,
    flows: Vec<FlowSpec>,
    /// Route-validity violations recorded by probe events as they fire.
    probe_violations: Rc<RefCell<Vec<Violation>>>,
}

/// Build the engine half of a scenario: topology, middlebox config,
/// flows, fault plan and route-validity probes — everything that runs
/// under the simulation clock.
fn build_world(s: &Scenario, route_cache: bool) -> BuiltWorld {
    let ScaleTopology { net: mut network, edges, hosts, host_addrs, .. } =
        Network::scale_topology(s.topo_seed, s.nodes_clamped(), s.degree_clamped());
    network.set_route_caching(route_cache);

    let n_links = network.links().len() as u32;
    let n_nodes = network.nodes().len() as u32;
    let horizon = SimTime::from_micros(800_000);

    let mut plan = FaultPlan::new();
    let mut flows = Vec::new();
    let mut specs = Vec::new();

    for (idx, el) in s.elements.iter().enumerate() {
        match *el {
            Element::Traffic { from, to, packets, interval_us, jitter_us, retries, tos, port } => {
                let fi = from as usize % hosts.len();
                let mut ti = to as usize % hosts.len();
                if ti == fi {
                    ti = (ti + 1) % hosts.len();
                }
                let proto = if port == ports::VOIP { Protocol::Udp } else { Protocol::Tcp };
                let template =
                    Packet::new(host_addrs[fi], host_addrs[ti], proto, 1024, port).with_tos(tos);
                let label = format!("f{idx}");
                let count = packets.clamp(1, 12) as u64;
                let mut flow = Flow::periodic(
                    &label,
                    hosts[fi],
                    template,
                    SimTime::from_micros(interval_us.clamp(1_000, 50_000)),
                    count,
                )
                .with_jitter(jitter_us.min(5_000));
                if retries > 0 {
                    flow = flow.with_retries(RetryPolicy::backoff(retries.min(4)));
                }
                flows.push(flow);
                specs.push(FlowSpec { label, count });
            }
            Element::LinkFlap { link, down_at_us, down_for_us } => {
                let down = down_at_us.min(horizon.as_micros().saturating_sub(1));
                let up = down.saturating_add(down_for_us.clamp(1, 200_000));
                plan = plan.link_flap(
                    link % n_links.max(1),
                    SimTime::from_micros(down),
                    SimTime::from_micros(up),
                );
            }
            Element::NodeOutage { node, at_us, for_us } => {
                let at = at_us.min(horizon.as_micros().saturating_sub(1));
                let until = at.saturating_add(for_us.clamp(1, 200_000));
                plan = plan.node_outage(
                    node % n_nodes.max(1),
                    SimTime::from_micros(at),
                    SimTime::from_micros(until),
                );
            }
            Element::LinkFaults { intensity_pct } => {
                let scaled = FaultPlan::scaled(
                    f64::from(intensity_pct.min(60)) / 100.0,
                    n_links,
                    horizon,
                    s.seed ^ idx as u64,
                );
                for ev in scaled.events() {
                    plan.push(ev.at, ev.action.clone());
                }
            }
            Element::Firewall { edge, allow_port } => {
                let node = edges[edge as usize % edges.len()];
                network.set_firewall(node, Firewall::port_allowlist(vec![allow_port], "fuzz"));
            }
            Element::Qos { edge, tos_threshold, speedup_tenths } => {
                let node = edges[edge as usize % edges.len()];
                // `premium_speedup` is a delay factor in (0, 1]: tenths=9
                // means premium rides at 0.1x the best-effort queue delay.
                let speedup = 1.0 - f64::from(speedup_tenths.clamp(1, 9)) / 10.0;
                network.set_qos(node, QosPolicy::tos_based(tos_threshold, speedup));
            }
            // Ledger, market, NAT and policy elements run off-engine;
            // see `run_offline_elements`.
            _ => {}
        }
    }

    let mut engine = build_engine(network, flows, s.seed);
    schedule_plan(&mut engine, &plan);

    // Route-validity probes: engine events that send one packet and check,
    // synchronously within the event (links cannot change mid-event), that
    // every hop the packet traversed crossed an up link. The probe also
    // pins delivery truthfulness: a `delivered` report must end at a node
    // holding the destination address.
    let probe_violations: Rc<RefCell<Vec<Violation>>> = Rc::new(RefCell::new(Vec::new()));
    let mut prng = SimRng::seed_from_u64(s.seed).fork("fuzz-probes");
    for k in 0..6u32 {
        let at = SimTime::from_micros(prng.range(0..horizon.as_micros()));
        let fi = prng.range(0..hosts.len() as u32) as usize;
        let mut ti = prng.range(0..hosts.len() as u32) as usize;
        if ti == fi {
            ti = (ti + 1) % hosts.len();
        }
        let from = hosts[fi];
        let to = hosts[ti];
        let pkt = Packet::new(host_addrs[fi], host_addrs[ti], Protocol::Tcp, 2048, ports::HTTP);
        let sink = Rc::clone(&probe_violations);
        engine.schedule_at(at, move |w, ctx| {
            let rep = w.network.send_at(from, pkt, ctx.now(), ctx.rng);
            for hop in rep.path.windows(2) {
                if w.network.link_between(hop[0], hop[1]).is_none() {
                    sink.borrow_mut().push(Violation::new(
                        "route-validity",
                        format!("probe {k}: traversed a down link {:?}->{:?}", hop[0], hop[1]),
                    ));
                }
            }
            if rep.delivered && rep.path.last() != Some(&to) {
                sink.borrow_mut().push(Violation::new(
                    "route-validity",
                    format!(
                        "probe {k}: delivered but path ends at {:?}, not {to:?}",
                        rep.path.last()
                    ),
                ));
            }
        });
    }

    BuiltWorld { engine, flows: specs, probe_violations }
}

/// Run the off-engine elements: ledger settlements, payments, the retail
/// market, NAT roundtrips and policy snippets. Returns any violations.
fn run_offline_elements(s: &Scenario) -> Vec<Violation> {
    let mut violations = Vec::new();

    // One shared ledger: edge-AS accounts plus payer/payee/processor.
    let n_edges = (s.nodes_clamped() / 10).clamp(4, s.nodes_clamped() - 4);
    let accounts = |asn: Asn| AccountId(u64::from(asn.0));
    let mut ledger = Ledger::new();
    for e in 0..n_edges as u32 {
        let id = accounts(Asn(200 + e));
        ledger.open(id);
        ledger.mint(id, Money::from_dollars(1_000));
    }
    let (payer, payee, processor) = (AccountId(1), AccountId(2), AccountId(3));
    for id in [payer, payee, processor] {
        ledger.open(id);
        ledger.mint(id, Money::from_dollars(1_000));
    }
    let minted = ledger.total_minted();

    let cents = |c: u32| Money(i64::from(c) * 10_000);
    let edge_asn = |i: u32| Asn(200 + i % n_edges as u32);

    for (idx, el) in s.elements.iter().enumerate() {
        match *el {
            Element::Transit { customer, provider, per_mb_cents, monthly_cents, megabytes } => {
                let (c, p) = (edge_asn(customer), edge_asn(provider));
                if c == p {
                    continue;
                }
                let contract = TransitContract {
                    customer: c,
                    provider: p,
                    per_mb: cents(per_mb_cents),
                    monthly: cents(monthly_cents),
                };
                // An overdrawn customer is a legal market outcome, not an
                // invariant breach: the settlement is simply skipped.
                let _ = contract.settle(&mut ledger, accounts, u64::from(megabytes));
            }
            Element::Peering { a, b, max_ratio_tenths, overage_cents, a_to_b, b_to_a } => {
                let (pa, pb) = (edge_asn(a), edge_asn(b));
                if pa == pb {
                    continue;
                }
                let contract = PeeringContract {
                    a: pa,
                    b: pb,
                    max_ratio: f64::from(max_ratio_tenths.max(10)) / 10.0,
                    overage_per_mb: cents(overage_cents),
                };
                let _ =
                    contract.settle(&mut ledger, accounts, u64::from(a_to_b), u64::from(b_to_a));
            }
            Element::Payment { amount_cents, instrument } => {
                let inst =
                    [Instrument::Micropayment, Instrument::CreditCard, Instrument::Aggregator]
                        [instrument as usize % 3];
                let amount = cents(amount_cents.max(1));
                if ledger.transfer(payer, payee, amount, "fuzz payment").is_ok() {
                    let fee = inst.overhead(amount).min(ledger.balance(payee));
                    if fee.is_positive() {
                        let _ = ledger.transfer(payee, processor, fee, "fuzz payment fee");
                    }
                }
            }
            Element::MarketRound { consumers, providers, months } => {
                let mut rng = SimRng::seed_from_u64(s.seed ^ idx as u64).fork("fuzz-market");
                let consumers: Vec<Consumer> = (0..u64::from(consumers.clamp(2, 12)))
                    .map(|id| Consumer {
                        id,
                        value: Money::from_dollars(rng.range(20..=80i64)),
                        usage_mb: rng.range(100..5_000u64),
                        runs_server: rng.chance(0.2),
                        tunnels: rng.chance(0.3),
                        switching_cost: Money::from_dollars(rng.range(0..=40i64)),
                        provider: None,
                    })
                    .collect();
                let n_consumers = consumers.len();
                let providers: Vec<Provider> = (0..providers.clamp(1, 3))
                    .map(|p| {
                        Provider::flat(
                            &format!("isp{p}"),
                            Money::from_dollars(rng.range(20..=60i64)),
                            Money::from_dollars(rng.range(5..=15i64)),
                        )
                    })
                    .collect();
                let report = Market::new(consumers, providers).run(months.clamp(1, 6) as usize);
                if report.served > n_consumers {
                    violations.push(Violation::new(
                        "money-conservation",
                        format!("market served {} of {} consumers", report.served, n_consumers),
                    ));
                }
            }
            Element::Nat { flows } => {
                let external = tussle_net::Address::in_prefix(
                    tussle_net::Prefix::new(0xc0000000, 16),
                    1,
                    tussle_net::addr::AddressOrigin::ProviderAssigned(Asn(999)),
                );
                let remote = tussle_net::Address::in_prefix(
                    tussle_net::Prefix::new(0xd0000000, 16),
                    1,
                    tussle_net::addr::AddressOrigin::ProviderIndependent,
                );
                let mut nat = Nat::new(external);
                for f in 0..flows.clamp(1, 16) {
                    let inner = tussle_net::Address::in_prefix(
                        tussle_net::Prefix::new(0x0a000000, 16),
                        f + 1,
                        tussle_net::addr::AddressOrigin::ProviderIndependent,
                    );
                    let inner_port = 3_000 + f as u16;
                    let out = nat.outbound(Packet::new(
                        inner,
                        remote,
                        Protocol::Tcp,
                        inner_port,
                        ports::HTTP,
                    ));
                    if out.src != external {
                        violations.push(Violation::new(
                            "nat-roundtrip",
                            format!(
                                "flow {f}: outbound source {:?} is not the external addr",
                                out.src
                            ),
                        ));
                        continue;
                    }
                    // The remote's reply comes back to the external port.
                    let reply =
                        Packet::new(remote, external, Protocol::Tcp, ports::HTTP, out.src_port);
                    match nat.inbound(reply) {
                        Some(back) if back.dst == inner && back.dst_port == inner_port => {}
                        Some(back) => violations.push(Violation::new(
                            "nat-roundtrip",
                            format!(
                                "flow {f}: reply translated to {:?}:{} instead of {:?}:{inner_port}",
                                back.dst, back.dst_port, inner
                            ),
                        )),
                        None => violations.push(Violation::new(
                            "nat-roundtrip",
                            format!("flow {f}: reply to a live binding was dropped"),
                        )),
                    }
                }
                if nat.active_bindings() > flows.clamp(1, 16) as usize {
                    violations.push(Violation::new(
                        "nat-roundtrip",
                        format!("{} bindings for {} flows", nat.active_bindings(), flows),
                    ));
                }
            }
            Element::Tunnel { flows, detect_tp_pct, detect_fp_pct } => {
                let addr = |prefix: u32, host: u32| {
                    tussle_net::Address::in_prefix(
                        tussle_net::Prefix::new(prefix, 16),
                        host,
                        tussle_net::addr::AddressOrigin::ProviderIndependent,
                    )
                };
                let endpoint = addr(0xc0000000, 1);
                let mut rng = SimRng::seed_from_u64(s.seed ^ idx as u64).fork("fuzz-tunnel");
                // Perfect detection is deterministic whatever the rng says;
                // the scenario's tuned rates exercise the probabilistic path.
                let sharp = TunnelDetector::new(1.0, 0.0);
                let tuned = TunnelDetector::new(
                    f64::from(detect_tp_pct.min(100)) / 100.0,
                    f64::from(detect_fp_pct.min(100)) / 100.0,
                );
                let n = flows.clamp(1, 12);
                let mut flagged = 0u32;
                for f in 0..n {
                    let src = addr(0x0a000000, f + 2);
                    let inner =
                        Packet::new(src, addr(0x0b000000, 1), Protocol::Tcp, 4_000, ports::P2P);
                    let outer = encapsulate(&inner, src, endpoint);
                    if outer.visible_dst_port() == Some(ports::P2P) {
                        violations.push(Violation::new(
                            "nat-roundtrip",
                            format!("tunnel flow {f}: outer header leaks the inner port"),
                        ));
                    }
                    match decapsulate(&outer, &inner) {
                        Some(back) if back.dst == inner.dst && back.dst_port == inner.dst_port => {}
                        Some(back) => violations.push(Violation::new(
                            "nat-roundtrip",
                            format!(
                                "tunnel flow {f}: decapsulated to {:?}:{} instead of {:?}:{}",
                                back.dst, back.dst_port, inner.dst, inner.dst_port
                            ),
                        )),
                        None => violations.push(Violation::new(
                            "nat-roundtrip",
                            format!("tunnel flow {f}: decapsulation rejected its own wrapper"),
                        )),
                    }
                    if decapsulate(&inner, &inner).is_some() {
                        violations.push(Violation::new(
                            "nat-roundtrip",
                            format!("tunnel flow {f}: a bare packet decapsulated as a tunnel"),
                        ));
                    }
                    if !sharp.flags(&outer, &mut rng) || sharp.flags(&inner, &mut rng) {
                        violations.push(Violation::new(
                            "nat-roundtrip",
                            format!("tunnel flow {f}: the perfect detector misclassified"),
                        ));
                    }
                    if tuned.flags(&outer, &mut rng) {
                        flagged += 1;
                    }
                }
                if flagged > n {
                    violations.push(Violation::new(
                        "nat-roundtrip",
                        format!("{flagged} detector flags for {n} tunneled flows"),
                    ));
                }
            }
            Element::Wiretap { packets, encrypted_pct } => {
                let addr = |prefix: u32, host: u32| {
                    tussle_net::Address::in_prefix(
                        tussle_net::Prefix::new(prefix, 16),
                        host,
                        tussle_net::addr::AddressOrigin::ProviderIndependent,
                    )
                };
                let n = packets.clamp(1, 24);
                let pct = u64::from(encrypted_pct.min(100));
                let mut tap = Wiretap::new();
                let mut cache = Cache::new();
                let mut cleartext = 0u64;
                for i in 0..n {
                    let pkt = Packet::new(
                        addr(0x0a000000, 1 + i % 3),
                        addr(0x0b000000, 1 + i % 4),
                        Protocol::Tcp,
                        5_000 + i as u16,
                        ports::HTTP,
                    );
                    // The first ceil(pct% of n) packets ride encrypted — a
                    // deterministic mix with the requested share.
                    let pkt = if u64::from(i) * 100 < pct * u64::from(n) {
                        pkt.encrypt()
                    } else {
                        cleartext += 1;
                        pkt
                    };
                    tap.observe(&pkt);
                    cache.handle(&pkt);
                }
                if tap.records().len() != n as usize {
                    violations.push(Violation::new(
                        "packet-conservation",
                        format!("tap recorded {} of {n} observed packets", tap.records().len()),
                    ));
                }
                let readable = tap.records().iter().filter(|r| r.content_readable).count() as u64;
                if readable != cleartext {
                    violations.push(Violation::new(
                        "packet-conservation",
                        format!("tap read {readable} of {cleartext} cleartext packets"),
                    ));
                }
                if tap.records().iter().any(|r| {
                    !r.content_readable && (r.content_bytes != 0 || r.visible_port.is_some())
                }) {
                    violations.push(Violation::new(
                        "packet-conservation",
                        "an encrypted capture leaked content bytes or a port",
                    ));
                }
                let yield_expected = cleartext as f64 / f64::from(n);
                if (tap.content_yield() - yield_expected).abs() > 1e-9 {
                    violations.push(Violation::new(
                        "packet-conservation",
                        format!(
                            "content yield {} != readable share {yield_expected}",
                            tap.content_yield()
                        ),
                    ));
                }
                if tap.flow_pairs() == 0 || tap.flow_pairs() > n as usize {
                    violations.push(Violation::new(
                        "packet-conservation",
                        format!("{} flow pairs from {n} captures", tap.flow_pairs()),
                    ));
                }
                if cache.hits + cache.misses + cache.opaque != u64::from(n) {
                    violations.push(Violation::new(
                        "packet-conservation",
                        format!(
                            "cache accounted {} of {n} requests",
                            cache.hits + cache.misses + cache.opaque
                        ),
                    ));
                }
                if cache.opaque != u64::from(n) - cleartext {
                    violations.push(Violation::new(
                        "packet-conservation",
                        format!(
                            "{} opaque requests for {} encrypted packets",
                            cache.opaque,
                            u64::from(n) - cleartext
                        ),
                    ));
                }
                if !(0.0..=1.0).contains(&cache.hit_rate()) {
                    violations.push(Violation::new(
                        "packet-conservation",
                        format!("cache hit rate {} outside [0,1]", cache.hit_rate()),
                    ));
                }
            }
            Element::Policy { template, port, threshold } => {
                let snippet = match template % 4 {
                    0 => format!("dst_port == {port}"),
                    1 => format!("tos >= {threshold}"),
                    2 => format!("dst_port == {port} && tos >= {threshold}"),
                    _ => format!("dst_port in [25, 80, {port}] || tos >= {threshold}"),
                };
                match parse_expr(&snippet) {
                    Err(e) => violations.push(Violation::new(
                        "policy-eval",
                        format!("generated snippet `{snippet}` failed to parse: {e:?}"),
                    )),
                    Ok(expr) => {
                        let ont = Ontology::network();
                        let req = Request::new()
                            .with("dst_port", i64::from(port))
                            .with("tos", i64::from(threshold));
                        let first = expr.matches(&req, &ont);
                        let second = expr.matches(&req, &ont);
                        match (&first, &second) {
                            (Ok(a), Ok(b)) if a == b => {}
                            (Ok(_), Ok(_)) => violations.push(Violation::new(
                                "policy-eval",
                                format!("`{snippet}` evaluated differently twice"),
                            )),
                            _ => violations.push(Violation::new(
                                "policy-eval",
                                format!("`{snippet}` failed to evaluate: {first:?}"),
                            )),
                        }
                    }
                }
            }
            _ => {}
        }
    }

    if !ledger.is_conserving() || ledger.total_minted() != minted {
        violations.push(Violation::new(
            "money-conservation",
            format!(
                "ledger no longer conserves: minted {:?} -> {:?}",
                minted,
                ledger.total_minted()
            ),
        ));
    }
    violations
}

/// Execute one scenario under a Profile observation scope and check the
/// always-on oracles. Deterministic in the scenario alone.
pub fn run_scenario(s: &Scenario) -> ScenarioOutcome {
    let guard = obs::begin(obs::ObsMode::Profile);
    let mut world = build_world(s, true);
    let report = world.engine.run_budgeted(&RunBudget::events(MAX_EVENTS));
    let completed = report.outcome.completed();

    let mut violations = world.probe_violations.borrow().clone();
    let mut delivered_total = 0u64;
    let mut dropped_total = 0u64;
    let metrics = world.engine.metrics();
    for spec in &world.flows {
        let delivered = metrics.counter(&format!("flow.{}.delivered", spec.label));
        let dropped = metrics.counter(&format!("flow.{}.dropped", spec.label));
        let retried = metrics.counter(&format!("flow.{}.retried", spec.label));
        delivered_total += delivered;
        dropped_total += dropped;
        let attempts = delivered + dropped;
        let injected = spec.count + retried;
        // Completed runs balance exactly; a budget-halted run may hold
        // packets in flight, so attempts can only fall short, never exceed.
        let conserves = if completed { attempts == injected } else { attempts <= injected };
        if !conserves {
            violations.push(Violation::new(
                "packet-conservation",
                format!(
                    "flow {}: delivered {delivered} + dropped {dropped} != sent {} + retried {retried} (completed: {completed})",
                    spec.label, spec.count
                ),
            ));
        }
    }

    // Counter-derived coverage: which delivery outcomes this scenario
    // reached, with flow labels stripped so cells compare across
    // scenarios ("drop@LinkLoss", not "flow.f3.drop.LinkLoss").
    let mut coverage = BTreeSet::new();
    for (key, n) in metrics.counters() {
        if n == 0 {
            continue;
        }
        if let Some(rest) = key.strip_prefix("flow.") {
            if let Some((_, outcome)) = rest.split_once('.') {
                let cell = match outcome.split_once('.') {
                    Some((kind, detail)) => format!("{kind}@{detail}"),
                    None => format!("flow@{outcome}"),
                };
                coverage.insert(cell);
            }
        }
    }

    let engine_digest = world.engine.digest();
    violations.extend(run_offline_elements(s));
    let record = guard.finish();

    // Observation-derived coverage: topics seen and (topic, depth) span
    // shapes from the Profile ring.
    for topic in record.topics.keys() {
        coverage.insert(format!("{topic}@*"));
    }
    for entry in &record.ring {
        coverage.insert(format!("{}@{}", entry.topic, entry.depth));
    }

    let mut h = Fnv1a::new();
    h.write_str(&engine_digest.to_hex());
    h.write_str(&record.digest.to_hex());
    ScenarioOutcome {
        digest: RunDigest(h.finish()).to_hex(),
        coverage,
        violations,
        delivered: delivered_total,
        dropped: dropped_total,
        stakeholders: record.stakeholders,
    }
}

// ---------------------------------------------------------------------------
// Sampled re-execution oracles
// ---------------------------------------------------------------------------

/// Rerun the scenario and compare digests (`rerun-determinism`).
pub fn check_rerun_determinism(s: &Scenario) -> Option<Violation> {
    let a = run_scenario(s);
    let b = run_scenario(s);
    (a.digest != b.digest).then(|| {
        Violation::new(
            "rerun-determinism",
            format!("digest {} vs {} across identical reruns", a.digest, b.digest),
        )
    })
}

/// Run the engine half with the route cache on and off; digests must
/// agree byte-for-byte (`cache-equivalence`).
pub fn check_cache_equivalence(s: &Scenario) -> Option<Violation> {
    let run = |cache: bool| {
        let mut world = build_world(s, cache);
        world.engine.run_budgeted(&RunBudget::events(MAX_EVENTS));
        world.engine.digest().to_hex()
    };
    let (on, off) = (run(true), run(false));
    (on != off).then(|| {
        Violation::new(
            "cache-equivalence",
            format!("route cache on/off digests diverge: {on} vs {off}"),
        )
    })
}

/// Crash the engine run at an event boundary, restore from the checkpoint
/// and finish; the resumed digest must equal the uninterrupted one
/// (`checkpoint-resume`).
pub fn check_checkpoint_resume(s: &Scenario) -> Option<Violation> {
    const CUT: u64 = 40;
    let mut golden = build_world(s, true).engine;
    golden.run(CUT);
    let snapshot = golden.checkpoint();
    let mut resumed = build_world(s, true).engine;
    resumed.run(CUT);
    if let Err(e) = resumed.restore(&snapshot) {
        return Some(Violation::new(
            "checkpoint-resume",
            format!("restore at event {CUT} rejected: {e:?}"),
        ));
    }
    golden.run_budgeted(&RunBudget::events(MAX_EVENTS));
    resumed.run_budgeted(&RunBudget::events(MAX_EVENTS));
    let (g, r) = (golden.digest().to_hex(), resumed.digest().to_hex());
    (g != r).then(|| {
        Violation::new(
            "checkpoint-resume",
            format!("resumed digest {r} != uninterrupted {g} (cut at event {CUT})"),
        )
    })
}

/// Re-check one oracle on a (possibly shrunk) scenario. This is the check
/// function the shrinker drives: it must reproduce the *same* oracle's
/// violation for a candidate to count as still-failing.
pub fn check_oracle(s: &Scenario, oracle: &str) -> Option<Violation> {
    match oracle {
        "rerun-determinism" => check_rerun_determinism(s),
        "cache-equivalence" => check_cache_equivalence(s),
        "checkpoint-resume" => check_checkpoint_resume(s),
        _ => run_scenario(s).violations.into_iter().find(|v| v.oracle == oracle),
    }
}

// ---------------------------------------------------------------------------
// Shrinker
// ---------------------------------------------------------------------------

/// Delta-debugging (ddmin) over a scenario's element list: find a
/// 1-minimal failing sub-scenario under `check`. `check` returns the
/// violation a candidate still exhibits, or `None` if it passes. The
/// caller must ensure `check(scenario)` is `Some`; the returned scenario
/// still fails and removing any single remaining element makes it pass.
pub fn shrink(
    scenario: &Scenario,
    check: &dyn Fn(&Scenario) -> Option<Violation>,
) -> (Scenario, Violation) {
    let mut current = scenario.clone();
    let mut violation = check(&current).expect("shrink requires a scenario that fails the check");

    let mut granularity = 2usize;
    while current.elements.len() >= 2 {
        let len = current.elements.len();
        let chunk = len.div_ceil(granularity);
        let mut reduced = false;
        for start in (0..len).step_by(chunk) {
            let end = (start + chunk).min(len);
            let mut candidate = current.clone();
            candidate.elements.drain(start..end);
            if candidate.elements.is_empty() {
                continue;
            }
            if let Some(v) = check(&candidate) {
                current = candidate;
                violation = v;
                granularity = granularity.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
        }
        if !reduced {
            if granularity >= len {
                break;
            }
            granularity = (granularity * 2).min(len);
        }
    }
    (current, violation)
}

// ---------------------------------------------------------------------------
// Corpus entries
// ---------------------------------------------------------------------------

/// Stable on-disk schema for `tests/corpus/` entries (bump [`CORPUS_SCHEMA`]
/// on breaking change).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusEntry {
    /// Schema version; always [`CORPUS_SCHEMA`].
    pub schema: u32,
    /// `"violation"` (oracle still fires), `"regression"` (used to fire,
    /// fixed, must stay green) or `"near-miss"` (hairy but green).
    pub kind: String,
    /// The oracle involved, if any.
    pub oracle: Option<String>,
    /// Human-readable context.
    pub detail: Option<String>,
    /// The (shrunk) scenario.
    pub scenario: Scenario,
}

/// Current corpus schema version.
pub const CORPUS_SCHEMA: u32 = 1;

impl CorpusEntry {
    /// The stable filename for this entry.
    pub fn filename(&self) -> String {
        let tag = self.oracle.as_deref().unwrap_or("scenario");
        format!("{}-{tag}-{}.json", self.kind, self.scenario.content_hash())
    }
}

// ---------------------------------------------------------------------------
// Campaign
// ---------------------------------------------------------------------------

/// What to fuzz.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzConfig {
    /// Total scenario-execution budget across all chains. Must be nonzero.
    pub budget: u64,
    /// Number of independent mutation chains (one per seed). Must be
    /// nonzero.
    pub seeds: u64,
    /// First chain seed.
    pub base_seed: u64,
    /// Directory to serialize findings into (`None` = don't write).
    pub corpus_dir: Option<std::path::PathBuf>,
    /// Worker-thread cap; `None` uses available parallelism.
    pub threads: Option<usize>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig { budget: 200, seeds: 3, base_seed: 1, corpus_dir: None, threads: None }
    }
}

/// Why a campaign could not run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FuzzError {
    /// `budget` was zero.
    NoBudget,
    /// `seeds` was zero.
    NoSeeds,
    /// Writing a corpus entry failed.
    Corpus(String),
}

impl core::fmt::Display for FuzzError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FuzzError::NoBudget => f.write_str("fuzz needs a budget of at least 1"),
            FuzzError::NoSeeds => f.write_str("fuzz needs at least one seed"),
            FuzzError::Corpus(e) => write!(f, "could not write corpus entry: {e}"),
        }
    }
}

impl std::error::Error for FuzzError {}

/// Per-oracle tallies across the campaign.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OracleStat {
    /// Oracle id from [`ORACLES`].
    pub oracle: String,
    /// Times this oracle ran.
    pub checks: u64,
    /// Times it fired.
    pub violations: u64,
}

/// One shrunk failing scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Finding {
    /// The oracle that fired.
    pub oracle: String,
    /// Evidence from the shrunk repro.
    pub detail: String,
    /// Elements left after shrinking.
    pub elements: u64,
    /// The minimized scenario.
    pub scenario: Scenario,
}

/// One chain's summary.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChainStat {
    /// Chain seed.
    pub seed: u64,
    /// Scenario executions charged to this chain's budget.
    pub executions: u64,
    /// Scenarios retained for mutation (each added new coverage).
    pub pool: u64,
    /// Coverage cells this chain lit up.
    pub coverage_cells: u64,
    /// Folded digest of every execution, in order.
    pub digest: String,
}

/// The campaign report. Fully deterministic: no wall-clock anywhere.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FuzzReport {
    /// Report schema version.
    pub schema: u32,
    /// First chain seed.
    pub base_seed: u64,
    /// Number of chains.
    pub seeds: u64,
    /// Requested budget.
    pub budget: u64,
    /// Scenario executions actually charged (== budget).
    pub executions: u64,
    /// Coverage cells lit across all chains.
    pub coverage_cells: u64,
    /// Per-oracle tallies, registry order.
    pub oracles: Vec<OracleStat>,
    /// Per-chain summaries, seed order.
    pub chains: Vec<ChainStat>,
    /// Shrunk failing scenarios, discovery order.
    pub findings: Vec<Finding>,
    /// Folded digest over every chain digest — the cross-thread
    /// determinism anchor.
    pub digest: String,
    /// Per-stakeholder attribution merged across every budgeted execution
    /// (digest-excluded, like wall time; `None` when nothing was traced).
    pub scoreboard: Option<tussle_core::Scoreboard>,
}

impl FuzzReport {
    /// Render as JSON (byte-stable across runs and thread counts).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("fuzz report serializes")
    }

    /// Render as markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!(
            "# Fuzz campaign — {} executions over {} chains (base seed {})\n\n",
            self.executions, self.seeds, self.base_seed
        );
        out.push_str(&format!(
            "Coverage: {} cells · corpus digest `{}`\n\n",
            self.coverage_cells, self.digest
        ));
        out.push_str("| oracle | checks | violations |\n|---|---|---|\n");
        for o in &self.oracles {
            out.push_str(&format!("| {} | {} | {} |\n", o.oracle, o.checks, o.violations));
        }
        out.push_str(
            "\n| chain seed | executions | pool | coverage | digest |\n|---|---|---|---|---|\n",
        );
        for c in &self.chains {
            out.push_str(&format!(
                "| {} | {} | {} | {} | `{}` |\n",
                c.seed, c.executions, c.pool, c.coverage_cells, c.digest
            ));
        }
        if let Some(board) = &self.scoreboard {
            out.push('\n');
            out.push_str(&board.to_markdown());
            out.push('\n');
        }
        if self.findings.is_empty() {
            out.push_str("\nNo invariant violations found.\n");
        } else {
            out.push_str(&format!("\n{} finding(s):\n", self.findings.len()));
            for f in &self.findings {
                out.push_str(&format!(
                    "- **{}** ({} elements after shrinking): {}\n",
                    f.oracle, f.elements, f.detail
                ));
            }
        }
        out
    }
}

struct ChainResult {
    stat: ChainStat,
    checks: BTreeMap<String, u64>,
    violation_counts: BTreeMap<String, u64>,
    findings: Vec<Finding>,
    coverage: BTreeSet<String>,
    scoreboard: tussle_core::Scoreboard,
}

/// Run one mutation chain: `budget` scenario executions seeded from
/// `chain_seed`, coverage-guided (a scenario joins the mutation pool iff
/// it lit a cell the chain had not seen).
fn run_chain(chain_seed: u64, budget: u64) -> ChainResult {
    let mut rng = SimRng::seed_from_u64(chain_seed).fork("fuzz-chain");
    let mut coverage: BTreeSet<String> = BTreeSet::new();
    let mut pool: Vec<Scenario> = Vec::new();
    let mut checks: BTreeMap<String, u64> = BTreeMap::new();
    let mut violation_counts: BTreeMap<String, u64> = BTreeMap::new();
    let mut findings = Vec::new();
    let mut digest = Fnv1a::new();
    let mut scoreboard = tussle_core::Scoreboard::default();

    for i in 0..budget {
        let scenario = if pool.is_empty() || rng.chance(0.35) {
            generate(&mut rng.fork(&format!("gen-{i}")))
        } else {
            let pick = rng.range(0..pool.len() as u32) as usize;
            mutate(&mut rng.fork(&format!("mut-{i}")), &pool[pick])
        };

        let outcome = run_scenario(&scenario);
        for id in [
            "packet-conservation",
            "route-validity",
            "money-conservation",
            "nat-roundtrip",
            "policy-eval",
        ] {
            *checks.entry(id.to_owned()).or_insert(0) += 1;
        }
        digest.write_str(&outcome.digest);
        for (lane, cost) in &outcome.stakeholders {
            scoreboard.stakeholders.entry(lane.clone()).or_default().merge(cost);
        }

        let mut violations = outcome.violations.clone();
        if i % RERUN_STRIDE == 1 {
            *checks.entry("rerun-determinism".into()).or_insert(0) += 1;
            violations.extend(check_rerun_determinism(&scenario));
        }
        if i % CACHE_STRIDE == 2 {
            *checks.entry("cache-equivalence".into()).or_insert(0) += 1;
            violations.extend(check_cache_equivalence(&scenario));
        }
        if i % CHECKPOINT_STRIDE == 3 {
            *checks.entry("checkpoint-resume".into()).or_insert(0) += 1;
            violations.extend(check_checkpoint_resume(&scenario));
        }

        // Dedup per oracle: one finding per (oracle, iteration).
        let mut seen_oracles = BTreeSet::new();
        for v in violations {
            *violation_counts.entry(v.oracle.clone()).or_insert(0) += 1;
            if !seen_oracles.insert(v.oracle.clone()) {
                continue;
            }
            let oracle = v.oracle.clone();
            let check = move |s: &Scenario| check_oracle(s, &oracle);
            if check(&scenario).is_some() {
                let (minimized, mv) = shrink(&scenario, &check);
                findings.push(Finding {
                    oracle: mv.oracle.clone(),
                    detail: mv.detail,
                    elements: minimized.elements.len() as u64,
                    scenario: minimized,
                });
            }
        }

        let fresh: Vec<&String> =
            outcome.coverage.iter().filter(|c| !coverage.contains(*c)).collect();
        if !fresh.is_empty() {
            pool.push(scenario);
            coverage.extend(outcome.coverage.iter().cloned());
        }
    }

    let stat = ChainStat {
        seed: chain_seed,
        executions: budget,
        pool: pool.len() as u64,
        coverage_cells: coverage.len() as u64,
        digest: RunDigest(digest.finish()).to_hex(),
    };
    ChainResult { stat, checks, violation_counts, findings, coverage, scoreboard }
}

/// Run the campaign. Chains execute as grid jobs on scoped worker
/// threads; the reduction walks them in seed order, so the report is
/// byte-identical across thread counts.
pub fn run_fuzz(config: &FuzzConfig) -> Result<FuzzReport, FuzzError> {
    if config.budget == 0 {
        return Err(FuzzError::NoBudget);
    }
    if config.seeds == 0 {
        return Err(FuzzError::NoSeeds);
    }

    // Split the budget across chains; earlier chains absorb the remainder.
    let per_chain = config.budget / config.seeds;
    let remainder = config.budget % config.seeds;
    let jobs: Vec<(u64, u64)> = (0..config.seeds)
        .map(|i| {
            let seed = config.base_seed.wrapping_add(i);
            (seed, per_chain + u64::from(i < remainder))
        })
        .filter(|(_, b)| *b > 0)
        .collect();

    let workers = config
        .threads
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
        .clamp(1, jobs.len().max(1));
    let next = AtomicUsize::new(0);
    let mut harvested: Vec<(usize, ChainResult)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let job = next.fetch_add(1, Ordering::Relaxed);
                        if job >= jobs.len() {
                            break;
                        }
                        let (seed, budget) = jobs[job];
                        local.push((job, run_chain(seed, budget)));
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("worker threads do not panic")).collect()
    });
    harvested.sort_by_key(|(job, _)| *job);

    // Sequential reduction in chain-seed order.
    let mut oracle_checks: BTreeMap<String, u64> = BTreeMap::new();
    let mut oracle_violations: BTreeMap<String, u64> = BTreeMap::new();
    let mut coverage: BTreeSet<String> = BTreeSet::new();
    let mut chains = Vec::new();
    let mut findings = Vec::new();
    let mut digest = Fnv1a::new();
    let mut scoreboard = tussle_core::Scoreboard::default();
    for (_, chain) in harvested {
        digest.write_str(&chain.stat.digest);
        chains.push(chain.stat);
        scoreboard.merge(&chain.scoreboard);
        for (k, v) in chain.checks {
            *oracle_checks.entry(k).or_insert(0) += v;
        }
        for (k, v) in chain.violation_counts {
            *oracle_violations.entry(k).or_insert(0) += v;
        }
        coverage.extend(chain.coverage);
        findings.extend(chain.findings);
    }

    let oracles = ORACLES
        .iter()
        .map(|(id, _)| OracleStat {
            oracle: (*id).to_owned(),
            checks: oracle_checks.get(*id).copied().unwrap_or(0),
            violations: oracle_violations.get(*id).copied().unwrap_or(0),
        })
        .collect();

    let report = FuzzReport {
        schema: CORPUS_SCHEMA,
        base_seed: config.base_seed,
        seeds: config.seeds,
        budget: config.budget,
        executions: config.budget,
        coverage_cells: coverage.len() as u64,
        oracles,
        chains,
        findings,
        digest: RunDigest(digest.finish()).to_hex(),
        scoreboard: if scoreboard.is_empty() { None } else { Some(scoreboard) },
    };

    if let Some(dir) = &config.corpus_dir {
        std::fs::create_dir_all(dir).map_err(|e| FuzzError::Corpus(e.to_string()))?;
        for f in &report.findings {
            let entry = CorpusEntry {
                schema: CORPUS_SCHEMA,
                kind: "violation".to_owned(),
                oracle: Some(f.oracle.clone()),
                detail: Some(f.detail.clone()),
                scenario: f.scenario.clone(),
            };
            let path = dir.join(entry.filename());
            let json = serde_json::to_string_pretty(&entry).expect("corpus entries serialize");
            std::fs::write(&path, json + "\n")
                .map_err(|e| FuzzError::Corpus(format!("{}: {e}", path.display())))?;
        }
    }

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> SimRng {
        SimRng::seed_from_u64(seed).fork("fuzz-test")
    }

    #[test]
    fn generation_is_deterministic_and_serializable() {
        let a = generate(&mut rng(7));
        let b = generate(&mut rng(7));
        assert_eq!(a, b);
        let json = serde_json::to_string(&a).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back, a);
        assert!(!a.elements.is_empty());
        assert_eq!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn mutation_never_empties_a_scenario() {
        let mut r = rng(3);
        let mut s = generate(&mut r);
        for _ in 0..50 {
            s = mutate(&mut r, &s);
            assert!(!s.elements.is_empty());
            assert!((12..=40).contains(&s.nodes_clamped()));
        }
    }

    #[test]
    fn scenario_runs_are_deterministic() {
        let s = generate(&mut rng(11));
        let a = run_scenario(&s);
        let b = run_scenario(&s);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.coverage, b.coverage);
        assert_eq!(a.violations, b.violations);
        assert!(!a.coverage.is_empty(), "a run lights up at least one cell");
    }

    #[test]
    fn clean_scenarios_pass_every_oracle() {
        // A hand-built scenario with traffic + econ + policy and no
        // faults: all oracles must hold.
        let s = Scenario {
            seed: 5,
            topo_seed: 9,
            nodes: 20,
            degree: 2,
            elements: vec![
                Element::Traffic {
                    from: 0,
                    to: 7,
                    packets: 8,
                    interval_us: 10_000,
                    jitter_us: 1_000,
                    retries: 2,
                    tos: 64,
                    port: ports::HTTP,
                },
                Element::Transit {
                    customer: 0,
                    provider: 1,
                    per_mb_cents: 3,
                    monthly_cents: 5_000,
                    megabytes: 100,
                },
                Element::Payment { amount_cents: 250, instrument: 1 },
                Element::Policy { template: 2, port: ports::HTTP, threshold: 32 },
                Element::Nat { flows: 4 },
                Element::Tunnel { flows: 3, detect_tp_pct: 80, detect_fp_pct: 5 },
                Element::Wiretap { packets: 10, encrypted_pct: 40 },
            ],
        };
        let outcome = run_scenario(&s);
        assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);
        assert!(outcome.delivered > 0);
        assert_eq!(check_rerun_determinism(&s), None);
        assert_eq!(check_cache_equivalence(&s), None);
        assert_eq!(check_checkpoint_resume(&s), None);
    }

    #[test]
    fn tunnel_and_wiretap_elements_pass_their_oracles_at_the_extremes() {
        // Sweep the knob extremes: fully-encrypted and fully-clear taps,
        // zero-rate and saturating detectors. All offline oracles hold.
        let mut elements = Vec::new();
        for (tp, fp) in [(0, 0), (100, 100), (37, 92)] {
            elements.push(Element::Tunnel { flows: 12, detect_tp_pct: tp, detect_fp_pct: fp });
        }
        for pct in [0, 50, 100] {
            elements.push(Element::Wiretap { packets: 24, encrypted_pct: pct });
        }
        let s = Scenario { seed: 77, topo_seed: 3, nodes: 16, degree: 2, elements };
        let violations = run_offline_elements(&s);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn chaotic_scenarios_still_conserve_packets() {
        // Faults, outages and firewalls: drops happen, conservation holds.
        let s = Scenario {
            seed: 21,
            topo_seed: 4,
            nodes: 24,
            degree: 2,
            elements: vec![
                Element::Traffic {
                    from: 2,
                    to: 9,
                    packets: 12,
                    interval_us: 5_000,
                    jitter_us: 2_000,
                    retries: 3,
                    tos: 10,
                    port: ports::HTTPS,
                },
                Element::LinkFaults { intensity_pct: 40 },
                Element::LinkFlap { link: 3, down_at_us: 10_000, down_for_us: 100_000 },
                Element::NodeOutage { node: 1, at_us: 50_000, for_us: 80_000 },
                Element::Firewall { edge: 0, allow_port: ports::SMTP },
            ],
        };
        let outcome = run_scenario(&s);
        let conservation: Vec<_> =
            outcome.violations.iter().filter(|v| v.oracle == "packet-conservation").collect();
        assert!(conservation.is_empty(), "{conservation:?}");
    }

    #[test]
    fn shrinker_minimizes_a_planted_violation_to_its_core() {
        // Plant a synthetic cross-layer violation: the check fires iff the
        // scenario still contains a Firewall AND a Qos element. Twelve
        // elements of noise around the pair must shrink away.
        let mut r = rng(13);
        let mut elements: Vec<Element> = (0..10).map(|_| gen_element(&mut r)).collect();
        elements.retain(|e| !matches!(e, Element::Firewall { .. } | Element::Qos { .. }));
        elements.insert(3, Element::Firewall { edge: 1, allow_port: 80 });
        elements.push(Element::Qos { edge: 0, tos_threshold: 9, speedup_tenths: 3 });
        let planted = Scenario { seed: 1, topo_seed: 2, nodes: 16, degree: 2, elements };
        let check = |s: &Scenario| {
            let fw = s.elements.iter().any(|e| matches!(e, Element::Firewall { .. }));
            let qos = s.elements.iter().any(|e| matches!(e, Element::Qos { .. }));
            (fw && qos).then(|| Violation::new("planted", "firewall+qos interaction"))
        };
        assert!(check(&planted).is_some());
        let (minimized, violation) = shrink(&planted, &check);
        assert_eq!(violation.oracle, "planted");
        assert!(
            minimized.elements.len() <= 3,
            "shrank to {} elements: {:?}",
            minimized.elements.len(),
            minimized.elements
        );
        assert!(check(&minimized).is_some(), "the shrunk scenario still fails");
        // 1-minimality: removing any one element makes it pass.
        for i in 0..minimized.elements.len() {
            let mut probe = minimized.clone();
            probe.elements.remove(i);
            assert!(
                probe.elements.is_empty() || check(&probe).is_none(),
                "dropping element {i} should clear the violation"
            );
        }
    }

    #[test]
    fn campaign_rejects_zero_budget_and_zero_seeds() {
        let bad = FuzzConfig { budget: 0, ..FuzzConfig::default() };
        assert_eq!(run_fuzz(&bad), Err(FuzzError::NoBudget));
        let bad = FuzzConfig { seeds: 0, ..FuzzConfig::default() };
        assert_eq!(run_fuzz(&bad), Err(FuzzError::NoSeeds));
    }

    #[test]
    fn campaign_digest_is_identical_across_thread_counts() {
        let mut reports = Vec::new();
        for threads in [1, 2, 8] {
            let cfg = FuzzConfig {
                budget: 10,
                seeds: 2,
                base_seed: 42,
                corpus_dir: None,
                threads: Some(threads),
            };
            reports.push(run_fuzz(&cfg).unwrap());
        }
        assert_eq!(reports[0], reports[1]);
        assert_eq!(reports[1], reports[2]);
        assert_eq!(reports[0].to_json(), reports[2].to_json());
        assert_eq!(reports[0].digest.len(), 16);
    }

    #[test]
    fn campaign_counts_every_oracle_and_finds_no_violations() {
        let cfg =
            FuzzConfig { budget: 12, seeds: 2, base_seed: 7, corpus_dir: None, threads: Some(2) };
        let report = run_fuzz(&cfg).unwrap();
        assert_eq!(report.executions, 12);
        assert_eq!(report.oracles.len(), ORACLES.len());
        let active = report.oracles.iter().filter(|o| o.checks > 0).count();
        assert!(active >= 5, "only {active} oracles ran");
        assert!(report.coverage_cells > 0);
        assert!(
            report.findings.is_empty(),
            "the seed corpus should be green: {:?}",
            report.findings
        );
        assert!(report.to_markdown().contains("packet-conservation"));
    }

    #[test]
    fn corpus_entries_round_trip_with_stable_filenames() {
        let s = generate(&mut rng(23));
        let entry = CorpusEntry {
            schema: CORPUS_SCHEMA,
            kind: "near-miss".to_owned(),
            oracle: None,
            detail: Some("seeded near-miss".to_owned()),
            scenario: s,
        };
        let json = serde_json::to_string_pretty(&entry).unwrap();
        let back: CorpusEntry = serde_json::from_str(&json).unwrap();
        assert_eq!(back, entry);
        let name = entry.filename();
        assert!(name.starts_with("near-miss-scenario-"), "{name}");
        assert!(name.ends_with(".json"));
        assert_eq!(entry.filename(), back.filename());
    }
}

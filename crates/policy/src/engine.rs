//! Compliance checking: rule lists and delegated assertions.
//!
//! Two consumers of the expression language:
//!
//! * [`RuleSet`] — an ordered allow/deny list (what a COPS PDP pushes to a
//!   PEP, what a firewall operator writes);
//! * [`PolicyEngine`] — KeyNote-shaped trust management: unconditionally
//!   trusted roots issue [`Assertion`]s empowering principals under
//!   conditions, optionally with the right to re-delegate. Compliance asks:
//!   is there a chain of satisfied assertions from a root to the requesting
//!   principal?
//!
//! Note what is deliberately absent: any attempt to reconcile conflicting
//! assertions from different authorities. "The existence of a policy
//! language does nothing to resolve tussles, and it does nothing to address
//! the problem of strategic players, malicious users, liars" (§II.B).

use crate::ast::{EvalError, Expr};
use crate::ontology::Ontology;
use crate::value::Request;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A named principal (user, admin, ISP, government...).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Principal(pub String);

impl Principal {
    /// Convenience constructor.
    pub fn named(name: &str) -> Self {
        Principal(name.to_owned())
    }
}

/// Verdict of a rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RuleAction {
    /// Permit the request.
    Allow,
    /// Refuse the request.
    Deny,
}

/// One entry in an ordered rule list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    /// Condition under which the rule fires.
    pub condition: Expr,
    /// Verdict when it fires.
    pub action: RuleAction,
}

/// An ordered, first-match-wins rule list with a default.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuleSet {
    /// Rules in evaluation order.
    pub rules: Vec<Rule>,
    /// Verdict when nothing matches.
    pub default_action: RuleAction,
}

impl RuleSet {
    /// A default-deny rule set ("that which is not permitted is
    /// forbidden").
    pub fn default_deny() -> Self {
        RuleSet { rules: Vec::new(), default_action: RuleAction::Deny }
    }

    /// A default-allow rule set (the transparent Internet posture).
    pub fn default_allow() -> Self {
        RuleSet { rules: Vec::new(), default_action: RuleAction::Allow }
    }

    /// Append a rule parsed from source.
    pub fn rule(
        mut self,
        action: RuleAction,
        condition_src: &str,
    ) -> Result<Self, crate::parser::ParseError> {
        let condition = crate::parser::parse_expr(condition_src)?;
        self.rules.push(Rule { condition, action });
        Ok(self)
    }

    /// Evaluate a request. Evaluation errors in a rule's condition are
    /// propagated — a policy that cannot be evaluated must not silently
    /// default.
    pub fn decide(&self, req: &Request, ont: &Ontology) -> Result<RuleAction, EvalError> {
        let decision = self.decide_inner(req, ont);
        if tussle_sim::obs::active() {
            let outcome = match &decision {
                Ok(action) => format!("{action:?}"),
                Err(e) => format!("error: {e:?}"),
            };
            // Attributed to the operator lane: rule sets are wielded by
            // whoever runs the box (ISP, firewall admin, government proxy).
            tussle_sim::obs::event_for(
                tussle_sim::SimTime::ZERO,
                "policy.decide",
                Some("operator"),
                &outcome,
            );
        }
        decision
    }

    fn decide_inner(&self, req: &Request, ont: &Ontology) -> Result<RuleAction, EvalError> {
        for rule in &self.rules {
            if rule.condition.matches(req, ont)? {
                return Ok(rule.action);
            }
        }
        Ok(self.default_action)
    }
}

/// A signed statement: `issuer` empowers `subject` for requests matching
/// `condition`; `can_delegate` lets the subject pass the power on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Assertion {
    /// Who issued (signed) the assertion.
    pub issuer: Principal,
    /// Who is empowered.
    pub subject: Principal,
    /// When it applies.
    pub condition: Expr,
    /// May the subject re-delegate this power?
    pub can_delegate: bool,
}

/// Why compliance failed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ComplianceError {
    /// An assertion's condition could not be evaluated.
    Eval(EvalError),
}

impl From<EvalError> for ComplianceError {
    fn from(e: EvalError) -> Self {
        ComplianceError::Eval(e)
    }
}

/// KeyNote-shaped trust-management engine.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PolicyEngine {
    /// Unconditionally trusted roots (the local "POLICY" principal set).
    pub roots: Vec<Principal>,
    /// All assertions presented.
    pub assertions: Vec<Assertion>,
    /// The attribute vocabulary.
    pub ontology: Ontology,
}

impl PolicyEngine {
    /// An engine with the given roots and vocabulary.
    pub fn new(roots: Vec<Principal>, ontology: Ontology) -> Self {
        PolicyEngine { roots, assertions: Vec::new(), ontology }
    }

    /// Add an assertion.
    pub fn assert(&mut self, a: Assertion) {
        self.assertions.push(a);
    }

    /// Is `actor` authorized for `req`?
    ///
    /// True iff a chain of satisfied assertions leads from some root to
    /// `actor`, where every link except the last has `can_delegate`.
    pub fn authorized(&self, actor: &Principal, req: &Request) -> Result<bool, ComplianceError> {
        // Frontier of principals whose *delegation* power we have reached.
        let mut delegators: BTreeSet<&Principal> = self.roots.iter().collect();
        let mut grown = true;
        let mut authorized: BTreeSet<&Principal> = BTreeSet::new();
        while grown {
            grown = false;
            for a in &self.assertions {
                if !delegators.contains(&a.issuer) {
                    continue;
                }
                if !a.condition.matches(req, &self.ontology)? {
                    continue;
                }
                if authorized.insert(&a.subject) {
                    grown = true;
                }
                if a.can_delegate && delegators.insert(&a.subject) {
                    grown = true;
                }
            }
        }
        Ok(authorized.contains(actor) || self.roots.contains(actor))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;

    fn ont() -> Ontology {
        Ontology::network()
    }

    fn req(port: i64) -> Request {
        Request::new().with("action", "connect").with("dst_port", port).with("anonymous", false)
    }

    #[test]
    fn ruleset_first_match_wins() {
        let rs = RuleSet::default_deny()
            .rule(RuleAction::Deny, "dst_port == 25")
            .unwrap()
            .rule(RuleAction::Allow, "dst_port in [25, 80, 443]")
            .unwrap();
        assert_eq!(rs.decide(&req(25), &ont()), Ok(RuleAction::Deny));
        assert_eq!(rs.decide(&req(80), &ont()), Ok(RuleAction::Allow));
        assert_eq!(rs.decide(&req(9999), &ont()), Ok(RuleAction::Deny));
    }

    #[test]
    fn ruleset_default_allow() {
        let rs = RuleSet::default_allow().rule(RuleAction::Deny, "dst_port == 6881").unwrap();
        assert_eq!(rs.decide(&req(6881), &ont()), Ok(RuleAction::Deny));
        assert_eq!(rs.decide(&req(80), &ont()), Ok(RuleAction::Allow));
    }

    #[test]
    fn ruleset_eval_errors_propagate() {
        // rule references an attribute the ontology doesn't know
        let rs = RuleSet {
            rules: vec![Rule {
                condition: Expr::Attr("unheard_of".into()),
                action: RuleAction::Allow,
            }],
            default_action: RuleAction::Deny,
        };
        assert!(rs.decide(&req(80), &ont()).is_err());
    }

    fn assertion(issuer: &str, subject: &str, cond: &str, deleg: bool) -> Assertion {
        Assertion {
            issuer: Principal::named(issuer),
            subject: Principal::named(subject),
            condition: parse_expr(cond).unwrap(),
            can_delegate: deleg,
        }
    }

    #[test]
    fn direct_authorization() {
        let mut eng = PolicyEngine::new(vec![Principal::named("root")], ont());
        eng.assert(assertion("root", "alice", "dst_port == 80", false));
        assert!(eng.authorized(&Principal::named("alice"), &req(80)).unwrap());
        assert!(!eng.authorized(&Principal::named("alice"), &req(25)).unwrap());
        assert!(!eng.authorized(&Principal::named("bob"), &req(80)).unwrap());
    }

    #[test]
    fn delegation_chain() {
        let mut eng = PolicyEngine::new(vec![Principal::named("root")], ont());
        eng.assert(assertion("root", "dept", "dst_port in [80, 443]", true));
        eng.assert(assertion("dept", "carol", "dst_port == 443", false));
        assert!(eng.authorized(&Principal::named("carol"), &req(443)).unwrap());
        // carol's own grant is narrower than dept's
        assert!(!eng.authorized(&Principal::named("carol"), &req(80)).unwrap());
    }

    #[test]
    fn non_delegable_grants_do_not_chain() {
        let mut eng = PolicyEngine::new(vec![Principal::named("root")], ont());
        eng.assert(assertion("root", "dept", "dst_port == 80", false)); // no delegation
        eng.assert(assertion("dept", "carol", "dst_port == 80", false));
        assert!(!eng.authorized(&Principal::named("carol"), &req(80)).unwrap());
        assert!(eng.authorized(&Principal::named("dept"), &req(80)).unwrap());
    }

    #[test]
    fn unrooted_assertions_grant_nothing() {
        let mut eng = PolicyEngine::new(vec![Principal::named("root")], ont());
        eng.assert(assertion("stranger", "mallory", "dst_port == 80", true));
        assert!(!eng.authorized(&Principal::named("mallory"), &req(80)).unwrap());
    }

    #[test]
    fn roots_are_always_authorized() {
        let eng = PolicyEngine::new(vec![Principal::named("root")], ont());
        assert!(eng.authorized(&Principal::named("root"), &req(1)).unwrap());
    }

    #[test]
    fn delegation_cycles_terminate() {
        let mut eng = PolicyEngine::new(vec![Principal::named("root")], ont());
        eng.assert(assertion("root", "a", "dst_port == 80", true));
        eng.assert(assertion("a", "b", "dst_port == 80", true));
        eng.assert(assertion("b", "a", "dst_port == 80", true)); // cycle
        assert!(eng.authorized(&Principal::named("b"), &req(80)).unwrap());
    }

    #[test]
    fn condition_errors_surface() {
        let mut eng = PolicyEngine::new(vec![Principal::named("root")], ont());
        eng.assert(Assertion {
            issuer: Principal::named("root"),
            subject: Principal::named("alice"),
            condition: Expr::Attr("mystery".into()),
            can_delegate: false,
        });
        assert!(eng.authorized(&Principal::named("alice"), &req(80)).is_err());
    }
}

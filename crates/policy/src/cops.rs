//! COPS-shaped policy provisioning: decision points and enforcement points.
//!
//! §II.B cites "the policy language embedded in the Common Open Policy
//! Service or COPS protocol of the IETF" among the systems that
//! "explicitly recognize run-time tussle, and attempt to accommodate it."
//! This module implements the protocol shape: a policy decision point
//! (PDP) holds the authoritative [`RuleSet`]s; policy enforcement points
//! (PEPs) install versioned copies, answer requests locally, and can
//! fall back to asking the PDP when their state is stale or missing —
//! run-time policy change without redeploying the enforcement point.

use crate::ast::EvalError;
use crate::engine::{RuleAction, RuleSet};
use crate::ontology::Ontology;
use crate::value::Request;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A named, versioned policy as held by the decision point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProvisionedPolicy {
    /// Monotonically increasing version.
    pub version: u64,
    /// The rules.
    pub rules: RuleSet,
}

/// The policy decision point: the authority.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DecisionPoint {
    policies: BTreeMap<String, ProvisionedPolicy>,
    /// The shared vocabulary (PDP and PEPs must agree on the ontology — a
    /// COPS "client type" in miniature).
    pub ontology: Ontology,
}

impl DecisionPoint {
    /// A PDP over an ontology.
    pub fn new(ontology: Ontology) -> Self {
        DecisionPoint { policies: BTreeMap::new(), ontology }
    }

    /// Install or replace a named policy; bumps its version.
    pub fn provision(&mut self, name: &str, rules: RuleSet) -> u64 {
        let next = self.policies.get(name).map(|p| p.version + 1).unwrap_or(1);
        self.policies.insert(name.to_owned(), ProvisionedPolicy { version: next, rules });
        next
    }

    /// Current version of a policy.
    pub fn version_of(&self, name: &str) -> Option<u64> {
        self.policies.get(name).map(|p| p.version)
    }

    /// Fetch a policy for synchronization.
    pub fn fetch(&self, name: &str) -> Option<&ProvisionedPolicy> {
        self.policies.get(name)
    }

    /// Authoritative decision (the PEP's fallback path).
    pub fn decide(&self, name: &str, req: &Request) -> Result<RuleAction, PdpError> {
        let p = self.policies.get(name).ok_or_else(|| PdpError::UnknownPolicy(name.to_owned()))?;
        p.rules.decide(req, &self.ontology).map_err(PdpError::Eval)
    }
}

/// PDP-side errors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PdpError {
    /// No such policy name.
    UnknownPolicy(String),
    /// A rule condition failed to evaluate.
    Eval(EvalError),
}

/// How a PEP answered a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DecisionPath {
    /// Answered from the locally installed policy.
    Local,
    /// The local copy was missing or stale; the PDP answered.
    Outsourced,
}

/// A policy enforcement point: holds cached policies, counts staleness.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EnforcementPoint {
    installed: BTreeMap<String, ProvisionedPolicy>,
    /// Local decisions served.
    pub local_decisions: u64,
    /// Decisions that had to be outsourced to the PDP.
    pub outsourced_decisions: u64,
}

impl EnforcementPoint {
    /// A PEP with nothing installed.
    pub fn new() -> Self {
        EnforcementPoint::default()
    }

    /// Synchronize one policy from the PDP. Returns `true` if anything
    /// changed.
    pub fn sync(&mut self, pdp: &DecisionPoint, name: &str) -> bool {
        match pdp.fetch(name) {
            Some(p) => {
                let stale =
                    self.installed.get(name).map(|mine| mine.version < p.version).unwrap_or(true);
                if stale {
                    self.installed.insert(name.to_owned(), p.clone());
                }
                stale
            }
            None => self.installed.remove(name).is_some(),
        }
    }

    /// Is the local copy current?
    pub fn in_sync(&self, pdp: &DecisionPoint, name: &str) -> bool {
        match (self.installed.get(name), pdp.version_of(name)) {
            (Some(mine), Some(v)) => mine.version == v,
            (None, None) => true,
            _ => false,
        }
    }

    /// Decide a request: locally when the installed copy is current,
    /// otherwise by asking the PDP (and noting the outsourcing).
    pub fn decide(
        &mut self,
        pdp: &DecisionPoint,
        name: &str,
        req: &Request,
    ) -> Result<(RuleAction, DecisionPath), PdpError> {
        if self.in_sync(pdp, name) {
            if let Some(p) = self.installed.get(name) {
                let action = p.rules.decide(req, &pdp.ontology).map_err(PdpError::Eval)?;
                self.local_decisions += 1;
                return Ok((action, DecisionPath::Local));
            }
        }
        let action = pdp.decide(name, req)?;
        self.outsourced_decisions += 1;
        Ok((action, DecisionPath::Outsourced))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RuleAction;

    fn pdp() -> DecisionPoint {
        let mut pdp = DecisionPoint::new(Ontology::network());
        let rules =
            RuleSet::default_deny().rule(RuleAction::Allow, "dst_port in [80, 443]").unwrap();
        pdp.provision("border", rules);
        pdp
    }

    fn req(port: i64) -> Request {
        Request::new().with("dst_port", port)
    }

    #[test]
    fn provisioning_bumps_versions() {
        let mut pdp = pdp();
        assert_eq!(pdp.version_of("border"), Some(1));
        let v = pdp.provision("border", RuleSet::default_allow());
        assert_eq!(v, 2);
        assert_eq!(pdp.version_of("missing"), None);
    }

    #[test]
    fn synced_pep_answers_locally() {
        let pdp = pdp();
        let mut pep = EnforcementPoint::new();
        assert!(pep.sync(&pdp, "border"));
        assert!(!pep.sync(&pdp, "border"), "second sync is a no-op");
        let (action, path) = pep.decide(&pdp, "border", &req(443)).unwrap();
        assert_eq!(action, RuleAction::Allow);
        assert_eq!(path, DecisionPath::Local);
        assert_eq!(pep.local_decisions, 1);
    }

    #[test]
    fn stale_pep_outsources_until_resynced() {
        let mut pdp = pdp();
        let mut pep = EnforcementPoint::new();
        pep.sync(&pdp, "border");
        // policy changes at run time: the port is now forbidden
        pdp.provision(
            "border",
            RuleSet::default_deny().rule(RuleAction::Allow, "dst_port == 25").unwrap(),
        );
        assert!(!pep.in_sync(&pdp, "border"));
        let (action, path) = pep.decide(&pdp, "border", &req(443)).unwrap();
        // the PDP's CURRENT answer wins — no stale allow leaks through
        assert_eq!(action, RuleAction::Deny);
        assert_eq!(path, DecisionPath::Outsourced);
        // resync restores local decisions
        assert!(pep.sync(&pdp, "border"));
        let (_, path) = pep.decide(&pdp, "border", &req(25)).unwrap();
        assert_eq!(path, DecisionPath::Local);
    }

    #[test]
    fn unknown_policies_error() {
        let pdp = pdp();
        let mut pep = EnforcementPoint::new();
        let err = pep.decide(&pdp, "nope", &req(80)).unwrap_err();
        assert_eq!(err, PdpError::UnknownPolicy("nope".into()));
    }

    #[test]
    fn withdrawn_policies_are_removed_on_sync() {
        let mut pdp = pdp();
        let mut pep = EnforcementPoint::new();
        pep.sync(&pdp, "border");
        pdp = DecisionPoint::new(Ontology::network()); // all policies gone
        assert!(pep.sync(&pdp, "border"), "removal is a change");
        assert!(pep.in_sync(&pdp, "border"));
    }

    #[test]
    fn eval_errors_propagate_through_the_protocol() {
        let mut pdp = DecisionPoint::new(Ontology::network());
        pdp.provision(
            "bad",
            RuleSet {
                rules: vec![crate::engine::Rule {
                    condition: crate::ast::Expr::Attr("not_in_ontology".into()),
                    action: RuleAction::Allow,
                }],
                default_action: RuleAction::Deny,
            },
        );
        let mut pep = EnforcementPoint::new();
        pep.sync(&pdp, "bad");
        assert!(matches!(pep.decide(&pdp, "bad", &req(1)), Err(PdpError::Eval(_))));
    }
}

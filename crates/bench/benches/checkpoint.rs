//! Checkpoint overhead bench: scoped vs unscoped experiment runs.
//!
//! Measures what a live checkpoint scope costs the hot path. E10 (QoS
//! auction) runs uncheckpointed and under `every_n_events(1000)` with an
//! in-memory sink — every rng draw and forward pays the per-step scope
//! tick, so this is the worst honest view of the bookkeeping overhead.
//! The acceptance gate pins the scoped run at under 1.15× the
//! uncheckpointed one, best-of-N to shed scheduler noise. A third bench
//! prices actual snapshot capture: a 5k-event engine chain emitting a
//! snapshot every 1000 events.
//!
//! ```sh
//! cargo bench -p tussle-bench --bench checkpoint
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;
use tussle_sim::checkpoint::{self, CheckpointConfig, CheckpointPolicy};
use tussle_sim::{Engine, SimTime};

const SEED: u64 = 2002;
const EVERY: u64 = 1000;
/// E10 runs per timed sample, so one sample is long enough to time.
const REPS: usize = 10;

/// Best-of-N wall-clock, in nanoseconds.
fn best_of(n: usize, mut run: impl FnMut()) -> u128 {
    (0..n)
        .map(|_| {
            let start = Instant::now();
            run();
            start.elapsed().as_nanos()
        })
        .min()
        .expect("at least one run")
}

fn e10() -> fn(u64) -> tussle_core::ExperimentReport {
    tussle_experiments::registry()
        .into_iter()
        .find(|(name, _)| *name == "E10")
        .map(|(_, run)| run)
        .expect("E10 is registered")
}

/// A self-rescheduling 5k-event chain: the engine-driven snapshot
/// workload. Returns total events processed.
fn engine_chain(seed: u64) -> u64 {
    fn link(w: &mut u64, ctx: &mut tussle_sim::Ctx<u64>) {
        *w += ctx.rng.range(1..16u64);
        if ctx.event_id().0 < 5000 {
            ctx.schedule_in(SimTime::from_micros(1), link);
        }
    }
    let mut eng = Engine::new(0u64, seed);
    eng.schedule_at(SimTime::ZERO, link);
    eng.run_to_completion()
}

fn bench_checkpoint(c: &mut Criterion) {
    let run = e10();

    // The scope must be invisible in results before its cost is priced.
    let plain = run(SEED);
    let guard = checkpoint::begin(
        CheckpointConfig::new(CheckpointPolicy::every_n_events(EVERY)).meta("E10", SEED),
    );
    let scoped = run(SEED);
    guard.finish();
    assert_eq!(plain, scoped, "checkpoint scope changed E10's report");

    let mut g = c.benchmark_group("checkpoint");
    g.sample_size(10);
    g.bench_function("e10_uncheckpointed", |b| {
        b.iter(|| {
            for _ in 0..REPS {
                black_box(run(SEED));
            }
        })
    });
    g.bench_function("e10_checkpointed_1k", |b| {
        b.iter(|| {
            let guard = checkpoint::begin(
                CheckpointConfig::new(CheckpointPolicy::every_n_events(EVERY)).meta("E10", SEED),
            );
            for _ in 0..REPS {
                black_box(run(SEED));
            }
            guard.finish();
        })
    });
    g.bench_function("engine_5k_snapshots_1k", |b| {
        b.iter(|| {
            let guard = checkpoint::begin(
                CheckpointConfig::new(CheckpointPolicy::every_n_events(EVERY)).meta("chain", SEED),
            );
            black_box(engine_chain(SEED));
            let rec = guard.finish();
            black_box(rec.snapshots.len());
        })
    });
    g.finish();

    // Acceptance gate: a live every-1000-events scope costs the E10 hot
    // path under 15%. Both arms are warm from the criterion samples.
    let plain_ns = best_of(7, || {
        for _ in 0..REPS {
            black_box(run(SEED));
        }
    });
    let scoped_ns = best_of(7, || {
        let guard = checkpoint::begin(
            CheckpointConfig::new(CheckpointPolicy::every_n_events(EVERY)).meta("E10", SEED),
        );
        for _ in 0..REPS {
            black_box(run(SEED));
        }
        guard.finish();
    });
    let ratio = scoped_ns as f64 / plain_ns as f64;
    println!(
        "checkpoint scope on E10: unscoped {plain_ns} ns, scoped {scoped_ns} ns, ratio {ratio:.3}x"
    );
    assert!(ratio < 1.15, "checkpoint scope must stay under 1.15x on E10 ({ratio:.3}x)");
}

criterion_group!(benches, bench_checkpoint);
criterion_main!(benches);

//! `Display`/`Error` implementations for the crate's error types.

use crate::ledger::LedgerError;
use core::fmt;

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedgerError::InsufficientFunds { account, balance, requested } => {
                write!(f, "account {account:?} holds {balance} but the transfer needs {requested}")
            }
            LedgerError::NonPositiveAmount => f.write_str("transfers must move a positive amount"),
            LedgerError::UnknownAccount(id) => write!(f, "account {id:?} is not registered"),
        }
    }
}

impl std::error::Error for LedgerError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::AccountId;
    use crate::money::Money;

    #[test]
    fn messages_are_informative() {
        let e = LedgerError::InsufficientFunds {
            account: AccountId(3),
            balance: Money::from_dollars(1),
            requested: Money::from_dollars(5),
        };
        let msg = e.to_string();
        assert!(msg.contains("$1.00") && msg.contains("$5.00"));
        assert!(LedgerError::NonPositiveAmount.to_string().contains("positive"));
        assert!(LedgerError::UnknownAccount(AccountId(9)).to_string().contains("not registered"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&LedgerError::NonPositiveAmount);
    }
}

//! Mailbox naming: the third strategy of §IV.A.
//!
//! "one might imagine separate strategies to deal with the issues of
//! trademark, naming mailbox services, and providing names for machines"
//! — machine naming and trademark live in [`crate::namespace`] /
//! [`crate::separated`]; this module is the mailbox strategy, and it has
//! its own lock-in tussle: an address like `alice@provider.example` is
//! *provider-assigned identity*, the e-mail analog of §V.A.1's
//! provider-assigned IP block. Moving providers breaks the address unless
//! the user owns the domain or the old provider (a competitor!) forwards.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Who controls the domain part of a mailbox address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DomainOwnership {
    /// The serving provider owns it (`alice@bigisp.example`).
    ProviderOwned,
    /// The user owns it (`alice@alice.example`) — portable by
    /// construction, the PI-address analog.
    UserOwned,
}

/// A mailbox address.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MailboxAddress {
    /// Local part.
    pub user: String,
    /// Domain part.
    pub domain: String,
}

impl MailboxAddress {
    /// `user@domain`.
    pub fn new(user: &str, domain: &str) -> Self {
        MailboxAddress { user: user.to_ascii_lowercase(), domain: domain.to_ascii_lowercase() }
    }
}

impl core::fmt::Display for MailboxAddress {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}@{}", self.user, self.domain)
    }
}

// Lets `MailboxAddress` key serialized mail tables as `user@domain`.
impl serde::StringKey for MailboxAddress {
    fn to_key(&self) -> String {
        self.to_string()
    }
    fn from_key(key: &str) -> Result<Self, serde::DeError> {
        let (user, domain) = key
            .split_once('@')
            .ok_or_else(|| serde::DeError(format!("invalid mailbox map key `{key}`")))?;
        Ok(MailboxAddress::new(user, domain))
    }
}

/// One user's mailbox arrangement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mailbox {
    /// The public address.
    pub address: MailboxAddress,
    /// Who owns the domain.
    pub ownership: DomainOwnership,
    /// Which provider currently hosts the mailbox.
    pub provider: u64,
}

/// Delivery outcome for a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MailOutcome {
    /// Delivered to the current provider.
    Delivered,
    /// Delivered via the old provider's (grudging, possibly temporary)
    /// forwarding.
    Forwarded,
    /// Bounced: the address died with the provider relationship.
    Bounced,
}

/// The mail system: who hosts what, and which dead addresses still
/// forward.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MailSystem {
    boxes: BTreeMap<MailboxAddress, Mailbox>,
    forwards: BTreeMap<MailboxAddress, MailboxAddress>,
}

impl MailSystem {
    /// An empty system.
    pub fn new() -> Self {
        MailSystem::default()
    }

    /// Create a mailbox at a provider.
    pub fn create(
        &mut self,
        user: &str,
        domain: &str,
        ownership: DomainOwnership,
        provider: u64,
    ) -> MailboxAddress {
        let address = MailboxAddress::new(user, domain);
        self.boxes
            .insert(address.clone(), Mailbox { address: address.clone(), ownership, provider });
        address
    }

    /// The user switches provider. For a user-owned domain the address
    /// simply re-points (like rebinding a machine id, §IV.A). For a
    /// provider-owned address a NEW address is created at the new
    /// provider, and the old one survives only if the old provider agrees
    /// to forward (`old_provider_forwards`). Returns the address to
    /// publish after the move.
    pub fn switch_provider(
        &mut self,
        address: &MailboxAddress,
        new_provider: u64,
        new_domain: &str,
        old_provider_forwards: bool,
    ) -> MailboxAddress {
        let mbox = self.boxes.get_mut(address).expect("switching an existing mailbox");
        match mbox.ownership {
            DomainOwnership::UserOwned => {
                mbox.provider = new_provider;
                address.clone()
            }
            DomainOwnership::ProviderOwned => {
                let user = mbox.address.user.clone();
                let old = mbox.address.clone();
                let new_addr =
                    self.create(&user, new_domain, DomainOwnership::ProviderOwned, new_provider);
                if old_provider_forwards {
                    self.forwards.insert(old.clone(), new_addr.clone());
                } else {
                    self.boxes.remove(&old);
                }
                new_addr
            }
        }
    }

    /// Deliver a message sent to `address`.
    pub fn deliver(&self, address: &MailboxAddress) -> MailOutcome {
        if let Some(target) = self.forwards.get(address) {
            if self.boxes.contains_key(target) {
                return MailOutcome::Forwarded;
            }
            return MailOutcome::Bounced;
        }
        if self.boxes.contains_key(address) {
            MailOutcome::Delivered
        } else {
            MailOutcome::Bounced
        }
    }

    /// The switching cost in lost reachability: the fraction of `senders`
    /// still holding the OLD address whose mail bounces.
    pub fn breakage(&self, old_address: &MailboxAddress, senders_with_old_address: u64) -> f64 {
        match self.deliver(old_address) {
            MailOutcome::Delivered | MailOutcome::Forwarded => 0.0,
            MailOutcome::Bounced => {
                if senders_with_old_address == 0 {
                    0.0
                } else {
                    1.0
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addresses_normalize() {
        let a = MailboxAddress::new("Alice", "BigISP.example");
        assert_eq!(a.to_string(), "alice@bigisp.example");
    }

    #[test]
    fn user_owned_domains_move_freely() {
        let mut m = MailSystem::new();
        let addr = m.create("alice", "alice.example", DomainOwnership::UserOwned, 1);
        let published = m.switch_provider(&addr, 2, "ignored.example", false);
        assert_eq!(published, addr, "the address survives the switch");
        assert_eq!(m.deliver(&addr), MailOutcome::Delivered);
        assert_eq!(m.breakage(&addr, 100), 0.0);
    }

    #[test]
    fn provider_owned_addresses_bounce_without_forwarding() {
        let mut m = MailSystem::new();
        let old = m.create("alice", "bigisp.example", DomainOwnership::ProviderOwned, 1);
        let new = m.switch_provider(&old, 2, "newisp.example", false);
        assert_ne!(new, old);
        assert_eq!(m.deliver(&old), MailOutcome::Bounced);
        assert_eq!(m.deliver(&new), MailOutcome::Delivered);
        assert_eq!(m.breakage(&old, 100), 1.0, "every old correspondent is lost");
    }

    #[test]
    fn forwarding_softens_the_lock_in() {
        let mut m = MailSystem::new();
        let old = m.create("alice", "bigisp.example", DomainOwnership::ProviderOwned, 1);
        let _new = m.switch_provider(&old, 2, "newisp.example", true);
        assert_eq!(m.deliver(&old), MailOutcome::Forwarded);
        assert_eq!(m.breakage(&old, 100), 0.0);
    }

    #[test]
    fn forwarding_to_a_dead_target_bounces() {
        let mut m = MailSystem::new();
        let old = m.create("alice", "bigisp.example", DomainOwnership::ProviderOwned, 1);
        let new = m.switch_provider(&old, 2, "newisp.example", true);
        // the new mailbox dies too (account closed)
        m.boxes.remove(&new);
        assert_eq!(m.deliver(&old), MailOutcome::Bounced);
    }

    #[test]
    fn the_lock_in_parallel_with_addresses() {
        // The §V.A.1 analogy made explicit: provider-owned mailbox ≈
        // provider-assigned prefix; user-owned domain ≈ PI block.
        let mut m = MailSystem::new();
        let pa = m.create("bob", "bigisp.example", DomainOwnership::ProviderOwned, 1);
        let pi = m.create("carol", "carol.example", DomainOwnership::UserOwned, 1);
        m.switch_provider(&pa, 2, "newisp.example", false);
        m.switch_provider(&pi, 2, "unused", false);
        assert_eq!(m.breakage(&pa, 10), 1.0);
        assert_eq!(m.breakage(&pi, 10), 0.0);
    }
}

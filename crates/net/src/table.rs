//! Forwarding information base with longest-prefix match.
//!
//! The FIB is where the PA-vs-PI addressing tussle becomes measurable:
//! every provider-independent customer block is one more entry in *every*
//! core FIB ("adds to the size of the forwarding tables in the core",
//! §V.A.1). Experiment E1 reports `Fib::len` across addressing modes.

use crate::addr::Prefix;
use crate::node::NodeId;
use serde::{Deserialize, Serialize};

/// One forwarding entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FibEntry {
    /// Destination prefix.
    pub prefix: Prefix,
    /// Next hop node.
    pub next_hop: NodeId,
    /// Tie-break metric; lower wins among equal-length prefixes.
    pub metric: u32,
}

/// A forwarding table.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Fib {
    entries: Vec<FibEntry>,
}

impl Fib {
    /// Empty table.
    pub fn new() -> Self {
        Fib::default()
    }

    /// Install or replace a route. Replaces an existing entry for exactly
    /// the same prefix when the new metric is no worse.
    pub fn install(&mut self, prefix: Prefix, next_hop: NodeId, metric: u32) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.prefix == prefix) {
            if metric <= e.metric {
                e.next_hop = next_hop;
                e.metric = metric;
            }
        } else {
            self.entries.push(FibEntry { prefix, next_hop, metric });
        }
    }

    /// Remove all routes for a prefix. Returns how many entries were removed.
    pub fn withdraw(&mut self, prefix: Prefix) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.prefix != prefix);
        before - self.entries.len()
    }

    /// Remove every route via a next hop (e.g. a failed neighbor).
    pub fn withdraw_via(&mut self, next_hop: NodeId) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.next_hop != next_hop);
        before - self.entries.len()
    }

    /// Longest-prefix-match lookup.
    pub fn lookup(&self, dst: u32) -> Option<&FibEntry> {
        self.entries.iter().filter(|e| e.prefix.contains(dst)).max_by(|x, y| {
            x.prefix.len().cmp(&y.prefix.len()).then(y.metric.cmp(&x.metric)) // lower metric preferred
        })
    }

    /// Number of entries — the table-size pressure metric.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries.
    pub fn entries(&self) -> impl Iterator<Item = &FibEntry> {
        self.entries.iter()
    }

    /// Drop every entry.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(bits: u32, len: u8) -> Prefix {
        Prefix::new(bits, len)
    }

    #[test]
    fn longest_prefix_wins() {
        let mut fib = Fib::new();
        fib.install(p(0x0a000000, 8), NodeId(1), 10);
        fib.install(p(0x0a010000, 16), NodeId(2), 10);
        fib.install(Prefix::DEFAULT, NodeId(9), 10);
        assert_eq!(fib.lookup(0x0a010203).unwrap().next_hop, NodeId(2));
        assert_eq!(fib.lookup(0x0a990203).unwrap().next_hop, NodeId(1));
        assert_eq!(fib.lookup(0x42000000).unwrap().next_hop, NodeId(9));
    }

    #[test]
    fn no_default_no_match() {
        let mut fib = Fib::new();
        fib.install(p(0x0a000000, 8), NodeId(1), 0);
        assert!(fib.lookup(0x0b000000).is_none());
    }

    #[test]
    fn equal_length_prefers_lower_metric() {
        let mut fib = Fib::new();
        fib.install(p(0x0a000000, 8), NodeId(1), 20);
        // better metric replaces in place
        fib.install(p(0x0a000000, 8), NodeId(2), 5);
        assert_eq!(fib.lookup(0x0a000001).unwrap().next_hop, NodeId(2));
        // worse metric does not
        fib.install(p(0x0a000000, 8), NodeId(3), 50);
        assert_eq!(fib.lookup(0x0a000001).unwrap().next_hop, NodeId(2));
        assert_eq!(fib.len(), 1);
    }

    #[test]
    fn withdraw_prefix_and_via() {
        let mut fib = Fib::new();
        fib.install(p(0x0a000000, 8), NodeId(1), 0);
        fib.install(p(0x0b000000, 8), NodeId(1), 0);
        fib.install(p(0x0c000000, 8), NodeId(2), 0);
        assert_eq!(fib.withdraw(p(0x0a000000, 8)), 1);
        assert_eq!(fib.len(), 2);
        assert_eq!(fib.withdraw_via(NodeId(1)), 1);
        assert_eq!(fib.len(), 1);
        assert!(fib.lookup(0x0c000001).is_some());
    }

    #[test]
    fn clear_empties() {
        let mut fib = Fib::new();
        fib.install(Prefix::DEFAULT, NodeId(1), 0);
        assert!(!fib.is_empty());
        fib.clear();
        assert!(fib.is_empty());
    }
}

//! Interpreting [`FaultPlan`]s against a live network.
//!
//! `tussle-sim` scripts infrastructure faults as raw `u32` indices (it knows
//! nothing about network types); this module is the boundary where those
//! indices become [`LinkId`]s and [`NodeId`]s and land on the engine's event
//! queue. Out-of-range indices are ignored rather than panicking — a plan
//! generated for a larger topology degrades gracefully on a smaller one.

use crate::link::LinkId;
use crate::node::NodeId;
use crate::traffic::TrafficWorld;
use tussle_sim::{Engine, FaultAction, FaultPlan};

/// Apply one scripted action to the network, ignoring out-of-range indices.
pub fn apply_action(net: &mut crate::network::Network, action: &FaultAction) {
    let n_links = net.links().len() as u32;
    let n_nodes = net.nodes().len() as u32;
    match *action {
        FaultAction::LinkDown(l) if l < n_links => net.set_link_up(LinkId(l), false),
        FaultAction::LinkUp(l) if l < n_links => net.set_link_up(LinkId(l), true),
        FaultAction::CrashNode(n) if n < n_nodes => net.crash_node(NodeId(n)),
        FaultAction::RestoreNode(n) if n < n_nodes => net.restore_node(NodeId(n)),
        FaultAction::SetLinkFaults { link, ref injector } if link < n_links => {
            net.link_mut(LinkId(link)).faults = injector.clone();
        }
        _ => {}
    }
}

/// Schedule every event of `plan` onto `engine`'s queue. Each fires at its
/// scripted virtual time, mutating the network in place; forwarding picks up
/// the change on the next packet. Scheduling order follows the plan's
/// (time-sorted, stable) event order, so runs stay deterministic.
pub fn schedule_plan(engine: &mut Engine<TrafficWorld>, plan: &FaultPlan) {
    for ev in plan.events() {
        let action = ev.action.clone();
        engine.schedule_at(ev.at, move |w: &mut TrafficWorld, ctx| {
            ctx.trace("chaos", format!("{action:?}"));
            apply_action(&mut w.network, &action);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Address, AddressOrigin, Asn, Prefix};
    use crate::network::{DropReason, Network};
    use crate::packet::{ports, Packet, Protocol};
    use crate::traffic::{build_engine, Flow};
    use tussle_sim::{FaultInjector, SimTime};

    fn world() -> (Network, NodeId, NodeId, Packet) {
        let mut net = Network::new();
        let h0 = net.add_host(Asn(1));
        let r = net.add_router(Asn(1));
        let h1 = net.add_host(Asn(2));
        net.connect(h0, r, SimTime::from_millis(1), 1_000_000_000);
        net.connect(r, h1, SimTime::from_millis(1), 1_000_000_000);
        let a0 =
            Address::in_prefix(Prefix::new(0x0a000000, 16), 1, AddressOrigin::ProviderIndependent);
        let a1 =
            Address::in_prefix(Prefix::new(0x0b000000, 16), 1, AddressOrigin::ProviderIndependent);
        net.node_mut(h0).bind(a0);
        net.node_mut(h1).bind(a1);
        net.fib_mut(h0).install(Prefix::DEFAULT, r, 0);
        net.fib_mut(r).install(Prefix::new(0x0b000000, 16), h1, 0);
        let pkt = Packet::new(a0, a1, Protocol::Udp, 1, ports::VOIP);
        (net, h0, r, pkt)
    }

    #[test]
    fn link_flap_window_drops_mid_run_traffic() {
        let (net, h0, _, pkt) = world();
        // 20 packets at 10ms; link 1 down for t in [50ms, 120ms).
        let plan =
            FaultPlan::new().link_flap(1, SimTime::from_millis(50), SimTime::from_millis(120));
        let flow = Flow::periodic("flap", h0, pkt, SimTime::from_millis(10), 20);
        let mut eng = build_engine(net, vec![flow], 3);
        schedule_plan(&mut eng, &plan);
        eng.run_to_completion();
        let delivered = eng.metrics().counter("flow.flap.delivered");
        let down = eng.metrics().counter("flow.flap.drop.LinkDown");
        // sends at 50..110ms inclusive hit the outage window: 7 packets
        assert_eq!(down, 7, "delivered={delivered} down={down}");
        assert_eq!(delivered, 13);
    }

    #[test]
    fn node_crash_takes_links_down_and_restore_brings_them_back() {
        let (mut net, h0, r, pkt) = world();
        net.crash_node(r);
        assert!(!net.node_is_up(r));
        let mut rng = tussle_sim::SimRng::seed_from_u64(1);
        let rep = net.send(h0, pkt.clone(), &mut rng);
        assert_eq!(rep.drop.unwrap().1, DropReason::LinkDown);
        net.restore_node(r);
        assert!(net.node_is_up(r));
        let rep = net.send(h0, pkt, &mut rng);
        assert!(rep.delivered);
    }

    #[test]
    fn overlapping_crashes_restore_links_only_when_both_endpoints_return() {
        let (mut net, h0, r, _) = world();
        net.crash_node(h0);
        net.crash_node(r); // shared link h0-r already down, owned by h0's crash
        net.restore_node(h0); // r still down: the shared link must stay down
        let shared = net.links()[0].id;
        assert!(!net.links()[shared.index()].up);
        net.restore_node(r);
        assert!(net.links()[shared.index()].up);
    }

    #[test]
    fn flapped_link_does_not_charge_pre_outage_queueing() {
        // 3200 bps => a 40-byte packet serializes in 100ms. Three sends at
        // t=0 leave the transmitter busy until 300ms, near the 250ms cap.
        let mut net = Network::new();
        let h0 = net.add_host(Asn(1));
        let h1 = net.add_host(Asn(2));
        let lid = net.connect(h0, h1, tussle_sim::SimTime::from_millis(1), 3_200);
        net.link_mut(lid).queue_delay_cap = Some(tussle_sim::SimTime::from_millis(250));
        let a0 =
            Address::in_prefix(Prefix::new(0x0a000000, 16), 1, AddressOrigin::ProviderIndependent);
        let a1 =
            Address::in_prefix(Prefix::new(0x0b000000, 16), 1, AddressOrigin::ProviderIndependent);
        net.node_mut(h0).bind(a0);
        net.node_mut(h1).bind(a1);
        net.fib_mut(h0).install(Prefix::DEFAULT, h1, 0);
        let pkt = Packet::new(a0, a1, Protocol::Udp, 1, ports::VOIP);
        let mut rng = tussle_sim::SimRng::seed_from_u64(1);
        for _ in 0..3 {
            assert!(net.send(h0, pkt.clone(), &mut rng).delivered);
        }
        // A chaos flap empties the transmitter along with the outage. The
        // post-restore packet must see a fresh queue, not 300ms of backlog
        // (which would overflow the 250ms cap).
        apply_action(&mut net, &FaultAction::LinkDown(lid.0));
        apply_action(&mut net, &FaultAction::LinkUp(lid.0));
        let rep = net.send(h0, pkt, &mut rng);
        assert!(rep.delivered, "stale busy_until survived the flap: {:?}", rep.drop);
        assert_eq!(rep.latency, tussle_sim::SimTime::from_millis(101));
    }

    #[test]
    fn out_of_range_plan_indices_are_ignored() {
        let (mut net, _, _, _) = world();
        apply_action(&mut net, &FaultAction::LinkDown(99));
        apply_action(&mut net, &FaultAction::CrashNode(99));
        apply_action(&mut net, &FaultAction::RestoreNode(99));
        apply_action(
            &mut net,
            &FaultAction::SetLinkFaults { link: 99, injector: FaultInjector::lossy(1.0, 0.0) },
        );
        assert!(net.links().iter().all(|l| l.up));
    }

    #[test]
    fn scaled_plan_application_is_deterministic() {
        let run = |seed: u64| {
            let (net, h0, _, pkt) = world();
            let plan =
                FaultPlan::scaled(0.6, net.links().len() as u32, SimTime::from_secs(1), seed);
            let flow = Flow::periodic("det", h0, pkt, SimTime::from_millis(5), 150);
            let mut eng = build_engine(net, vec![flow], seed);
            schedule_plan(&mut eng, &plan);
            eng.run_to_completion();
            (
                eng.metrics().counter("flow.det.delivered"),
                eng.metrics().counter("flow.det.dropped"),
                eng.now(),
            )
        };
        assert_eq!(run(9), run(9));
        let (d, x, _) = run(9);
        assert_eq!(d + x, 150);
        assert!(x > 0, "a 0.6-intensity plan disturbs at least one packet");
    }
}

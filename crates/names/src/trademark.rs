//! Trademark disputes over the entangled namespace.
//!
//! §IV.A: "since it was (or should have been) obvious that fights over
//! trademarks would be a tussle space, names that express trademarks should
//! be used for as little else as possible." In the entangled design they
//! are used for *machine naming*, so every dispute outcome — suspension or
//! transfer — breaks resolution for whatever ran behind the name. The
//! collateral-damage counter quantifies the paper's argument.

use crate::namespace::{Name, Registry};
use serde::{Deserialize, Serialize};

/// A registered trademark.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trademark {
    /// The mark text (compared against registrable labels, lowercase).
    pub mark: String,
    /// The rights holder's id.
    pub holder: u64,
}

/// A live conflict between a mark and a registered name.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dispute {
    /// The contested name.
    pub name: Name,
    /// The mark asserted.
    pub mark: Trademark,
    /// The current registrant.
    pub registrant: u64,
}

/// How a dispute was decided.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DisputeOutcome {
    /// Name transferred to the mark holder; the registrant's service
    /// behind it is gone.
    TransferredToHolder,
    /// Name suspended while litigated; nobody resolves it.
    Suspended,
    /// Registrant prevailed (good-faith registration).
    RegistrantKeeps,
}

/// The UDRP-style process.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DisputeProcess {
    /// Recognized marks.
    pub marks: Vec<Trademark>,
    /// Names whose resolution was broken by dispute outcomes — the
    /// collateral damage counter of experiment E11.
    pub collateral_damage: u64,
}

impl DisputeProcess {
    /// A process recognizing the given marks.
    pub fn new(marks: Vec<Trademark>) -> Self {
        DisputeProcess { marks, collateral_damage: 0 }
    }

    /// Scan the registry for name/mark conflicts held by non-holders.
    pub fn find_disputes(&self, registry: &Registry) -> Vec<Dispute> {
        let mut out = Vec::new();
        for name in registry.names() {
            let label = name.registrable_label();
            for mark in &self.marks {
                let rec = registry.record(name).expect("iterating registry names");
                if label == mark.mark && rec.owner != mark.holder {
                    out.push(Dispute {
                        name: name.clone(),
                        mark: mark.clone(),
                        registrant: rec.owner,
                    });
                }
            }
        }
        out
    }

    /// Decide one dispute and apply the outcome to the registry.
    ///
    /// Decision rule (UDRP-shaped): bad-faith registrations transfer to the
    /// holder; good-faith ones are suspended while litigated if the holder
    /// presses (`holder_presses`), else the registrant keeps the name.
    pub fn adjudicate(
        &mut self,
        registry: &mut Registry,
        dispute: &Dispute,
        holder_presses: bool,
        holder_target: u32,
    ) -> DisputeOutcome {
        let rec = registry.record(&dispute.name).expect("dispute names a record");
        let had_service = rec.target != 0;
        if rec.bad_faith {
            registry
                .transfer(&dispute.name, dispute.mark.holder, holder_target)
                .expect("record exists");
            if had_service {
                self.collateral_damage += 1;
            }
            DisputeOutcome::TransferredToHolder
        } else if holder_presses {
            registry.suspend(&dispute.name).expect("record exists");
            if had_service {
                self.collateral_damage += 1;
            }
            DisputeOutcome::Suspended
        } else {
            DisputeOutcome::RegistrantKeeps
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn mark(m: &str, holder: u64) -> Trademark {
        Trademark { mark: m.into(), holder }
    }

    #[test]
    fn finds_conflicts_only_for_non_holders() {
        let mut reg = Registry::new();
        reg.register(n("acme.com"), 5, 0xA, true).unwrap(); // squatter
        reg.register(n("acme.org"), 100, 0xB, false).unwrap(); // the holder itself
        reg.register(n("zenith.com"), 6, 0xC, false).unwrap(); // unrelated
        let dp = DisputeProcess::new(vec![mark("acme", 100)]);
        let disputes = dp.find_disputes(&reg);
        assert_eq!(disputes.len(), 1);
        assert_eq!(disputes[0].name, n("acme.com"));
        assert_eq!(disputes[0].registrant, 5);
    }

    #[test]
    fn subdomains_conflict_via_registrable_label() {
        let mut reg = Registry::new();
        reg.register(n("www.acme.com"), 5, 0xA, true).unwrap();
        let dp = DisputeProcess::new(vec![mark("acme", 100)]);
        assert_eq!(dp.find_disputes(&reg).len(), 1);
    }

    #[test]
    fn bad_faith_transfers_and_breaks_the_service() {
        let mut reg = Registry::new();
        reg.register(n("acme.com"), 5, 0xA, true).unwrap();
        let mut dp = DisputeProcess::new(vec![mark("acme", 100)]);
        let d = dp.find_disputes(&reg).pop().unwrap();
        let outcome = dp.adjudicate(&mut reg, &d, true, 0xFF);
        assert_eq!(outcome, DisputeOutcome::TransferredToHolder);
        // resolution now points at the holder, the old service is gone
        assert_eq!(reg.resolve(&n("acme.com")), Some(0xFF));
        assert_eq!(dp.collateral_damage, 1);
    }

    #[test]
    fn good_faith_pressed_suspends() {
        // The entangled design's ugliest case: an honest registrant (a
        // fan site, a same-named business) loses *machine* connectivity
        // while lawyers argue.
        let mut reg = Registry::new();
        reg.register(n("acme.com"), 5, 0xA, false).unwrap();
        let mut dp = DisputeProcess::new(vec![mark("acme", 100)]);
        let d = dp.find_disputes(&reg).pop().unwrap();
        let outcome = dp.adjudicate(&mut reg, &d, true, 0xFF);
        assert_eq!(outcome, DisputeOutcome::Suspended);
        assert_eq!(reg.resolve(&n("acme.com")), None);
        assert_eq!(dp.collateral_damage, 1);
    }

    #[test]
    fn good_faith_unpressed_keeps() {
        let mut reg = Registry::new();
        reg.register(n("acme.com"), 5, 0xA, false).unwrap();
        let mut dp = DisputeProcess::new(vec![mark("acme", 100)]);
        let d = dp.find_disputes(&reg).pop().unwrap();
        let outcome = dp.adjudicate(&mut reg, &d, false, 0xFF);
        assert_eq!(outcome, DisputeOutcome::RegistrantKeeps);
        assert_eq!(reg.resolve(&n("acme.com")), Some(0xA));
        assert_eq!(dp.collateral_damage, 0);
    }

    #[test]
    fn multiple_marks_multiple_disputes() {
        let mut reg = Registry::new();
        reg.register(n("acme.com"), 5, 0xA, true).unwrap();
        reg.register(n("globex.com"), 6, 0xB, true).unwrap();
        let dp = DisputeProcess::new(vec![mark("acme", 100), mark("globex", 200)]);
        assert_eq!(dp.find_disputes(&reg).len(), 2);
    }
}

//! One Criterion bench per experiment (E1–E14).
//!
//! Each bench regenerates its experiment's table; beyond timing, running
//! this suite re-derives every number in `EXPERIMENTS.md`:
//!
//! ```sh
//! cargo bench -p tussle-bench --bench experiments
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tussle_experiments as ex;

const SEED: u64 = 2002;

fn bench_experiments(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);

    macro_rules! exp {
        ($name:literal, $module:ident) => {
            g.bench_function($name, |b| {
                b.iter(|| {
                    let r = ex::$module::run(black_box(SEED));
                    assert!(r.shape_holds, "{} shape failed in bench", r.id);
                    black_box(r)
                })
            });
        };
    }

    exp!("e01_lockin", e01_lockin);
    exp!("e02_value_pricing", e02_value_pricing);
    exp!("e03_broadband", e03_broadband);
    exp!("e04_source_routing", e04_source_routing);
    exp!("e05_overlay", e05_overlay);
    exp!("e06_firewalls", e06_firewalls);
    exp!("e07_mediation", e07_mediation);
    exp!("e08_identity", e08_identity);
    exp!("e09_encryption", e09_encryption);
    exp!("e10_qos", e10_qos);
    exp!("e11_dns", e11_dns);
    exp!("e12_actor_network", e12_actor_network);
    exp!("e13_isolation", e13_isolation);
    exp!("e14_games", e14_games);
    exp!("e15_micropayments", e15_micropayments);
    exp!("e16_multicast", e16_multicast);
    exp!("e17_uncooperative", e17_uncooperative);
    g.finish();

    // After timing, print the regenerated tables once so `cargo bench`
    // output doubles as the EXPERIMENTS.md source data.
    let reports = ex::run_all(SEED);
    let held = reports.iter().filter(|r| r.shape_holds).count();
    println!("\n===== regenerated evaluation ({held}/{} shapes hold) =====", reports.len());
    for r in &reports {
        println!("{}: shape_holds={} — {}", r.id, r.shape_holds, r.summary);
    }
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);

//! Offline vendored micro-benchmark harness.
//!
//! Implements the `criterion` API surface this workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! `Bencher::iter`, `criterion_group!`/`criterion_main!` — with a simple
//! but honest measurement loop: warm up, auto-calibrate the iteration count
//! to a target sample window, take N samples, report min/median/mean.
//! Results print to stdout; there are no HTML reports or statistics files.
//!
//! A benchmark name filter can be passed on the command line like upstream:
//! `cargo bench --bench experiments -- e10` runs only matching benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes `--bench`; any bare argument is a name filter.
        let filter = std::env::args().skip(1).rfind(|a| !a.starts_with('-'));
        Criterion { filter, sample_size: 20, measurement_time: Duration::from_millis(400) }
    }
}

impl Criterion {
    /// Set the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Set the per-benchmark measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            iters: 1,
            calibrated: false,
            sample_size: self.sample_size,
            window: self.measurement_time,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(name);
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_owned() }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size(n);
        self
    }

    /// Set the per-benchmark measurement window for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time(d);
        self
    }

    /// Run one benchmark within the group (name is `group/name`).
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Finish the group (stateless here; provided for API parity).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; drives the measurement loop.
pub struct Bencher {
    iters: u64,
    calibrated: bool,
    sample_size: usize,
    window: Duration,
    samples: Vec<f64>,
}

/// One statistic line of a finished measurement, in nanoseconds per
/// iteration.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Fastest sample.
    pub min: f64,
    /// Median sample.
    pub median: f64,
    /// Mean across samples.
    pub mean: f64,
}

impl Bencher {
    /// Measure `f`, called repeatedly; the harness picks iteration counts.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up & calibration: find an iteration count that fills a
        // per-sample slice of the measurement window.
        let calibration_start = Instant::now();
        let mut calls = 0u64;
        loop {
            black_box(f());
            calls += 1;
            let spent = calibration_start.elapsed();
            if spent >= Duration::from_millis(50) || calls >= 1_000_000 {
                let per_call = spent.as_nanos().max(1) as u64 / calls.max(1);
                let per_sample =
                    (self.window.as_nanos() as u64 / self.sample_size.max(1) as u64).max(1);
                self.iters = (per_sample / per_call.max(1)).clamp(1, 10_000_000);
                break;
            }
        }

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters {
                black_box(f());
            }
            let dt = start.elapsed();
            samples.push(dt.as_nanos() as f64 / self.iters as f64);
        }
        self.calibrated = true;
        self.samples = samples;
    }

    fn report(&self, name: &str) {
        if !self.calibrated {
            println!("{name:<40} (no measurement: closure never called iter)");
            return;
        }
        let s = self.stats();
        println!(
            "{name:<40} time: [{} {} {}]  ({} samples × {} iters)",
            format_ns(s.min),
            format_ns(s.median),
            format_ns(s.mean),
            self.samples.len(),
            self.iters,
        );
        // Machine-readable sidecar: when CRITERION_JSON names a file,
        // append one JSON line per finished bench so CI can assemble a
        // perf baseline without scraping the human-format stdout.
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            if !path.is_empty() {
                let line = format!(
                    "{{\"bench\":\"{}\",\"median_ns\":{}}}\n",
                    name.replace('\\', "\\\\").replace('"', "\\\""),
                    s.median.round() as u64
                );
                let written = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)
                    .and_then(|mut f| std::io::Write::write_all(&mut f, line.as_bytes()));
                if let Err(e) = written {
                    eprintln!("warning: could not append to CRITERION_JSON={path}: {e}");
                }
            }
        }
    }

    /// Statistics of the last measurement.
    pub fn stats(&self) -> Stats {
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let min = sorted.first().copied().unwrap_or(0.0);
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        Stats { min, median, mean }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Group several `fn(&mut Criterion)` benchmarks under one name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion { filter: None, ..Criterion::default() };
        c.sample_size(3).measurement_time(Duration::from_millis(30));
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(2u64 + 2));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion { filter: None, ..Criterion::default() };
        c.measurement_time(Duration::from_millis(20));
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function("one", |b| b.iter(|| black_box(1)));
        g.finish();
    }

    #[test]
    fn json_sidecar_appends_one_line_per_bench() {
        let path =
            std::env::temp_dir().join(format!("criterion_json_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        // Env vars are process-global; this is the only test that sets it.
        std::env::set_var("CRITERION_JSON", &path);
        let mut c = Criterion { filter: None, ..Criterion::default() };
        c.sample_size(2).measurement_time(Duration::from_millis(20));
        c.bench_function("grp/one", |b| b.iter(|| black_box(1)));
        c.bench_function("grp/two", |b| b.iter(|| black_box(2)));
        std::env::remove_var("CRITERION_JSON");
        let text = std::fs::read_to_string(&path).expect("sidecar written");
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        assert!(lines[0].starts_with("{\"bench\":\"grp/one\",\"median_ns\":"), "{text}");
        assert!(lines[1].ends_with('}'), "{text}");
    }

    #[test]
    fn format_ns_scales() {
        assert_eq!(format_ns(12.0), "12.0 ns");
        assert_eq!(format_ns(1_500.0), "1.50 µs");
        assert_eq!(format_ns(2_000_000.0), "2.00 ms");
    }
}

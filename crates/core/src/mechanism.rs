//! The mechanism catalog and the counter-relation.
//!
//! §I's opening examples are all mechanism/counter-mechanism pairs: users
//! tunnel around firewalls, NAT multiplies a single assigned address,
//! rights holders block and users re-route. §IV.D: "the different parties
//! to the tussle use different mechanisms ... such as restrictions on
//! routing, tunnels and overlays, or intentional perversion of DNS
//! information."

use crate::stakeholder::StakeholderKind;
use serde::{Deserialize, Serialize};

/// Every technical mechanism the paper names as a tussle move. Each is
/// implemented by a substrate crate (see `DESIGN.md` for the mapping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Mechanism {
    /// Port/protocol packet filtering (§V.B).
    PortFirewall,
    /// Trust-mediated filtering keyed on identity (§V.B).
    TrustFirewall,
    /// Address translation behind one assigned address (§I).
    Nat,
    /// Encapsulation that hides inner headers (§V.A.2).
    Tunnel,
    /// Deep inspection to detect tunnels (§V.A.2 escalation).
    TunnelDetection,
    /// End-to-end encryption (§VI.A).
    Encryption,
    /// Refusing or surcharging visibly encrypted traffic (§VI.A).
    EncryptionBlocking,
    /// Hiding even the fact of encryption (§VI.A fn. 17).
    Steganography,
    /// Class-based price discrimination (§V.A.2).
    ValuePricing,
    /// Customer-visible per-provider payment for user-selected routes
    /// (§V.A.4).
    PaidSourceRouting,
    /// Provider-controlled path selection (BGP; §V.A.4).
    ProviderRouting,
    /// Application-layer relay around network policy (§V.A.4).
    OverlayRouting,
    /// Rewriting resolver answers (§IV.D).
    DnsPerversion,
    /// Choosing a different resolver/server (§IV.B).
    ServerChoice,
    /// Explicit ToS-bit service selection (§IV.A).
    QosTosBits,
    /// Port-keyed service inference (§IV.A, the entangled design).
    QosPortBased,
    /// Liability caps, reputation, certification (§V.B).
    ThirdPartyMediation,
    /// Presenting no identity (§V.B.1).
    Anonymity,
    /// Refusing anonymous counterparties (§V.B.1).
    RefusingAnonymous,
    /// Law, regulation, public opinion — mechanisms outside the technical
    /// space that shape it (§II, §VIII).
    Regulation,
}

impl Mechanism {
    /// Which stakeholder typically deploys this mechanism.
    pub fn typical_deployer(self) -> StakeholderKind {
        use Mechanism::*;
        use StakeholderKind::*;
        match self {
            PortFirewall | TrustFirewall => PrivateNetworkProvider,
            Nat | Tunnel | Encryption | Steganography | OverlayRouting | ServerChoice
            | Anonymity | PaidSourceRouting => User,
            TunnelDetection | ValuePricing | ProviderRouting | DnsPerversion | QosTosBits
            | QosPortBased | EncryptionBlocking => CommercialIsp,
            ThirdPartyMediation | RefusingAnonymous => ContentProvider,
            Regulation => Government,
        }
    }

    /// The direct counters to this mechanism — who can push back, with
    /// what. This relation *is* the run-time tussle graph; the escalation
    /// module walks it.
    pub fn countered_by(self) -> Vec<Mechanism> {
        use Mechanism::*;
        match self {
            PortFirewall => vec![Tunnel, Steganography],
            TrustFirewall => vec![],
            Nat => vec![],
            Tunnel => vec![TunnelDetection],
            TunnelDetection => vec![Steganography],
            Encryption => vec![EncryptionBlocking],
            EncryptionBlocking => vec![Steganography, Regulation, ServerChoice],
            Steganography => vec![],
            ValuePricing => vec![Tunnel, ServerChoice],
            PaidSourceRouting => vec![],
            ProviderRouting => vec![PaidSourceRouting, OverlayRouting],
            OverlayRouting => vec![],
            DnsPerversion => vec![ServerChoice],
            ServerChoice => vec![],
            QosTosBits => vec![],
            QosPortBased => vec![Encryption, Steganography, Tunnel],
            ThirdPartyMediation => vec![],
            Anonymity => vec![RefusingAnonymous],
            RefusingAnonymous => vec![],
            Regulation => vec![],
        }
    }

    /// Is this a terminal move (no technical counter exists)?
    pub fn is_terminal(self) -> bool {
        self.countered_by().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Mechanism::*;

    #[test]
    fn the_paper_opening_examples_are_encoded() {
        // "users route and tunnel around them [firewalls]"
        assert!(PortFirewall.countered_by().contains(&Tunnel));
        // "ISPs give their users a single IP address, and users attach a
        // network of computers using address translation" — NAT is the
        // counter, and nothing (in this catalog) counters NAT.
        assert!(Nat.is_terminal());
        // value pricing is evaded by tunnels or by switching provider
        assert!(ValuePricing.countered_by().contains(&Tunnel));
        assert!(ValuePricing.countered_by().contains(&ServerChoice));
    }

    #[test]
    fn encryption_escalation_chain_exists() {
        // peek → encrypt → block → steganography (terminal)
        assert!(QosPortBased.countered_by().contains(&Encryption));
        assert!(Encryption.countered_by().contains(&EncryptionBlocking));
        assert!(EncryptionBlocking.countered_by().contains(&Steganography));
        assert!(Steganography.is_terminal());
    }

    #[test]
    fn tos_based_qos_is_terminal_port_based_is_not() {
        // The §IV.A modularity claim in graph form: the well-modularized
        // design gives opponents nothing to counter.
        assert!(QosTosBits.is_terminal());
        assert!(!QosPortBased.is_terminal());
    }

    #[test]
    fn deployers_are_plausible() {
        assert_eq!(Tunnel.typical_deployer(), StakeholderKind::User);
        assert_eq!(ValuePricing.typical_deployer(), StakeholderKind::CommercialIsp);
        assert_eq!(Regulation.typical_deployer(), StakeholderKind::Government);
    }

    #[test]
    fn counter_graph_is_acyclic_from_every_start() {
        // escalation must terminate: walk greedily (first counter) from
        // every mechanism and ensure no cycle within catalog size.
        let all = [
            PortFirewall,
            TrustFirewall,
            Nat,
            Tunnel,
            TunnelDetection,
            Encryption,
            EncryptionBlocking,
            Steganography,
            ValuePricing,
            PaidSourceRouting,
            ProviderRouting,
            OverlayRouting,
            DnsPerversion,
            ServerChoice,
            QosTosBits,
            QosPortBased,
            ThirdPartyMediation,
            Anonymity,
            RefusingAnonymous,
            Regulation,
        ];
        for start in all {
            let mut cur = start;
            for _ in 0..all.len() + 1 {
                match cur.countered_by().first() {
                    Some(next) => cur = *next,
                    None => break,
                }
            }
            assert!(cur.is_terminal(), "walk from {start:?} did not terminate (stuck at {cur:?})");
        }
    }
}

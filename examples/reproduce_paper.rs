//! Reproduce the paper: run all fourteen experiments and emit the full
//! markdown report (the body of `EXPERIMENTS.md`).
//!
//! ```sh
//! cargo run --release --example reproduce_paper            # markdown to stdout
//! cargo run --release --example reproduce_paper -- --json  # JSON instead
//! ```

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let seed = std::env::args()
        .skip_while(|a| a != "--seed")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2002);

    let reports = tussle::experiments::run_all_parallel(seed);

    if json {
        let all: Vec<String> = reports.iter().map(|r| r.to_json()).collect();
        println!("[{}]", all.join(",\n"));
        return;
    }

    println!("# Experiments — paper claim vs. measured (seed {seed})\n");
    println!(
        "Every experiment reproduces one scenario the paper narrates; `shape holds` \
         is the machine-checked verdict that the measured numbers show the \
         qualitative shape the paper predicts.\n"
    );
    let held = reports.iter().filter(|r| r.shape_holds).count();
    println!("**{held} / {} shapes hold.**\n", reports.len());
    for r in &reports {
        println!("{}\n", r.to_markdown());
    }
}

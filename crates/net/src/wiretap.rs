//! Observation points: wiretaps and caches.
//!
//! §VI.A lists two more forces eroding transparency: "The desire of third
//! parties to observe a data flow (e.g., wiretap) calls for data capture
//! sites in the network" and "The desire to improve important applications
//! (e.g., the Web), leads to the deployment of caches, mirror sites...".
//!
//! Both are passive-or-helpful middleboxes rather than filters, and both
//! interact with the encryption tussle: a wiretap on encrypted traffic
//! captures ciphertext metadata only; a cache cannot serve what it cannot
//! read.

use crate::packet::Packet;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What a wiretap records about one packet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CaptureRecord {
    /// Source address value.
    pub src: u32,
    /// Destination address value.
    pub dst: u32,
    /// The destination port as the tap saw it (`None` = hidden).
    pub visible_port: Option<u16>,
    /// Payload bytes captured (0 when encrypted — content is opaque).
    pub content_bytes: usize,
    /// Whether the tap could read the content.
    pub content_readable: bool,
}

/// A data-capture site installed by a third party (lawful intercept, an
/// observing ISP, an adversary — the mechanics are identical).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Wiretap {
    records: Vec<CaptureRecord>,
}

impl Wiretap {
    /// An empty tap.
    pub fn new() -> Self {
        Wiretap::default()
    }

    /// Observe one packet in flight. The packet is never modified — taps
    /// are the one middlebox that is invisible *by function*, which is why
    /// §VI.A treats encryption as the only defense.
    pub fn observe(&mut self, pkt: &Packet) {
        let readable = !pkt.encrypted;
        self.records.push(CaptureRecord {
            src: pkt.src.value,
            dst: pkt.dst.value,
            visible_port: pkt.visible_dst_port(),
            content_bytes: if readable { pkt.payload.len() } else { 0 },
            content_readable: readable,
        });
    }

    /// Everything captured so far.
    pub fn records(&self) -> &[CaptureRecord] {
        &self.records
    }

    /// Fraction of observed packets whose *content* was readable — the
    /// §VI.A measurement of what encryption takes away from the observer.
    pub fn content_yield(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let readable = self.records.iter().filter(|r| r.content_readable).count();
        readable as f64 / self.records.len() as f64
    }

    /// Even fully-encrypted traffic leaks *traffic analysis*: who talks to
    /// whom. Unique (src, dst) pairs seen.
    pub fn flow_pairs(&self) -> usize {
        let mut pairs: Vec<(u32, u32)> = self.records.iter().map(|r| (r.src, r.dst)).collect();
        pairs.sort_unstable();
        pairs.dedup();
        pairs.len()
    }
}

/// A content cache ("caches, mirror sites") keyed by `(dst, dst_port)`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Cache {
    store: BTreeMap<(u32, u16), usize>,
    /// Requests answered locally.
    pub hits: u64,
    /// Requests passed to the origin.
    pub misses: u64,
    /// Requests the cache could not even inspect (encrypted).
    pub opaque: u64,
}

impl Cache {
    /// An empty cache.
    pub fn new() -> Self {
        Cache::default()
    }

    /// Handle one request packet. Returns `true` when served from cache.
    ///
    /// Encrypted requests bypass the cache entirely — the §VI.A trade the
    /// user makes: "the actions of the ISP might actually be making things
    /// better ... if the user has control over whether the data is
    /// encrypted or not, the user can decide if the ISP actions are a
    /// benefit or a hindrance."
    pub fn handle(&mut self, pkt: &Packet) -> bool {
        let Some(port) = pkt.visible_dst_port() else {
            self.opaque += 1;
            return false;
        };
        if pkt.encrypted {
            self.opaque += 1;
            return false;
        }
        let key = (pkt.dst.value, port);
        match self.store.entry(key) {
            std::collections::btree_map::Entry::Occupied(_) => {
                self.hits += 1;
                true
            }
            std::collections::btree_map::Entry::Vacant(slot) => {
                slot.insert(pkt.payload.len());
                self.misses += 1;
                false
            }
        }
    }

    /// Cache hit rate.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.opaque;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Address, AddressOrigin, Prefix};
    use crate::packet::{ports, Protocol};
    use bytes::Bytes;

    fn addr(v: u32) -> Address {
        Address::in_prefix(Prefix::new(v, 16), 1, AddressOrigin::ProviderIndependent)
    }

    fn pkt(dst: u32) -> Packet {
        Packet::new(addr(0x0a000000), addr(dst), Protocol::Tcp, 1, ports::HTTP)
            .with_payload(Bytes::from_static(b"the content"))
    }

    #[test]
    fn tap_reads_cleartext() {
        let mut tap = Wiretap::new();
        tap.observe(&pkt(0x0b000000));
        let r = &tap.records()[0];
        assert!(r.content_readable);
        assert_eq!(r.content_bytes, 11);
        assert_eq!(r.visible_port, Some(ports::HTTP));
        assert_eq!(tap.content_yield(), 1.0);
    }

    #[test]
    fn encryption_blinds_the_tap_but_not_traffic_analysis() {
        let mut tap = Wiretap::new();
        tap.observe(&pkt(0x0b000000).encrypt());
        tap.observe(&pkt(0x0c000000).encrypt());
        assert_eq!(tap.content_yield(), 0.0);
        let r = &tap.records()[0];
        assert_eq!(r.content_bytes, 0);
        assert_eq!(r.visible_port, None);
        // who-talks-to-whom still leaks
        assert_eq!(tap.flow_pairs(), 2);
    }

    #[test]
    fn stego_leaks_a_fake_port_to_the_tap() {
        let mut tap = Wiretap::new();
        tap.observe(&pkt(0x0b000000).steganographic());
        assert_eq!(tap.records()[0].visible_port, Some(ports::HTTP));
        assert!(!tap.records()[0].content_readable);
    }

    #[test]
    fn mixed_yield() {
        let mut tap = Wiretap::new();
        tap.observe(&pkt(1));
        tap.observe(&pkt(2).encrypt());
        assert_eq!(tap.content_yield(), 0.5);
    }

    #[test]
    fn cache_hits_after_first_fetch() {
        let mut c = Cache::new();
        assert!(!c.handle(&pkt(0x0b000000))); // miss, fills
        assert!(c.handle(&pkt(0x0b000000))); // hit
        assert!(!c.handle(&pkt(0x0c000000))); // different origin: miss
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 2);
        assert!((c.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn encrypted_requests_bypass_the_cache() {
        let mut c = Cache::new();
        c.handle(&pkt(0x0b000000)); // fill
        assert!(!c.handle(&pkt(0x0b000000).encrypt()));
        assert_eq!(c.opaque, 1);
    }

    #[test]
    fn empty_metrics() {
        assert_eq!(Wiretap::new().content_yield(), 0.0);
        assert_eq!(Cache::new().hit_rate(), 0.0);
    }
}

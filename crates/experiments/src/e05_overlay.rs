//! E5 — Overlays as a tussle tool (§V.A.4).
//!
//! Paper claim: "researchers propose even more indirect ways of getting
//! around provider-selected routing, such as exploiting hosts as
//! intermediate forwarding agents. (This kind of overlay network is a tool
//! in the tussle, certainly.)" — and the flip side raised for evaluation:
//! "whether economic distortion is greater in one or the other", since the
//! relay's providers carry transit they never sold.
//!
//! Measured: reachability under link failure and under policy blocking,
//! with and without a RON-style overlay, plus the uncompensated transit
//! hops the overlay pushes through the relay's access network.

use tussle_core::{ExperimentReport, Table};
use tussle_net::addr::{Address, AddressOrigin, Asn, Prefix};
use tussle_net::firewall::{Firewall, FirewallAction, FirewallRule, MatchOn};
use tussle_net::packet::{ports, Packet, Protocol};
use tussle_net::{Network, NodeId};
use tussle_routing::overlay::{Overlay, OverlayDelivery};
use tussle_sim::{SimRng, SimTime};

/// What stresses the direct path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stress {
    /// Nothing: the healthy baseline.
    None,
    /// The direct inter-AS link fails.
    LinkFailure,
    /// The destination's provider blocklists the source prefix.
    PolicyBlock,
}

impl Stress {
    fn label(self) -> &'static str {
        match self {
            Stress::None => "healthy",
            Stress::LinkFailure => "link failure",
            Stress::PolicyBlock => "policy block",
        }
    }
}

/// Outcome of one condition.
#[derive(Debug, Clone, PartialEq)]
pub struct OverlayOutcome {
    /// Delivery rate without the overlay.
    pub direct_rate: f64,
    /// Delivery rate with the overlay.
    pub overlay_rate: f64,
    /// Mean router hops consumed per delivered overlay packet (resource
    /// footprint).
    pub overlay_hops: f64,
    /// Hops carried by the relay's AS with no business relationship to the
    /// sender — the economic-distortion count.
    pub uncompensated_hops: u64,
}

struct World {
    net: Network,
    src: NodeId,
    overlay: Overlay,
    pkt: Packet,
    relay_as_nodes: Vec<NodeId>,
    direct_link: usize,
    dst_router: NodeId,
}

fn world() -> World {
    let mut net = Network::new();
    let src = net.add_host(Asn(1));
    let ra = net.add_router(Asn(1));
    let rb = net.add_router(Asn(2)); // destination's provider
    let dst = net.add_host(Asn(2));
    let rc = net.add_router(Asn(3)); // relay's provider
    let relay = net.add_host(Asn(3));
    net.connect(src, ra, SimTime::from_millis(2), 1_000_000_000);
    let direct = net.connect(ra, rb, SimTime::from_millis(10), 1_000_000_000);
    net.connect(rb, dst, SimTime::from_millis(2), 1_000_000_000);
    net.connect(ra, rc, SimTime::from_millis(10), 1_000_000_000);
    net.connect(rc, relay, SimTime::from_millis(2), 1_000_000_000);
    net.connect(rc, rb, SimTime::from_millis(10), 1_000_000_000);

    let src_addr =
        Address::in_prefix(Prefix::new(0x0a010000, 16), 1, AddressOrigin::ProviderAssigned(Asn(1)));
    let dst_addr =
        Address::in_prefix(Prefix::new(0x0b010000, 16), 1, AddressOrigin::ProviderAssigned(Asn(2)));
    let relay_addr =
        Address::in_prefix(Prefix::new(0x0c010000, 16), 1, AddressOrigin::ProviderAssigned(Asn(3)));
    net.node_mut(src).bind(src_addr);
    net.node_mut(dst).bind(dst_addr);
    net.node_mut(relay).bind(relay_addr);

    let dp = Prefix::new(0x0b010000, 16);
    let rp = Prefix::new(0x0c010000, 16);
    net.fib_mut(src).install(Prefix::DEFAULT, ra, 0);
    net.fib_mut(ra).install(dp, rb, 0);
    net.fib_mut(ra).install(rp, rc, 0);
    net.fib_mut(rb).install(dp, dst, 0);
    net.fib_mut(rc).install(rp, relay, 0);
    net.fib_mut(rc).install(dp, rb, 0);
    net.fib_mut(relay).install(Prefix::DEFAULT, rc, 0);
    // BGP policy: ra does NOT route to dst via rc (valley-free would forbid
    // transiting the relay's stub AS)... but rc itself can reach rb.

    let overlay = Overlay::new(vec![(relay, relay_addr)]);
    let pkt = Packet::new(src_addr, dst_addr, Protocol::Tcp, 1, ports::HTTP);
    World {
        net,
        src,
        overlay,
        pkt,
        relay_as_nodes: vec![rc, relay],
        direct_link: direct.index(),
        dst_router: rb,
    }
}

/// Run one stress condition over `n` packets.
pub fn run_condition(stress: Stress, n: usize, seed: u64) -> OverlayOutcome {
    let mut rng = SimRng::seed_from_u64(seed).fork("e05");
    let mut w = world();
    match stress {
        Stress::None => {}
        Stress::LinkFailure => {
            let id = w.net.links()[w.direct_link].id;
            w.net.link_mut(id).up = false;
        }
        Stress::PolicyBlock => {
            let mut fw = Firewall::transparent();
            fw.push(FirewallRule {
                matcher: MatchOn::SrcInPrefix(Prefix::new(0x0a010000, 16)),
                action: FirewallAction::Deny,
                installed_by: "AS2 policy".into(),
            });
            w.net.set_firewall(w.dst_router, fw);
        }
    }

    let mut direct_ok = 0usize;
    let mut overlay_ok = 0usize;
    let mut overlay_hops_total = 0usize;
    let mut uncompensated = 0u64;
    for _ in 0..n {
        // direct attempt
        if w.net.send(w.src, w.pkt.clone(), &mut rng).delivered {
            direct_ok += 1;
        }
        // overlay attempt
        let d = w.overlay.send(&mut w.net, w.src, w.pkt.clone(), &mut rng);
        if d.delivered() {
            overlay_ok += 1;
            overlay_hops_total += d.hops();
            if let OverlayDelivery::Relayed { first_leg, second_leg, .. } = &d {
                for leg in [first_leg, second_leg] {
                    uncompensated +=
                        leg.path.iter().filter(|nid| w.relay_as_nodes.contains(nid)).count() as u64;
                }
            }
        }
    }
    OverlayOutcome {
        direct_rate: direct_ok as f64 / n as f64,
        overlay_rate: overlay_ok as f64 / n as f64,
        overlay_hops: if overlay_ok > 0 {
            overlay_hops_total as f64 / overlay_ok as f64
        } else {
            0.0
        },
        uncompensated_hops: uncompensated,
    }
}

/// Run E5 and produce the report.
pub fn run(seed: u64) -> ExperimentReport {
    let n = 100;
    let mut table = Table::new(
        "Overlay resilience and its economic footprint (100 flows per condition)",
        &["direct delivery", "overlay delivery", "mean hops", "uncompensated relay-AS hops"],
    );
    let mut outcomes = Vec::new();
    for s in [Stress::None, Stress::LinkFailure, Stress::PolicyBlock] {
        let o = run_condition(s, n, seed);
        table.push_row(
            s.label(),
            &[
                format!("{:.2}", o.direct_rate),
                format!("{:.2}", o.overlay_rate),
                format!("{:.1}", o.overlay_hops),
                o.uncompensated_hops.to_string(),
            ],
        );
        outcomes.push(o);
    }
    let (healthy, fail, block) = (&outcomes[0], &outcomes[1], &outcomes[2]);
    let shape_holds = healthy.direct_rate > 0.99
        && healthy.uncompensated_hops == 0
        && fail.direct_rate < 0.01
        && fail.overlay_rate > 0.99
        && block.direct_rate < 0.01
        && block.overlay_rate > 0.99
        && fail.uncompensated_hops > 0
        && fail.overlay_hops > healthy.overlay_hops;

    ExperimentReport {
        id: "E5".into(),
        section: "V.A.4".into(),
        paper_claim: "Host-relay overlays recover reachability that provider routing or policy \
                      denies — at the cost of transit the relay's providers never agreed to \
                      carry (economic distortion)."
            .into(),
        summary: format!(
            "under link failure the overlay restores delivery from {:.0}% to {:.0}% while \
             pushing {} uncompensated hops through the relay's AS; under policy blocking \
             likewise ({:.0}% → {:.0}%).",
            fail.direct_rate * 100.0,
            fail.overlay_rate * 100.0,
            fail.uncompensated_hops,
            block.direct_rate * 100.0,
            block.overlay_rate * 100.0,
        ),
        table,
        shape_holds,
        cost: None,
        scoreboard: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_network_needs_no_overlay() {
        let o = run_condition(Stress::None, 20, 1);
        assert!(o.direct_rate > 0.99);
        assert_eq!(o.uncompensated_hops, 0);
    }

    #[test]
    fn overlay_survives_link_failure() {
        let o = run_condition(Stress::LinkFailure, 20, 1);
        assert!(o.direct_rate < 0.01);
        assert!(o.overlay_rate > 0.99);
        assert!(o.uncompensated_hops > 0);
    }

    #[test]
    fn overlay_evades_policy_blocks() {
        let o = run_condition(Stress::PolicyBlock, 20, 1);
        assert!(o.direct_rate < 0.01);
        assert!(o.overlay_rate > 0.99);
    }

    #[test]
    fn report_shape_holds() {
        let r = run(1);
        assert!(r.shape_holds, "{}", r.summary);
    }
}

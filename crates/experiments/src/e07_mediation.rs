//! E7 — Third-party mediation (§V.B).
//!
//! Paper claim: "most users do not trust many of the parties they actually
//! want to talk to ... we depend on third parties to mediate and enhance
//! the assurance that things are going to go right. Credit card companies
//! limit our liability to $50 ... there should be explicit ability to
//! select what third parties are used to mediate an interaction."
//!
//! Measured: a buyer population transacting with sellers of whom a fraction
//! are fraudulent, under no mediation, escrow mediation, reputation
//! mediation — and a final condition where buyers may *choose* between two
//! escrow providers with different fees, to show choice disciplining the
//! mediator market itself.

use tussle_core::{ExperimentReport, Table};
use tussle_sim::{Ctx, Engine, SimRng, SimTime};
use tussle_trust::mediator::{run_transaction, Mediator, ReputationBook, TransactionSetup};

/// Mediation regimes compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Regime {
    /// Caveat emptor.
    Unmediated,
    /// Single escrow provider.
    Escrow,
    /// Reputation service.
    Reputation,
    /// Two escrow providers; buyers pick the cheaper.
    EscrowChoice,
}

impl Regime {
    fn label(self) -> &'static str {
        match self {
            Regime::Unmediated => "no mediation",
            Regime::Escrow => "escrow ($50 cap)",
            Regime::Reputation => "reputation service",
            Regime::EscrowChoice => "escrow with choice",
        }
    }
}

/// Aggregate outcome of one regime.
#[derive(Debug, Clone, PartialEq)]
pub struct MediationOutcome {
    /// Total buyer net across all transactions (micro-currency).
    pub buyer_net_total: i64,
    /// Transactions actually attempted.
    pub attempted: usize,
    /// Fraudulent completions.
    pub frauds: usize,
    /// Total fees collected by mediators.
    pub fees: i64,
}

const FRAUD_RATE: f64 = 0.25;
const N_TRANSACTIONS: usize = 400;

fn setup() -> TransactionSetup {
    TransactionSetup { value: 1_500_000, price: 1_000_000, fraud_probability: 0.0 }
}

/// One regime's market state, threaded through its event chain.
struct RegimeTally {
    book: ReputationBook,
    fraudulent: Vec<bool>,
    done: usize,
    total: i64,
    attempted: usize,
    frauds: usize,
    fees: i64,
}

impl RegimeTally {
    /// Draw the seller population. Sellers recur so reputation can learn.
    fn new(rng: &mut SimRng) -> Self {
        let n_sellers = 40u64;
        let fraudulent: Vec<bool> = (0..n_sellers).map(|_| rng.chance(FRAUD_RATE)).collect();
        RegimeTally {
            book: ReputationBook::new(),
            fraudulent,
            done: 0,
            total: 0,
            attempted: 0,
            frauds: 0,
            fees: 0,
        }
    }
}

/// Settle `n` transactions under `regime`, mutating the tallies.
fn trade_batch(t: &mut RegimeTally, regime: Regime, n: usize, rng: &mut SimRng) {
    let cheap_escrow = Mediator::Escrow { liability_cap: 50_000, fee: 10_000 };
    let dear_escrow = Mediator::Escrow { liability_cap: 50_000, fee: 60_000 };
    let reputation = Mediator::Reputation { min_score: 0.4, fee: 5_000 };

    for i in t.done..t.done + n {
        let seller = (i as u64) % t.fraudulent.len() as u64;
        let mut s = setup();
        s.fraud_probability = if t.fraudulent[seller as usize] { 0.9 } else { 0.02 };
        let mediator = match regime {
            Regime::Unmediated => &Mediator::None,
            Regime::Escrow => &cheap_escrow,
            Regime::Reputation => &reputation,
            // buyers compare fee schedules and pick the cheaper — "explicit
            // ability to select what third parties are used"
            Regime::EscrowChoice => {
                if fee_of(&cheap_escrow) <= fee_of(&dear_escrow) {
                    &cheap_escrow
                } else {
                    &dear_escrow
                }
            }
        };
        let o = run_transaction(s, mediator, seller, &mut t.book, rng);
        t.total += o.buyer_net;
        t.fees += o.mediator_fee;
        if o.attempted {
            t.attempted += 1;
        }
        if o.defrauded {
            t.frauds += 1;
        }
    }
    t.done += n;
}

fn outcome_of(t: &RegimeTally) -> MediationOutcome {
    MediationOutcome {
        buyer_net_total: t.total,
        attempted: t.attempted,
        frauds: t.frauds,
        fees: t.fees,
    }
}

/// Run one regime (the pure loop the unit tests drive; [`run`] replays it
/// as paced engine-event bursts).
pub fn run_regime(regime: Regime, seed: u64) -> MediationOutcome {
    let mut rng = SimRng::seed_from_u64(seed).fork("e07");
    let mut t = RegimeTally::new(&mut rng);
    trade_batch(&mut t, regime, N_TRANSACTIONS, &mut rng);
    outcome_of(&t)
}

/// World for the engine-driven replay: settled outcomes per regime.
#[derive(Default)]
struct MediationWorld {
    outcomes: Vec<(Regime, MediationOutcome)>,
}

/// Transactions per burst event in the engine replay.
const BURST: usize = 80;

/// One paced transaction burst as an engine event, chaining to the next.
/// The market rolls come from a per-regime fork carried through the chain
/// (not `ctx.rng`): every regime faces the *same* seller population and
/// fraud rolls, the common-random-numbers pairing the regime comparison
/// depends on. The engine rng still paces the bursts.
fn run_burst(
    w: &mut MediationWorld,
    ctx: &mut Ctx<MediationWorld>,
    regime: Regime,
    mut t: RegimeTally,
    mut market_rng: SimRng,
) {
    ctx.span_enter(
        "e7.burst",
        Some("user"),
        &[("regime", regime.label()), ("done", &t.done.to_string())],
    );
    let n = BURST.min(N_TRANSACTIONS - t.done);
    trade_batch(&mut t, regime, n, &mut market_rng);
    if t.done < N_TRANSACTIONS {
        let lag = SimTime::from_micros(ctx.rng.range(100..5_000u64));
        ctx.trace_fields(
            "e7.pacing",
            Some("user"),
            &[("lag_us", &lag.as_micros().to_string())],
            format!("{} transactions settled; next burst follows", t.done),
        );
        ctx.span_exit(&[("frauds", &t.frauds.to_string())]);
        ctx.schedule_in(lag, move |w2: &mut MediationWorld, ctx2| {
            run_burst(w2, ctx2, regime, t, market_rng);
        });
    } else {
        let o = outcome_of(&t);
        ctx.trace_fields(
            "e7.settled",
            Some("provider"),
            &[("fees", &o.fees.to_string())],
            format!("{} market settles", regime.label()),
        );
        ctx.span_exit(&[("frauds", &t.frauds.to_string())]);
        w.outcomes.push((regime, o));
    }
}

fn fee_of(m: &Mediator) -> i64 {
    match m {
        Mediator::Escrow { fee, .. } | Mediator::Reputation { fee, .. } => *fee,
        Mediator::None => 0,
    }
}

/// Run E7 and produce the report. Each regime's 400 transactions run as a
/// causal chain of burst events on the shared engine clock.
pub fn run(seed: u64) -> ExperimentReport {
    let regimes = [Regime::Unmediated, Regime::Escrow, Regime::Reputation, Regime::EscrowChoice];
    let mut eng = Engine::new(MediationWorld::default(), seed);
    for (i, regime) in regimes.into_iter().enumerate() {
        // Each mediation regime is a root injection.
        eng.schedule_at(SimTime::from_millis(i as u64), move |w: &mut MediationWorld, ctx| {
            let mut market_rng = SimRng::seed_from_u64(seed).fork("e07");
            let t = RegimeTally::new(&mut market_rng);
            run_burst(w, ctx, regime, t, market_rng);
        });
    }
    eng.run_to_completion();

    let mut table = Table::new(
        "Commerce among strangers (400 transactions, 25% of sellers fraudulent)",
        &["buyer net ($)", "attempted", "frauds", "mediator fees ($)"],
    );
    let mut outcomes = Vec::new();
    for r in regimes {
        let o = eng
            .world
            .outcomes
            .iter()
            .find(|(rr, _)| *rr == r)
            .map(|(_, o)| o.clone())
            .expect("every regime settles");
        table.push_row(
            r.label(),
            &[
                format!("{:.2}", o.buyer_net_total as f64 / 1e6),
                o.attempted.to_string(),
                o.frauds.to_string(),
                format!("{:.2}", o.fees as f64 / 1e6),
            ],
        );
        outcomes.push(o);
    }
    let (raw, escrow, rep, choice) = (&outcomes[0], &outcomes[1], &outcomes[2], &outcomes[3]);
    let shape_holds = escrow.buyer_net_total > raw.buyer_net_total
        && rep.buyer_net_total > raw.buyer_net_total
        && rep.frauds < raw.frauds
        && choice.buyer_net_total >= escrow.buyer_net_total
        && choice.fees <= escrow.fees;

    ExperimentReport {
        id: "E7".into(),
        section: "V.B".into(),
        paper_claim: "Third-party mediation (liability caps, reputation) makes commerce among \
                      mutually distrusting parties viable; parties must be able to choose their \
                      mediators, which disciplines mediator pricing."
            .into(),
        summary: format!(
            "buyer net: unmediated ${:.0}, escrow ${:.0}, reputation ${:.0} (frauds {} → {}); \
             with mediator choice buyers do no worse and fees do not rise.",
            raw.buyer_net_total as f64 / 1e6,
            escrow.buyer_net_total as f64 / 1e6,
            rep.buyer_net_total as f64 / 1e6,
            raw.frauds,
            rep.frauds,
        ),
        table,
        shape_holds,
        cost: None,
        scoreboard: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mediation_beats_caveat_emptor() {
        let raw = run_regime(Regime::Unmediated, 1);
        let escrow = run_regime(Regime::Escrow, 1);
        assert!(escrow.buyer_net_total > raw.buyer_net_total);
    }

    #[test]
    fn reputation_reduces_fraud_volume() {
        let raw = run_regime(Regime::Unmediated, 2);
        let rep = run_regime(Regime::Reputation, 2);
        assert!(rep.frauds < raw.frauds, "rep {} vs raw {}", rep.frauds, raw.frauds);
        // and it refuses some transactions outright
        assert!(rep.attempted < raw.attempted);
    }

    #[test]
    fn choice_picks_the_cheap_mediator() {
        let one = run_regime(Regime::Escrow, 3);
        let choice = run_regime(Regime::EscrowChoice, 3);
        assert_eq!(one.fees, choice.fees, "buyers route around the expensive escrow");
    }

    #[test]
    fn report_shape_holds() {
        let r = run(1);
        assert!(r.shape_holds, "{}", r.summary);
    }
}

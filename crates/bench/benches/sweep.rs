//! Seed-sweep scaling bench: sequential vs. work-stealing parallel.
//!
//! Times the multi-seed sweep at one worker thread and at the machine's
//! available parallelism, then asserts the scaling headroom: on a
//! multi-core host the parallel sweep must beat sequential outright; on a
//! single core it must stay within a small constant overhead of it (the
//! work-stealing index and thread scope must be close to free).
//!
//! ```sh
//! cargo bench -p tussle-bench --bench sweep
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;
use tussle_experiments::{run_sweep, SweepConfig};

fn config(threads: Option<usize>) -> SweepConfig {
    SweepConfig {
        seeds: 8,
        base_seed: 1,
        // A spread of cheap and mid-weight experiments keeps the bench
        // fast while still giving the scheduler unequal job sizes.
        only: Some(vec!["E1".into(), "E5".into(), "E9".into(), "E14".into()]),
        threads,
    }
}

/// Best-of-N wall-clock of one full sweep, in nanoseconds.
fn best_of(n: usize, threads: Option<usize>) -> u128 {
    (0..n)
        .map(|_| {
            let start = Instant::now();
            black_box(run_sweep(black_box(&config(threads))).expect("sweep runs"));
            start.elapsed().as_nanos()
        })
        .min()
        .expect("at least one run")
}

fn bench_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("sweep");
    g.sample_size(10);
    g.bench_function("sequential_1_thread", |b| {
        b.iter(|| black_box(run_sweep(&config(Some(1))).expect("sweep runs")))
    });
    g.bench_function("parallel_auto", |b| {
        b.iter(|| black_box(run_sweep(&config(None)).expect("sweep runs")))
    });
    g.finish();

    // Scaling assertion, on best-of-3 to shave scheduler noise.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let sequential = best_of(3, Some(1));
    let parallel = best_of(3, None);
    let ratio = parallel as f64 / sequential as f64;
    println!(
        "sweep scaling: {cores} core(s), sequential {sequential} ns, \
         parallel {parallel} ns, ratio {ratio:.2}"
    );
    if cores > 1 {
        // Near-linear is the goal; "measurably faster" is the floor we
        // assert, leaving headroom for small grids and busy machines.
        assert!(
            ratio < 0.9,
            "parallel sweep not faster than sequential on {cores} cores (ratio {ratio:.2})"
        );
    } else {
        // One core: parallelism can't win, but its machinery must be cheap.
        assert!(ratio < 1.5, "work-stealing overhead too high on a single core (ratio {ratio:.2})");
    }
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);

//! Offline vendored `#[derive(Serialize, Deserialize)]` for the workspace's
//! serde facade.
//!
//! crates.io is unreachable in this build environment, so there is no `syn`
//! or `quote`; the macro walks the raw [`proc_macro::TokenStream`] instead.
//! It supports exactly the shapes this workspace uses:
//!
//! * structs with named fields, tuple structs (newtypes are transparent),
//!   unit structs;
//! * enums with unit, tuple and struct variants (optionally with explicit
//!   discriminants);
//! * no generic parameters and no `#[serde(...)]` attributes — both produce
//!   a compile error rather than silently wrong code.
//!
//! Wire shape (shared with the facade's manual impls): a named-field struct
//! becomes a map in declaration order; a unit variant becomes its name as a
//! string; a payload variant becomes a single-entry map from the variant
//! name to its payload.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` by lowering into the facade's `Value` tree.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Serialize)
}

/// Derive `serde::Deserialize` by lifting out of the facade's `Value` tree.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Which {
    Serialize,
    Deserialize,
}

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

fn expand(input: TokenStream, which: Which) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => {
            let msg = msg.replace('"', "\\\"");
            return format!("compile_error!(\"serde_derive (vendored): {msg}\");")
                .parse()
                .expect("compile_error tokens");
        }
    };
    let code = match (&item, which) {
        (Item::Struct { name, fields }, Which::Serialize) => gen_struct_ser(name, fields),
        (Item::Struct { name, fields }, Which::Deserialize) => gen_struct_de(name, fields),
        (Item::Enum { name, variants }, Which::Serialize) => gen_enum_ser(name, variants),
        (Item::Enum { name, variants }, Which::Deserialize) => gen_enum_de(name, variants),
    };
    code.parse().expect("generated impl tokens")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attributes(&tokens, &mut i)?;
    skip_visibility(&tokens, &mut i);

    let kw = ident_at(&tokens, i).ok_or("expected `struct` or `enum`")?;
    i += 1;
    let name = ident_at(&tokens, i).ok_or("expected a type name")?;
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("generic type `{name}` is not supported"));
    }

    match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::Struct { name, fields: Fields::Named(parse_named_fields(g.stream())?) })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::Struct { name, fields: Fields::Tuple(count_tuple_fields(g.stream())?) })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                Ok(Item::Struct { name, fields: Fields::Unit })
            }
            _ => Err(format!("unsupported struct body for `{name}`")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::Enum { name, variants: parse_variants(g.stream())? })
            }
            _ => Err(format!("expected enum body for `{name}`")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn ident_at(tokens: &[TokenTree], i: usize) -> Option<String> {
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

/// Skip `#[...]` attributes (doc comments included) starting at `*i`.
fn skip_attributes(tokens: &[TokenTree], i: &mut usize) -> Result<(), String> {
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        match tokens.get(*i + 1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                if g.stream().to_string().starts_with("serde") {
                    return Err("#[serde(...)] attributes are not supported".into());
                }
                *i += 2;
            }
            _ => return Err("malformed attribute".into()),
        }
    }
    Ok(())
}

/// Skip `pub`, `pub(crate)`, `pub(in ...)` starting at `*i`.
fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Advance past one type (or expression) until a comma at bracket depth 0.
fn skip_to_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle: i32 = 0;
    while let Some(t) = tokens.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle <= 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i)?;
        skip_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = ident_at(&tokens, i).ok_or("expected a field name")?;
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        fields.push(name);
        skip_to_comma(&tokens, &mut i);
        i += 1; // past the comma (or end)
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> Result<usize, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut count = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i)?;
        skip_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        count += 1;
        skip_to_comma(&tokens, &mut i);
        i += 1;
    }
    Ok(count)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i)?;
        if i >= tokens.len() {
            break;
        }
        let name = ident_at(&tokens, i).ok_or("expected a variant name")?;
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream())?)
            }
            _ => Fields::Unit,
        };
        // Skip an optional `= discriminant`, then the separating comma.
        skip_to_comma(&tokens, &mut i);
        i += 1;
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_struct_ser(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Named(names) => {
            let entries: Vec<String> = names
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> =
                (0..*n).map(|k| format!("::serde::Serialize::to_value(&self.{k})")).collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Fields::Unit => "::serde::Value::Null".to_string(),
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_struct_de(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Named(names) => {
            let inits: Vec<String> = names
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(v.field(\"{f}\")?)?"))
                .collect();
            format!("::std::result::Result::Ok({name} {{ {} }})", inits.join(", "))
        }
        Fields::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(v.item({k})?)?"))
                .collect();
            format!("::std::result::Result::Ok({name}({}))", items.join(", "))
        }
        Fields::Unit => format!("::std::result::Result::Ok({name})"),
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
}

fn payload_entry(tag: &str, payload: &str) -> String {
    format!("::serde::Value::Map(::std::vec![(::std::string::String::from(\"{tag}\"), {payload})])")
}

fn gen_enum_ser(name: &str, variants: &[Variant]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let tag = &v.name;
            match &v.fields {
                Fields::Unit => format!(
                    "{name}::{tag} => ::serde::Value::Str(::std::string::String::from(\"{tag}\"))"
                ),
                Fields::Tuple(1) => {
                    let payload = "::serde::Serialize::to_value(__f0)".to_string();
                    format!("{name}::{tag}(__f0) => {}", payload_entry(tag, &payload))
                }
                Fields::Tuple(n) => {
                    let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                    let items: Vec<String> = binds
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b})"))
                        .collect();
                    let payload = format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "));
                    format!(
                        "{name}::{tag}({}) => {}",
                        binds.join(", "),
                        payload_entry(tag, &payload)
                    )
                }
                Fields::Named(fields) => {
                    let binds = fields.join(", ");
                    let entries: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_value({f}))"
                            )
                        })
                        .collect();
                    let payload =
                        format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "));
                    format!("{name}::{tag} {{ {binds} }} => {}", payload_entry(tag, &payload))
                }
            }
        })
        .collect();
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ match self {{ {} }} }}\n\
         }}",
        arms.join(", ")
    )
}

fn gen_enum_de(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.fields, Fields::Unit))
        .map(|v| format!("\"{tag}\" => ::std::result::Result::Ok({name}::{tag})", tag = v.name))
        .collect();
    let payload_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| {
            let tag = &v.name;
            let build = match &v.fields {
                Fields::Unit => return None,
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}::{tag}(\
                     ::serde::Deserialize::from_value(__payload)?))"
                ),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Deserialize::from_value(__payload.item({k})?)?"))
                        .collect();
                    format!("::std::result::Result::Ok({name}::{tag}({}))", items.join(", "))
                }
                Fields::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(__payload.field(\"{f}\")?)?"
                            )
                        })
                        .collect();
                    format!("::std::result::Result::Ok({name}::{tag} {{ {} }})", inits.join(", "))
                }
            };
            Some(format!("\"{tag}\" => {{ {build} }}"))
        })
        .collect();
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 match v {{\n\
                     ::serde::Value::Str(__tag) => match __tag.as_str() {{\n\
                         {unit}\n\
                         __other => ::std::result::Result::Err(::serde::DeError(\n\
                             ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                         let (__tag, __payload) = &__entries[0];\n\
                         let _ = __payload;\n\
                         match __tag.as_str() {{\n\
                             {payload}\n\
                             __other => ::std::result::Result::Err(::serde::DeError(\n\
                                 ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                         }}\n\
                     }},\n\
                     __other => ::std::result::Result::Err(::serde::DeError(\n\
                         ::std::format!(\"expected {name} variant, found {{}}\", __other.kind()))),\n\
                 }}\n\
             }}\n\
         }}",
        unit = if unit_arms.is_empty() { String::new() } else { unit_arms.join(",\n") + "," },
        payload = if payload_arms.is_empty() {
            String::new()
        } else {
            payload_arms.join(",\n") + ","
        },
    )
}

//! Deterministic, schedulable fault plans.
//!
//! A [`FaultPlan`] is pure data: a time-ordered list of infrastructure
//! fault actions (link flaps, node crash/restore windows, partition
//! windows, intensity-scaled injector swaps). The sim crate knows nothing
//! about networks, so actions name links and nodes by raw index; the
//! substrate that owns the topology (`tussle-net::chaos`) interprets them
//! by scheduling one engine event per action. Because a plan is generated
//! from a seed and applied through the deterministic engine, the same
//! `(plan, seed)` pair always yields the same outcome sequence.

use crate::checkpoint::Snapshottable;
use crate::digest::{Fnv1a, RunDigest};
use crate::fault::FaultInjector;
use crate::rng::SimRng;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// One infrastructure fault, named by raw link/node index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultAction {
    /// Take a link administratively down.
    LinkDown(u32),
    /// Bring a link back up.
    LinkUp(u32),
    /// Crash a node: every incident link goes down until restore.
    CrashNode(u32),
    /// Restore a crashed node.
    RestoreNode(u32),
    /// Replace a link's fault injector (e.g. with an intensity-scaled one).
    SetLinkFaults {
        /// The link whose injector is replaced.
        link: u32,
        /// The replacement injector.
        injector: FaultInjector,
    },
}

/// A fault action with its scheduled (virtual) time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the action fires.
    pub at: SimTime,
    /// What happens.
    pub action: FaultAction,
}

/// A deterministic schedule of fault actions, kept sorted by time
/// (insertion order breaks ties, matching the engine's event order).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedule one action. Keeps the plan time-sorted; equal times keep
    /// insertion order.
    pub fn push(&mut self, at: SimTime, action: FaultAction) {
        let idx = self.events.partition_point(|e| e.at <= at);
        self.events.insert(idx, FaultEvent { at, action });
    }

    /// Builder form of [`FaultPlan::push`].
    pub fn with(mut self, at: SimTime, action: FaultAction) -> Self {
        self.push(at, action);
        self
    }

    /// Builder: flap a link (down at `down_at`, back up at `up_at`).
    pub fn link_flap(self, link: u32, down_at: SimTime, up_at: SimTime) -> Self {
        self.with(down_at, FaultAction::LinkDown(link)).with(up_at, FaultAction::LinkUp(link))
    }

    /// Builder: crash a node for the window `[from, until)`.
    pub fn node_outage(self, node: u32, from: SimTime, until: SimTime) -> Self {
        self.with(from, FaultAction::CrashNode(node)).with(until, FaultAction::RestoreNode(node))
    }

    /// Builder: take a set of links down together for `[from, until)` —
    /// a partition window when the links form a cut.
    pub fn partition(mut self, links: &[u32], from: SimTime, until: SimTime) -> Self {
        for &l in links {
            self.push(from, FaultAction::LinkDown(l));
        }
        for &l in links {
            self.push(until, FaultAction::LinkUp(l));
        }
        self
    }

    /// Generate a plan whose aggression scales with `intensity` in
    /// `[0, 1]` over a topology of `links` links and a run of `horizon`
    /// virtual time: every link gets an intensity-scaled injector at t=0,
    /// plus `⌈2 · intensity · links⌉` randomly placed link flaps whose
    /// outage windows lengthen with intensity. Intensity 0 (or zero
    /// links) is the empty plan. Deterministic in all four arguments.
    pub fn scaled(intensity: f64, links: u32, horizon: SimTime, seed: u64) -> Self {
        let i = intensity.clamp(0.0, 1.0);
        let mut plan = FaultPlan::new();
        if i == 0.0 || links == 0 || horizon == SimTime::ZERO {
            return plan;
        }
        let mut rng = SimRng::seed_from_u64(seed).fork("fault-plan");
        for link in 0..links {
            plan.push(
                SimTime::ZERO,
                FaultAction::SetLinkFaults { link, injector: FaultInjector::at_intensity(i) },
            );
        }
        let flaps = (2.0 * i * links as f64).ceil() as u32;
        let h = horizon.as_micros();
        // outage length: 5% of the horizon at intensity→0, 25% at 1
        let outage = ((0.05 + 0.20 * i) * h as f64) as u64;
        for _ in 0..flaps {
            let link = rng.range(0..links);
            let down = rng.range(0..h.saturating_sub(1).max(1));
            let up = down.saturating_add(outage.max(1)).min(h);
            plan = plan.link_flap(link, SimTime::from_micros(down), SimTime::from_micros(up));
        }
        plan
    }

    /// The scheduled events, in firing order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled actions.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl Snapshottable for FaultPlan {
    fn component(&self) -> &'static str {
        "fault-plan"
    }

    /// A plan is pure data, so its digest is just its serialized events.
    /// Firing progress is not recorded here: applied actions are engine
    /// events, so the replay frontier already pins how far the plan got.
    fn state_digest(&self) -> RunDigest {
        let mut h = Fnv1a::new();
        h.write_u64(self.events.len() as u64);
        h.write_str(&serde_json::to_string(&self.events).expect("fault events serialize"));
        RunDigest(h.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_keeps_time_order_with_stable_ties() {
        let plan = FaultPlan::new()
            .with(SimTime::from_millis(5), FaultAction::LinkDown(1))
            .with(SimTime::from_millis(1), FaultAction::LinkDown(0))
            .with(SimTime::from_millis(5), FaultAction::LinkUp(1));
        let times: Vec<u64> = plan.events().iter().map(|e| e.at.as_micros()).collect();
        assert_eq!(times, [1_000, 5_000, 5_000]);
        // equal times keep insertion order
        assert_eq!(plan.events()[1].action, FaultAction::LinkDown(1));
        assert_eq!(plan.events()[2].action, FaultAction::LinkUp(1));
    }

    #[test]
    fn builders_produce_paired_events() {
        let plan = FaultPlan::new()
            .link_flap(3, SimTime::from_millis(10), SimTime::from_millis(20))
            .node_outage(1, SimTime::from_millis(5), SimTime::from_millis(15))
            .partition(&[0, 1], SimTime::from_millis(1), SimTime::from_millis(2));
        assert_eq!(plan.len(), 8);
        assert!(!plan.is_empty());
        assert_eq!(plan.events()[0].action, FaultAction::LinkDown(0));
        assert_eq!(plan.events()[1].action, FaultAction::LinkDown(1));
    }

    #[test]
    fn scaled_zero_intensity_is_empty() {
        assert!(FaultPlan::scaled(0.0, 8, SimTime::from_secs(1), 1).is_empty());
        assert!(FaultPlan::scaled(0.5, 0, SimTime::from_secs(1), 1).is_empty());
        assert!(FaultPlan::scaled(0.5, 8, SimTime::ZERO, 1).is_empty());
    }

    #[test]
    fn scaled_is_deterministic_and_grows_with_intensity() {
        let a = FaultPlan::scaled(0.5, 6, SimTime::from_secs(2), 7);
        let b = FaultPlan::scaled(0.5, 6, SimTime::from_secs(2), 7);
        assert_eq!(a, b);
        let harsher = FaultPlan::scaled(1.0, 6, SimTime::from_secs(2), 7);
        assert!(harsher.len() > a.len(), "{} vs {}", harsher.len(), a.len());
        let other_seed = FaultPlan::scaled(0.5, 6, SimTime::from_secs(2), 8);
        assert_ne!(a, other_seed, "different seeds place different flaps");
    }

    #[test]
    fn scaled_events_stay_within_horizon() {
        let horizon = SimTime::from_secs(3);
        let plan = FaultPlan::scaled(0.9, 10, horizon, 42);
        for e in plan.events() {
            assert!(e.at <= horizon, "{:?} past the horizon", e);
        }
        // every link got an injector at t=0
        let injector_swaps = plan
            .events()
            .iter()
            .filter(|e| matches!(e.action, FaultAction::SetLinkFaults { .. }))
            .count();
        assert_eq!(injector_swaps, 10);
    }

    #[test]
    fn plans_serialize_round_trip() {
        let plan = FaultPlan::scaled(0.7, 4, SimTime::from_secs(1), 3);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }
}

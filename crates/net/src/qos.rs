//! Quality-of-service classification.
//!
//! §IV.A holds up the ToS-bit design as a worked example of modularizing
//! along tussle boundaries: keying service quality on *explicit* bits
//! "disentangles what application is running from what service is
//! desired". The alternative the paper warns against — inferring service
//! from well-known ports — couples the QoS tussle to the
//! application-control tussle, so that encryption (deployed for a
//! different fight) collaterally destroys QoS. Both classifiers are
//! implemented here; experiment E13 measures the collateral damage.

use crate::packet::Packet;
use serde::{Deserialize, Serialize};

/// The service class a packet is assigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ServiceClass {
    /// Ordinary best-effort forwarding.
    BestEffort,
    /// Low-latency premium treatment.
    Premium,
}

/// What the classifier keys on.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum QosKey {
    /// Explicit ToS bits at or above a threshold get premium — the design
    /// the paper endorses.
    TosBits {
        /// Minimum ToS value that earns premium treatment.
        premium_threshold: u8,
    },
    /// Specific visible destination ports get premium — the entangled
    /// design.
    WellKnownPorts {
        /// Ports considered premium applications.
        premium_ports: Vec<u16>,
    },
}

/// A QoS policy installed at a provider.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QosPolicy {
    /// Classification key.
    pub key: QosKey,
    /// Latency multiplier for premium traffic relative to best effort
    /// (e.g. 0.5 = half the queueing delay). Must be in `(0, 1]`.
    pub premium_speedup: f64,
}

impl QosPolicy {
    /// A ToS-keyed policy.
    pub fn tos_based(premium_threshold: u8, premium_speedup: f64) -> Self {
        assert!(premium_speedup > 0.0 && premium_speedup <= 1.0);
        QosPolicy { key: QosKey::TosBits { premium_threshold }, premium_speedup }
    }

    /// A port-keyed policy.
    pub fn port_based(premium_ports: Vec<u16>, premium_speedup: f64) -> Self {
        assert!(premium_speedup > 0.0 && premium_speedup <= 1.0);
        QosPolicy { key: QosKey::WellKnownPorts { premium_ports }, premium_speedup }
    }

    /// Classify a packet as seen by the provider.
    pub fn classify(&self, pkt: &Packet) -> ServiceClass {
        match &self.key {
            QosKey::TosBits { premium_threshold } => {
                if pkt.visible_tos() >= *premium_threshold {
                    ServiceClass::Premium
                } else {
                    ServiceClass::BestEffort
                }
            }
            QosKey::WellKnownPorts { premium_ports } => match pkt.visible_dst_port() {
                Some(p) if premium_ports.contains(&p) => ServiceClass::Premium,
                _ => ServiceClass::BestEffort,
            },
        }
    }

    /// The delay multiplier for a packet under this policy.
    pub fn delay_factor(&self, pkt: &Packet) -> f64 {
        match self.classify(pkt) {
            ServiceClass::Premium => self.premium_speedup,
            ServiceClass::BestEffort => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Address, AddressOrigin, Prefix};
    use crate::packet::{ports, Protocol};

    fn addr(v: u32) -> Address {
        Address::in_prefix(Prefix::new(v, 16), 1, AddressOrigin::ProviderIndependent)
    }

    fn voip() -> Packet {
        Packet::new(addr(1), addr(2), Protocol::Udp, 9000, ports::VOIP)
    }

    #[test]
    fn tos_policy_reads_explicit_bits() {
        let q = QosPolicy::tos_based(4, 0.5);
        assert_eq!(q.classify(&voip()), ServiceClass::BestEffort);
        assert_eq!(q.classify(&voip().with_tos(4)), ServiceClass::Premium);
        assert_eq!(q.delay_factor(&voip().with_tos(7)), 0.5);
    }

    #[test]
    fn tos_policy_survives_encryption() {
        // The paper's modularity claim: the QoS tussle is isolated from the
        // privacy tussle, so encrypting does not lose you premium service.
        let q = QosPolicy::tos_based(4, 0.5);
        assert_eq!(q.classify(&voip().with_tos(5).encrypt()), ServiceClass::Premium);
        assert_eq!(q.classify(&voip().with_tos(5).steganographic()), ServiceClass::Premium);
    }

    #[test]
    fn port_policy_reads_visible_port() {
        let q = QosPolicy::port_based(vec![ports::VOIP], 0.5);
        assert_eq!(q.classify(&voip()), ServiceClass::Premium);
        let web = Packet::new(addr(1), addr(2), Protocol::Tcp, 1, ports::HTTP);
        assert_eq!(q.classify(&web), ServiceClass::BestEffort);
    }

    #[test]
    fn port_policy_collapses_under_encryption() {
        // The entangled design: encrypt for privacy, lose your QoS.
        let q = QosPolicy::port_based(vec![ports::VOIP], 0.5);
        assert_eq!(q.classify(&voip().encrypt()), ServiceClass::BestEffort);
        assert_eq!(q.delay_factor(&voip().encrypt()), 1.0);
    }

    #[test]
    fn port_policy_invites_gaming() {
        // ...and invites the opposite distortion: any application can buy
        // premium treatment by masquerading on the premium port.
        let q = QosPolicy::port_based(vec![ports::HTTP], 0.5);
        let p2p_disguised =
            Packet::new(addr(1), addr(2), Protocol::Tcp, 1, ports::P2P).steganographic(); // presents as HTTP
        assert_eq!(q.classify(&p2p_disguised), ServiceClass::Premium);
    }

    #[test]
    #[should_panic]
    fn speedup_must_be_positive() {
        QosPolicy::tos_based(1, 0.0);
    }
}

//! E3 — Residential broadband access (§V.A.3).
//!
//! Paper claim: "A pessimistic outcome five years in the future is that the
//! average residential customer will have two choices ... because they
//! control the wires. ... fiber installed by a neutral party such as a
//! municipality can be a platform for competitors to provide higher level
//! services. ... Proposals that implement open access at this modularity
//! boundary are more likely to benefit the Internet as a whole ... But they
//! probably will not work to the advantage of those that invest in the
//! fiber."
//!
//! Measured: the same consumer population under (a) a vertically-integrated
//! wires monopoly, (b) the telco/cable duopoly, (c) municipal open-access
//! fiber with several retail ISPs buying regulated wholesale.

use tussle_core::{ExperimentReport, Table};
use tussle_econ::{Consumer, Market, MarketReport, Money, Provider};
use tussle_sim::{Engine, SimTime};

/// The three §V.A.3 market structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Structure {
    /// One vertically integrated wire owner.
    Monopoly,
    /// Telephone company vs. cable company.
    Duopoly,
    /// Municipal fiber at a regulated wholesale price + N retail ISPs.
    OpenAccessFiber {
        /// Number of retail ISPs on the fiber.
        retail_isps: usize,
    },
}

impl Structure {
    fn label(self) -> String {
        match self {
            Structure::Monopoly => "wires monopoly".into(),
            Structure::Duopoly => "telco/cable duopoly".into(),
            Structure::OpenAccessFiber { retail_isps } => {
                format!("open-access fiber + {retail_isps} ISPs")
            }
        }
    }
}

/// Outcome of one structure.
#[derive(Debug, Clone)]
pub struct BroadbandOutcome {
    /// Final market report.
    pub report: MarketReport,
    /// The wires owner's profit (the §V.A.3 "will not work to the
    /// advantage of those that invest in the fiber" number).
    pub wires_profit: Money,
}

fn consumers(n: u64, switching: Money) -> Vec<Consumer> {
    (0..n)
        .map(|id| Consumer {
            id,
            // heterogeneous willingness to pay: $40..$140
            value: Money::from_dollars(40 + (id as i64 * 100) / n as i64),
            usage_mb: 1000,
            runs_server: false,
            tunnels: false,
            switching_cost: switching,
            provider: None,
        })
        .collect()
}

/// Run one structure for `months`.
pub fn run_structure(structure: Structure, months: usize) -> BroadbandOutcome {
    // The wires cost $25/customer/month to operate whoever owns them.
    let wires_cost = Money::from_dollars(25);
    let providers = match structure {
        Structure::Monopoly => {
            vec![Provider::flat("wires-owner", Money::from_dollars(60), wires_cost)]
        }
        Structure::Duopoly => vec![
            Provider::flat("telco", Money::from_dollars(60), wires_cost),
            Provider::flat("cable", Money::from_dollars(60), wires_cost),
        ],
        Structure::OpenAccessFiber { retail_isps } => {
            // The municipality charges retail ISPs a regulated wholesale
            // rate of $28; each ISP adds its own $2 of retail cost. Retail
            // marginal cost is thus $30, slightly above the integrated
            // owner's — the paper's "less efficient technically" price of
            // modularity — but the retail layer is competitive.
            (0..retail_isps)
                .map(|i| {
                    Provider::flat(
                        &format!("retail-{i}"),
                        Money::from_dollars(45),
                        Money::from_dollars(30),
                    )
                })
                .collect()
        }
    };
    // The boundary placement sets the switching cost: changing *wires*
    // (monopoly/duopoly) means new equipment, new addresses, truck rolls;
    // changing a *retail ISP* on shared fiber is a billing change (§V.A.3,
    // the modularity argument).
    let switching = match structure {
        Structure::Monopoly | Structure::Duopoly => Money::from_dollars(250),
        Structure::OpenAccessFiber { .. } => Money::from_dollars(15),
    };
    let mut market = Market::new(consumers(40, switching), providers);
    let report = market.run(months);
    let wires_profit = match structure {
        // integrated owners keep the whole margin
        Structure::Monopoly | Structure::Duopoly => report.provider_profit,
        // the municipality earns wholesale minus wires cost on every
        // served line: $3/customer/month
        Structure::OpenAccessFiber { .. } => Money::from_dollars(3) * report.served as i64,
    };
    BroadbandOutcome { report, wires_profit }
}

/// World for the engine-driven replay: settled outcomes per structure.
#[derive(Default)]
struct BroadbandWorld {
    outcomes: Vec<(Structure, BroadbandOutcome)>,
}

/// Run E3 and produce the report. The market logic is pure; each structure
/// plays as a two-event causal chain (the wires are built, then — after a
/// seeded construction lag — the retail market settles) on the shared
/// engine clock.
pub fn run(seed: u64) -> ExperimentReport {
    let months = 80;
    let structures =
        [Structure::Monopoly, Structure::Duopoly, Structure::OpenAccessFiber { retail_isps: 4 }];
    let mut eng = Engine::new(BroadbandWorld::default(), seed);
    for (i, s) in structures.into_iter().enumerate() {
        // Each structure's build-out is a root injection.
        eng.schedule_at(SimTime::from_millis(i as u64), move |_w: &mut BroadbandWorld, ctx| {
            ctx.span_enter("e3.buildout", Some("isp"), &[("structure", &s.label())]);
            let lag = SimTime::from_micros(ctx.rng.range(100..5_000u64));
            ctx.trace_fields(
                "e3.wires",
                Some("isp"),
                &[("lag_us", &lag.as_micros().to_string())],
                format!("{} wires go in; the retail market follows", s.label()),
            );
            ctx.span_exit(&[]);
            ctx.schedule_in(lag, move |w2: &mut BroadbandWorld, ctx2| {
                ctx2.span_enter("e3.market", Some("user"), &[("structure", &s.label())]);
                let o = run_structure(s, months);
                ctx2.span_exit(&[("served", &o.report.served.to_string())]);
                w2.outcomes.push((s, o));
            });
        });
    }
    eng.run_to_completion();

    let mut table = Table::new(
        "Broadband market structure (40 consumers, WTP $40-$140)",
        &["avg price", "served", "consumer surplus", "wires-owner profit"],
    );
    let mut outcomes = Vec::new();
    for s in structures {
        let o = eng
            .world
            .outcomes
            .iter()
            .find(|(st, _)| *st == s)
            .map(|(_, o)| o.clone())
            .expect("every structure's market settles");
        table.push_row(
            &s.label(),
            &[
                o.report.avg_headline.to_string(),
                o.report.served.to_string(),
                o.report.consumer_surplus.to_string(),
                o.wires_profit.to_string(),
            ],
        );
        outcomes.push(o);
    }
    let (mono, duo, open) = (&outcomes[0], &outcomes[1], &outcomes[2]);
    // Shape: open access gives the lowest price, the most service and the
    // most consumer surplus — and the smallest return to the wires owner.
    let shape_holds = open.report.avg_headline < duo.report.avg_headline
        && duo.report.avg_headline < mono.report.avg_headline
        && open.report.served >= duo.report.served
        && open.report.consumer_surplus > mono.report.consumer_surplus
        && open.wires_profit < mono.wires_profit;

    ExperimentReport {
        id: "E3".into(),
        section: "V.A.3".into(),
        paper_claim: "Open access at the facilities/service modularity boundary benefits \
                      consumers (price, coverage) but not the party that invested in the fiber."
            .into(),
        summary: format!(
            "avg price: monopoly {} > duopoly {} > open access {}; wires profit: {} vs {} vs {}.",
            mono.report.avg_headline,
            duo.report.avg_headline,
            open.report.avg_headline,
            mono.wires_profit,
            duo.wires_profit,
            open.wires_profit,
        ),
        table,
        shape_holds,
        cost: None,
        scoreboard: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn competition_ladder_orders_prices() {
        let mono = run_structure(Structure::Monopoly, 60);
        let duo = run_structure(Structure::Duopoly, 60);
        let open = run_structure(Structure::OpenAccessFiber { retail_isps: 4 }, 60);
        assert!(open.report.avg_headline < duo.report.avg_headline);
        assert!(duo.report.avg_headline < mono.report.avg_headline);
    }

    #[test]
    fn fiber_owner_earns_least_under_open_access() {
        let mono = run_structure(Structure::Monopoly, 60);
        let open = run_structure(Structure::OpenAccessFiber { retail_isps: 4 }, 60);
        assert!(open.wires_profit < mono.wires_profit);
        assert!(open.wires_profit.is_positive(), "but it is not a charity");
    }

    #[test]
    fn report_shape_holds() {
        let r = run(1);
        assert!(r.shape_holds, "{}", r.summary);
    }
}

//! Cross-crate scenario: the whole §VII QoS story in one test.
//!
//! A provider considers deploying QoS. Without a payment protocol and
//! without user routing choice, it declines (the history we got). We then
//! build the paper's proposed world piece by piece — ToS-keyed
//! classification, a value-flow ledger, paid source routing — and watch
//! deployment happen and premium packets actually go faster, while the
//! privacy tussle (encryption) leaves the ToS design untouched.

use std::collections::BTreeMap;
use tussle::core::principles::value_flow_completeness;
use tussle::econ::{AccountId, InvestmentCase, Ledger, Money};
use tussle::net::addr::{Address, AddressOrigin, Asn, Prefix};
use tussle::net::packet::{ports, Packet, Protocol};
use tussle::net::{Network, QosPolicy};
use tussle::routing::sourceroute::{authorize_route, enumerate_paths};
use tussle::routing::AsGraph;
use tussle::sim::{SimRng, SimTime};

#[test]
fn the_qos_story_end_to_end() {
    // --- 1975-2002: no payment, no choice — no deployment -----------------
    let history = InvestmentCase {
        cost: Money::from_dollars(100),
        greed_revenue: Money::from_dollars(70),
        fear_loss: Money::from_dollars(70),
        value_transfer_exists: false,
        consumer_can_choose: false,
    };
    assert!(!history.deploys(), "the real Internet: QoS never deployed open");

    // --- the paper's design: both mechanisms ------------------------------
    let proposal =
        InvestmentCase { value_transfer_exists: true, consumer_can_choose: true, ..history };
    assert!(proposal.deploys(), "fear + greed together cover the cost");

    // --- build the deployed world -----------------------------------------
    let mut net = Network::new();
    let user = net.add_host(Asn(1));
    let isp = net.add_router(Asn(1));
    let transit = net.add_router(Asn(20));
    let dst_isp = net.add_router(Asn(2));
    let server = net.add_host(Asn(2));
    net.connect(user, isp, SimTime::from_millis(1), 1_000_000_000);
    net.connect(isp, transit, SimTime::from_millis(10), 1_000_000_000);
    net.connect(transit, dst_isp, SimTime::from_millis(10), 1_000_000_000);
    net.connect(dst_isp, server, SimTime::from_millis(1), 1_000_000_000);

    let ua =
        Address::in_prefix(Prefix::new(0x0a010000, 16), 1, AddressOrigin::ProviderAssigned(Asn(1)));
    let sa =
        Address::in_prefix(Prefix::new(0x0b010000, 16), 1, AddressOrigin::ProviderAssigned(Asn(2)));
    net.node_mut(user).bind(ua);
    net.node_mut(server).bind(sa);
    let dp = Prefix::new(0x0b010000, 16);
    net.fib_mut(user).install(Prefix::DEFAULT, isp, 0);
    net.fib_mut(isp).install(dp, transit, 0);
    net.fib_mut(transit).install(dp, dst_isp, 0);
    net.fib_mut(dst_isp).install(dp, server, 0);

    // the deployed mechanism: ToS-keyed premium at the transit
    net.set_qos(transit, QosPolicy::tos_based(4, 0.4));

    // --- the value flow: user pays for premium through the ledger ---------
    let mut ledger = Ledger::new();
    let user_acct = AccountId(1);
    let transit_acct = AccountId(20);
    ledger.open(user_acct);
    ledger.open(transit_acct);
    ledger.mint(user_acct, Money::from_dollars(10));
    ledger.transfer(user_acct, transit_acct, Money::from_dollars(2), "premium QoS AS20").unwrap();
    let required = [(transit_acct, Money::from_dollars(2))];
    assert_eq!(value_flow_completeness(&ledger, &required), 1.0, "the compensation flowed");

    // --- premium actually goes faster, even encrypted ----------------------
    let mut rng = SimRng::seed_from_u64(1);
    let base = Packet::new(ua, sa, Protocol::Udp, 9000, ports::VOIP);
    let slow = net.send(user, base.clone(), &mut rng).latency;
    let fast = net.send(user, base.clone().with_tos(5), &mut rng).latency;
    let fast_encrypted = net.send(user, base.clone().with_tos(5).encrypt(), &mut rng).latency;
    assert!(fast < slow, "paid premium must beat best effort");
    assert_eq!(fast, fast_encrypted, "the privacy tussle does not disturb ToS-keyed QoS");

    // --- and the choice half: the user could route to a competitor ---------
    let mut g = AsGraph::new();
    g.customer_of(Asn(1), Asn(20));
    g.customer_of(Asn(2), Asn(20));
    g.customer_of(Asn(1), Asn(30)); // a rival transit that also sells QoS
    g.customer_of(Asn(2), Asn(30));
    let asks = BTreeMap::from([(Asn(20), 2_000_000u64), (Asn(30), 1_500_000u64)]);
    let offers = enumerate_paths(&g, Asn(1), Asn(2), 4, &asks);
    assert!(offers.len() >= 2, "the user has a menu — competitive fear is real");
    assert!(offers[0].price <= offers[1].price, "prices are visible and comparable");
    let payments = BTreeMap::from([(Asn(30), 1_500_000u64)]);
    assert!(authorize_route(&g, &offers[0].path, &asks, &payments).is_ok());
}

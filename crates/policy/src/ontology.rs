//! The ontology: the vocabulary a policy language permits.
//!
//! "Implicitly, by imposing an ontology on what can be expressed, they
//! bound the tussle that can be expressed within defined limits" (§II.B).
//! The ontology declares which attributes exist and their types; the
//! evaluator refuses conditions that step outside it. The paper's caveat —
//! that an ontology "can be defeating, if it prevents the system from
//! capturing and acting on tussles that were not anticipated" — shows up
//! as an [`OntologyError::UnknownAttribute`] the moment an actor tries to
//! express a fight the language designers didn't foresee.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Declared type of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttrType {
    /// Integer-valued.
    Int,
    /// String-valued.
    Str,
    /// Boolean-valued.
    Bool,
}

impl AttrType {
    /// Does a value inhabit this type?
    pub fn admits(&self, v: &Value) -> bool {
        matches!(
            (self, v),
            (AttrType::Int, Value::Int(_))
                | (AttrType::Str, Value::Str(_))
                | (AttrType::Bool, Value::Bool(_))
        )
    }
}

/// An ontology violation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OntologyError {
    /// The attribute is not in the declared vocabulary — the tussle being
    /// expressed was not anticipated by the language designers.
    UnknownAttribute(String),
    /// The attribute exists but with a different type.
    TypeMismatch {
        /// Attribute name.
        attr: String,
        /// Declared type.
        expected: AttrType,
        /// Supplied value's type name.
        got: String,
    },
}

/// The declared attribute vocabulary.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Ontology {
    attrs: BTreeMap<String, AttrType>,
}

impl Ontology {
    /// Empty vocabulary (everything is out of bounds).
    pub fn new() -> Self {
        Ontology::default()
    }

    /// The vocabulary used by the networking experiments: connection
    /// attributes a middlebox policy may reason about.
    pub fn network() -> Self {
        let mut o = Ontology::new();
        o.declare("action", AttrType::Str);
        o.declare("dst_port", AttrType::Int);
        o.declare("src_port", AttrType::Int);
        o.declare("proto", AttrType::Str);
        o.declare("encrypted", AttrType::Bool);
        o.declare("identity", AttrType::Int);
        o.declare("anonymous", AttrType::Bool);
        o.declare("tos", AttrType::Int);
        o.declare("bytes", AttrType::Int);
        o
    }

    /// Declare (or re-declare) an attribute.
    pub fn declare(&mut self, name: &str, ty: AttrType) {
        self.attrs.insert(name.to_owned(), ty);
    }

    /// Look up an attribute's declared type.
    pub fn type_of(&self, name: &str) -> Result<AttrType, OntologyError> {
        self.attrs
            .get(name)
            .copied()
            .ok_or_else(|| OntologyError::UnknownAttribute(name.to_owned()))
    }

    /// Check that a value matches an attribute's declared type.
    pub fn check(&self, name: &str, value: &Value) -> Result<(), OntologyError> {
        let ty = self.type_of(name)?;
        if ty.admits(value) {
            Ok(())
        } else {
            Err(OntologyError::TypeMismatch {
                attr: name.to_owned(),
                expected: ty,
                got: value.type_name().into(),
            })
        }
    }

    /// Number of declared attributes — the size of the expressible space.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// Is the vocabulary empty?
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_and_lookup() {
        let mut o = Ontology::new();
        assert!(o.is_empty());
        o.declare("port", AttrType::Int);
        assert_eq!(o.type_of("port"), Ok(AttrType::Int));
        assert_eq!(o.len(), 1);
    }

    #[test]
    fn unknown_attribute_is_an_error() {
        let o = Ontology::network();
        assert_eq!(
            o.type_of("carbon_footprint"),
            Err(OntologyError::UnknownAttribute("carbon_footprint".into()))
        );
    }

    #[test]
    fn type_checking() {
        let o = Ontology::network();
        assert!(o.check("dst_port", &Value::Int(80)).is_ok());
        let err = o.check("dst_port", &Value::Str("eighty".into())).unwrap_err();
        assert_eq!(
            err,
            OntologyError::TypeMismatch {
                attr: "dst_port".into(),
                expected: AttrType::Int,
                got: "string".into()
            }
        );
    }

    #[test]
    fn admits() {
        assert!(AttrType::Bool.admits(&Value::Bool(false)));
        assert!(!AttrType::Bool.admits(&Value::Int(0)));
        assert!(!AttrType::Str.admits(&Value::List(vec![])));
    }

    #[test]
    fn network_vocabulary_is_bounded() {
        // The point of the exercise: the network ontology can talk about
        // ports and identities but NOT about, say, content licensing — that
        // tussle cannot be expressed here.
        let o = Ontology::network();
        assert!(o.type_of("dst_port").is_ok());
        assert!(o.type_of("copyright_license").is_err());
    }
}

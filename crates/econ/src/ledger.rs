//! The value-flow ledger.
//!
//! §IV.C: "In certain forms of tussle and run-time choice there is often an
//! exchange of value for service. ... Whatever the compensation, recognize
//! that it must flow, just as much as data must flow. ... If this 'value
//! flow' requires a protocol, design it."
//!
//! The ledger is the settlement layer of that protocol: named accounts,
//! recorded transfers with memos, and a conservation invariant (total
//! balance equals total minted) that property tests enforce. Payment for
//! source routes (§V.A.4), mediator fees (§V.B) and QoS settlements (§VII)
//! all move through here.

use crate::money::Money;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A ledger account.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct AccountId(pub u64);

// Lets `AccountId` key the serialized balance map as its raw number.
impl serde::StringKey for AccountId {
    fn to_key(&self) -> String {
        self.0.to_string()
    }
    fn from_key(key: &str) -> Result<Self, serde::DeError> {
        key.parse()
            .map(AccountId)
            .map_err(|_| serde::DeError(format!("invalid AccountId map key `{key}`")))
    }
}

/// One recorded transfer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transfer {
    /// Payer.
    pub from: AccountId,
    /// Payee.
    pub to: AccountId,
    /// Amount (always positive).
    pub amount: Money,
    /// Free-form reason, e.g. `"transit AS10"` or `"mediator fee"`.
    pub memo: String,
}

/// Why a ledger operation failed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LedgerError {
    /// The payer's balance is below the transfer amount.
    InsufficientFunds {
        /// Offending account.
        account: AccountId,
        /// Its balance.
        balance: Money,
        /// The attempted amount.
        requested: Money,
    },
    /// Transfers must move a positive amount.
    NonPositiveAmount,
    /// Account is not registered.
    UnknownAccount(AccountId),
}

/// A conserving ledger.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Ledger {
    balances: BTreeMap<AccountId, Money>,
    transfers: Vec<Transfer>,
    minted: Money,
}

impl Ledger {
    /// An empty ledger.
    pub fn new() -> Self {
        Ledger::default()
    }

    /// Register an account with a zero balance (idempotent).
    pub fn open(&mut self, id: AccountId) {
        self.balances.entry(id).or_insert(Money::ZERO);
    }

    /// Create money in an account (outside income, initial endowment).
    /// Tracked so conservation stays checkable.
    pub fn mint(&mut self, id: AccountId, amount: Money) {
        assert!(!amount.is_negative(), "cannot mint negative money");
        *self.balances.entry(id).or_insert(Money::ZERO) += amount;
        self.minted += amount;
    }

    /// Current balance (zero for unknown accounts).
    pub fn balance(&self, id: AccountId) -> Money {
        self.balances.get(&id).copied().unwrap_or(Money::ZERO)
    }

    /// Execute a transfer; records it on success.
    pub fn transfer(
        &mut self,
        from: AccountId,
        to: AccountId,
        amount: Money,
        memo: &str,
    ) -> Result<(), LedgerError> {
        if !amount.is_positive() {
            return Err(LedgerError::NonPositiveAmount);
        }
        if !self.balances.contains_key(&from) {
            return Err(LedgerError::UnknownAccount(from));
        }
        if !self.balances.contains_key(&to) {
            return Err(LedgerError::UnknownAccount(to));
        }
        let bal = self.balance(from);
        if bal < amount {
            return Err(LedgerError::InsufficientFunds {
                account: from,
                balance: bal,
                requested: amount,
            });
        }
        *self.balances.get_mut(&from).unwrap() -= amount;
        *self.balances.get_mut(&to).unwrap() += amount;
        self.transfers.push(Transfer { from, to, amount, memo: to_memo(memo) });
        Ok(())
    }

    /// All recorded transfers, oldest first.
    pub fn transfers(&self) -> &[Transfer] {
        &self.transfers
    }

    /// Transfers whose memo starts with `prefix` — "visible exchange of
    /// value" (§IV.C) means flows are auditable by purpose.
    pub fn transfers_for<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a Transfer> {
        self.transfers.iter().filter(move |t| t.memo.starts_with(prefix))
    }

    /// Total amount ever received by an account.
    pub fn total_received(&self, id: AccountId) -> Money {
        self.transfers.iter().filter(|t| t.to == id).map(|t| t.amount).sum()
    }

    /// Total amount ever paid by an account.
    pub fn total_paid(&self, id: AccountId) -> Money {
        self.transfers.iter().filter(|t| t.from == id).map(|t| t.amount).sum()
    }

    /// Conservation check: the sum of all balances equals everything
    /// minted. Transfers can move value but never create or destroy it.
    pub fn is_conserving(&self) -> bool {
        let total: Money = self.balances.values().copied().sum();
        total == self.minted
    }

    /// Total money in existence.
    pub fn total_minted(&self) -> Money {
        self.minted
    }
}

fn to_memo(memo: &str) -> String {
    memo.to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: AccountId = AccountId(1);
    const B: AccountId = AccountId(2);

    fn funded() -> Ledger {
        let mut l = Ledger::new();
        l.open(A);
        l.open(B);
        l.mint(A, Money::from_dollars(100));
        l
    }

    #[test]
    fn transfer_moves_value() {
        let mut l = funded();
        l.transfer(A, B, Money::from_dollars(30), "rent").unwrap();
        assert_eq!(l.balance(A), Money::from_dollars(70));
        assert_eq!(l.balance(B), Money::from_dollars(30));
        assert!(l.is_conserving());
    }

    #[test]
    fn insufficient_funds_rejected() {
        let mut l = funded();
        let err = l.transfer(A, B, Money::from_dollars(200), "too much").unwrap_err();
        assert!(matches!(err, LedgerError::InsufficientFunds { .. }));
        assert_eq!(l.balance(A), Money::from_dollars(100));
        assert!(l.transfers().is_empty());
    }

    #[test]
    fn non_positive_rejected() {
        let mut l = funded();
        assert_eq!(l.transfer(A, B, Money::ZERO, "no-op"), Err(LedgerError::NonPositiveAmount));
        assert_eq!(
            l.transfer(A, B, Money::from_dollars(-1), "neg"),
            Err(LedgerError::NonPositiveAmount)
        );
    }

    #[test]
    fn unknown_accounts_rejected() {
        let mut l = funded();
        let ghost = AccountId(99);
        assert_eq!(l.transfer(ghost, B, Money(1), "x"), Err(LedgerError::UnknownAccount(ghost)));
        assert_eq!(l.transfer(A, ghost, Money(1), "x"), Err(LedgerError::UnknownAccount(ghost)));
    }

    #[test]
    fn memo_audit_trail() {
        let mut l = funded();
        l.transfer(A, B, Money(10), "transit AS10").unwrap();
        l.transfer(A, B, Money(20), "transit AS20").unwrap();
        l.transfer(A, B, Money(30), "mediator fee").unwrap();
        assert_eq!(l.transfers_for("transit").count(), 2);
        assert_eq!(l.transfers_for("mediator").count(), 1);
        assert_eq!(l.total_received(B), Money(60));
        assert_eq!(l.total_paid(A), Money(60));
    }

    #[test]
    fn conservation_across_many_ops() {
        let mut l = Ledger::new();
        for i in 0..10 {
            l.open(AccountId(i));
            l.mint(AccountId(i), Money::from_dollars(10));
        }
        for i in 0..9 {
            l.transfer(AccountId(i), AccountId(i + 1), Money::from_dollars(5), "chain").unwrap();
        }
        assert!(l.is_conserving());
        assert_eq!(l.total_minted(), Money::from_dollars(100));
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_mint_panics() {
        let mut l = Ledger::new();
        l.mint(A, Money(-1));
    }

    #[test]
    fn open_is_idempotent() {
        let mut l = funded();
        l.open(A);
        assert_eq!(l.balance(A), Money::from_dollars(100));
    }
}

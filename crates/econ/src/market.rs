//! A retail access market with switching costs.
//!
//! §V.A: "The vector of fear is competition, which results when the
//! consumer has choice. ... To make competition viable, the consumer in a
//! market must have the ability to choose." This module makes that
//! sentence executable: consumers with willingness-to-pay choose among
//! providers, paying a *switching cost* to change (the §V.A.1 renumbering
//! burden); providers set prices by greedy best response. The equilibrium
//! markup over marginal cost is the lock-in measurement of experiment E1:
//! high switching cost ⇒ high markup, cheap renumbering ⇒ competition
//! disciplines price.

use crate::money::Money;
use crate::pricing::{PricingScheme, Usage};
use serde::{Deserialize, Serialize};

/// A retail customer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Consumer {
    /// Stable identifier (iteration order).
    pub id: u64,
    /// Monthly value the consumer places on service.
    pub value: Money,
    /// Monthly traffic in megabytes.
    pub usage_mb: u64,
    /// Whether the consumer runs a server.
    pub runs_server: bool,
    /// Whether the consumer tunnels to hide the server (§V.A.2).
    pub tunnels: bool,
    /// One-time cost of changing provider (renumbering pain, §V.A.1).
    pub switching_cost: Money,
    /// Current provider (index into the market's provider list).
    pub provider: Option<usize>,
}

impl Consumer {
    /// The usage a provider observes for billing.
    pub fn observed_usage(&self) -> Usage {
        Usage {
            megabytes: self.usage_mb,
            runs_server: self.runs_server,
            server_visible: self.runs_server && !self.tunnels,
        }
    }
}

/// A retail provider.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Provider {
    /// Display name.
    pub name: String,
    /// Current tariff.
    pub scheme: PricingScheme,
    /// Cost of serving one customer for one month.
    pub marginal_cost: Money,
    /// Service quality multiplier on consumer value (1.0 = baseline).
    pub quality: f64,
    /// Whether this provider participates in pricing (false freezes its
    /// tariff — e.g. a regulated municipal fiber operator, §V.A.3).
    pub adjusts_price: bool,
}

impl Provider {
    /// A flat-rate provider.
    pub fn flat(name: &str, monthly: Money, marginal_cost: Money) -> Self {
        Provider {
            name: name.to_owned(),
            scheme: PricingScheme::Flat { monthly },
            marginal_cost,
            quality: 1.0,
            adjusts_price: true,
        }
    }
}

/// Snapshot of one market round.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MarketReport {
    /// Consumers with service.
    pub served: usize,
    /// Consumers who found no positive-surplus offer.
    pub unserved: usize,
    /// Switches executed this round.
    pub switches: usize,
    /// Average headline price across providers.
    pub avg_headline: Money,
    /// Mean markup over marginal cost, as a fraction (0.25 = 25%).
    pub avg_markup: f64,
    /// Total consumer surplus this month.
    pub consumer_surplus: Money,
    /// Total provider profit this month.
    pub provider_profit: Money,
    /// Customers per provider.
    pub shares: Vec<usize>,
}

/// The market: consumers, providers, and the choice/pricing loop.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Market {
    /// All consumers.
    pub consumers: Vec<Consumer>,
    /// All providers.
    pub providers: Vec<Provider>,
    /// Months over which a one-time switching cost is amortized when
    /// compared against monthly surplus differences.
    pub amortization_months: i64,
    /// Price adjustment step for best-response pricing.
    pub price_step: Money,
}

impl Market {
    /// A market over the given participants.
    pub fn new(consumers: Vec<Consumer>, providers: Vec<Provider>) -> Self {
        Market { consumers, providers, amortization_months: 12, price_step: Money::from_dollars(2) }
    }

    /// Monthly surplus consumer `c` would get from provider `p`, *before*
    /// switching costs.
    fn gross_surplus(&self, c: &Consumer, p: &Provider) -> Money {
        let perceived = c.value.scale(p.quality);
        perceived - p.scheme.bill(c.observed_usage())
    }

    /// Monthly-equivalent surplus including the amortized switching cost if
    /// `p_idx` differs from the consumer's current provider.
    fn net_surplus(&self, c: &Consumer, p_idx: usize) -> Money {
        let gross = self.gross_surplus(c, &self.providers[p_idx]);
        if c.provider == Some(p_idx) {
            gross
        } else {
            gross - Money(c.switching_cost.micros() / self.amortization_months.max(1))
        }
    }

    /// The provider a consumer would pick right now (`None` = go unserved).
    fn best_choice(&self, c: &Consumer) -> Option<usize> {
        let mut best: Option<(usize, Money)> = None;
        for idx in 0..self.providers.len() {
            let s = self.net_surplus(c, idx);
            if !s.is_positive() && !s.micros().eq(&0) {
                // negative surplus: skip
                continue;
            }
            if s.is_negative() {
                continue;
            }
            match best {
                Some((_, bs)) if bs >= s => {}
                _ => best = Some((idx, s)),
            }
        }
        best.map(|(i, _)| i)
    }

    /// One choice phase: every consumer re-picks a provider. Returns the
    /// number of switches.
    pub fn choice_phase(&mut self) -> usize {
        let mut switches = 0;
        for i in 0..self.consumers.len() {
            let c = self.consumers[i].clone();
            let pick = self.best_choice(&c);
            if pick != c.provider {
                switches += 1;
            }
            self.consumers[i].provider = pick;
        }
        switches
    }

    /// Demand and profit provider `p_idx` would see if it charged
    /// `candidate`, with every other provider's tariff held fixed.
    fn profit_if(&self, p_idx: usize, candidate: &PricingScheme) -> Money {
        let mut profit = Money::ZERO;
        let mut trial = self.clone();
        trial.providers[p_idx].scheme = candidate.clone();
        for c in &self.consumers {
            if trial.best_choice(c) == Some(p_idx) {
                let revenue = candidate.bill(c.observed_usage());
                profit += revenue - trial.providers[p_idx].marginal_cost;
            }
        }
        profit
    }

    /// One pricing phase: each adjusting provider evaluates a small set of
    /// candidate moves — a step up, a step down, and (when competitors
    /// exist) undercutting the cheapest rival either marginally or by
    /// enough to overcome the average switching cost — and keeps the most
    /// profitable. The undercut candidates are what let Bertrand dynamics
    /// and Edgeworth cycles emerge instead of lockstep tacit collusion.
    pub fn pricing_phase(&mut self) {
        let avg_switch_monthly = if self.consumers.is_empty() {
            Money::ZERO
        } else {
            Money(
                self.consumers.iter().map(|c| c.switching_cost.micros()).sum::<i64>()
                    / self.consumers.len() as i64
                    / self.amortization_months.max(1),
            )
        };
        for idx in 0..self.providers.len() {
            if !self.providers[idx].adjusts_price {
                continue;
            }
            let current = self.providers[idx].scheme.clone();
            let rival_floor = self
                .providers
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != idx)
                .map(|(_, p)| p.scheme.headline())
                .min();
            let mut candidates = vec![
                adjust_scheme(&current, self.price_step),
                adjust_scheme(&current, -self.price_step),
            ];
            if let Some(floor) = rival_floor {
                let here = current.headline();
                // undercut the rival marginally...
                candidates.push(adjust_scheme(&current, floor - here - self.price_step));
                // ...or deeply enough that locked-in customers still move
                candidates.push(adjust_scheme(
                    &current,
                    floor - here - avg_switch_monthly - self.price_step,
                ));
            }
            let mut best = (self.profit_if(idx, &current), current.clone());
            for cand in candidates.into_iter().flatten() {
                let p = self.profit_if(idx, &cand);
                if p > best.0 {
                    best = (p, cand);
                }
            }
            self.providers[idx].scheme = best.1;
        }
    }

    /// Run `months` of alternating choice and pricing; returns the final
    /// month's report.
    pub fn run(&mut self, months: usize) -> MarketReport {
        use tussle_sim::{obs, SimTime};
        let observing = obs::active();
        if observing {
            let m = months.to_string();
            obs::span_enter(SimTime::ZERO, "econ.market", Some("provider"), &[("months", &m)]);
        }
        let mut last_switches = 0;
        for _ in 0..months {
            last_switches = self.choice_phase();
            self.pricing_phase();
        }
        // settle the final assignment before reporting
        last_switches += self.choice_phase();
        let report = self.report(last_switches);
        if observing {
            let sw = report.switches.to_string();
            obs::span_exit(SimTime::ZERO, &[("switches", &sw)]);
        }
        report
    }

    /// Snapshot the current state.
    pub fn report(&self, switches: usize) -> MarketReport {
        let mut shares = vec![0usize; self.providers.len()];
        let mut consumer_surplus = Money::ZERO;
        let mut provider_profit = Money::ZERO;
        let mut served = 0;
        for c in &self.consumers {
            if let Some(p) = c.provider {
                served += 1;
                shares[p] += 1;
                consumer_surplus += self.gross_surplus(c, &self.providers[p]).max(Money::ZERO);
                provider_profit += self.providers[p].scheme.bill(c.observed_usage())
                    - self.providers[p].marginal_cost;
            }
        }
        let avg_headline = if self.providers.is_empty() {
            Money::ZERO
        } else {
            Money(
                self.providers.iter().map(|p| p.scheme.headline().micros()).sum::<i64>()
                    / self.providers.len() as i64,
            )
        };
        let avg_markup = {
            let ms: Vec<f64> = self
                .providers
                .iter()
                .filter(|p| p.marginal_cost.is_positive())
                .map(|p| {
                    (p.scheme.headline().micros() as f64 - p.marginal_cost.micros() as f64)
                        / p.marginal_cost.micros() as f64
                })
                .collect();
            if ms.is_empty() {
                0.0
            } else {
                ms.iter().sum::<f64>() / ms.len() as f64
            }
        };
        MarketReport {
            served,
            unserved: self.consumers.len() - served,
            switches,
            avg_headline,
            avg_markup,
            consumer_surplus,
            provider_profit,
            shares,
        }
    }
}

/// Step a scheme's headline knob by `delta` (clamped at zero). Returns
/// `None` when the step is a no-op.
fn adjust_scheme(scheme: &PricingScheme, delta: Money) -> Option<PricingScheme> {
    fn bump(m: Money, d: Money) -> Money {
        (m + d).max(Money::ZERO)
    }
    let out = match scheme {
        PricingScheme::Flat { monthly } => PricingScheme::Flat { monthly: bump(*monthly, delta) },
        PricingScheme::PerByte { per_mb } => {
            PricingScheme::PerByte { per_mb: bump(*per_mb, Money(delta.micros() / 1000)) }
        }
        PricingScheme::TwoPart { monthly, per_mb } => {
            PricingScheme::TwoPart { monthly: bump(*monthly, delta), per_mb: *per_mb }
        }
        PricingScheme::ValuePricing { residential, business } => PricingScheme::ValuePricing {
            residential: bump(*residential, delta),
            business: *business,
        },
    };
    (out != *scheme).then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn consumers(n: u64, value: i64, switching: i64) -> Vec<Consumer> {
        (0..n)
            .map(|id| Consumer {
                id,
                value: Money::from_dollars(value),
                usage_mb: 1000,
                runs_server: false,
                tunnels: false,
                switching_cost: Money::from_dollars(switching),
                provider: None,
            })
            .collect()
    }

    fn flat_provider(name: &str, price: i64) -> Provider {
        Provider::flat(name, Money::from_dollars(price), Money::from_dollars(20))
    }

    #[test]
    fn consumers_pick_the_cheapest_equivalent_offer() {
        let mut m = Market::new(
            consumers(10, 100, 0),
            vec![flat_provider("cheap", 30), flat_provider("dear", 60)],
        );
        m.choice_phase();
        let r = m.report(0);
        assert_eq!(r.shares, vec![10, 0]);
        assert_eq!(r.served, 10);
    }

    #[test]
    fn monopolist_prices_toward_willingness_to_pay() {
        let mut m = Market::new(consumers(20, 100, 0), vec![flat_provider("mono", 30)]);
        let r = m.run(100);
        // price should climb close to consumer value ($100)
        assert!(
            r.avg_headline > Money::from_dollars(80),
            "monopoly price {} should approach $100",
            r.avg_headline
        );
    }

    #[test]
    fn competition_disciplines_price() {
        let duo = {
            let mut m = Market::new(
                consumers(20, 100, 0),
                vec![flat_provider("a", 80), flat_provider("b", 80)],
            );
            m.run(100)
        };
        let mono = {
            let mut m = Market::new(consumers(20, 100, 0), vec![flat_provider("a", 80)]);
            m.run(100)
        };
        assert!(
            duo.avg_headline < mono.avg_headline,
            "duopoly {} must undercut monopoly {}",
            duo.avg_headline,
            mono.avg_headline
        );
    }

    #[test]
    fn switching_costs_sustain_markup() {
        // Same duopoly, but consumers face a heavy renumbering cost.
        let frictionless = {
            let mut m = Market::new(
                consumers(20, 100, 0),
                vec![flat_provider("a", 60), flat_provider("b", 60)],
            );
            m.run(100)
        };
        let locked_in = {
            let mut m = Market::new(
                consumers(20, 100, 600),
                vec![flat_provider("a", 60), flat_provider("b", 60)],
            );
            m.run(100)
        };
        assert!(
            locked_in.avg_headline > frictionless.avg_headline,
            "lock-in {} must exceed frictionless {}",
            locked_in.avg_headline,
            frictionless.avg_headline
        );
    }

    #[test]
    fn overpriced_consumers_go_unserved() {
        let mut m = Market::new(consumers(5, 10, 0), vec![flat_provider("dear", 50)]);
        m.choice_phase();
        let r = m.report(0);
        assert_eq!(r.served, 0);
        assert_eq!(r.unserved, 5);
    }

    #[test]
    fn quality_can_beat_price() {
        let mut premium = flat_provider("premium", 50);
        premium.quality = 1.5;
        let budget = flat_provider("budget", 40);
        let mut m = Market::new(consumers(10, 100, 0), vec![premium, budget]);
        m.choice_phase();
        let r = m.report(0);
        // premium surplus: 150-50=100 beats budget 100-40=60
        assert_eq!(r.shares, vec![10, 0]);
    }

    #[test]
    fn value_pricing_collects_more_from_visible_servers() {
        let mut cs = consumers(2, 200, 0);
        cs[0].runs_server = true; // visible server
        cs[1].runs_server = true;
        cs[1].tunnels = true; // hidden server
        let vp = Provider {
            name: "vp".into(),
            scheme: PricingScheme::ValuePricing {
                residential: Money::from_dollars(40),
                business: Money::from_dollars(120),
            },
            marginal_cost: Money::from_dollars(20),
            quality: 1.0,
            adjusts_price: false,
        };
        let mut m = Market::new(cs, vec![vp]);
        m.choice_phase();
        let r = m.report(0);
        // one pays 120, one pays 40 => profit = (120-20)+(40-20) = 120
        assert_eq!(r.provider_profit, Money::from_dollars(120));
    }

    #[test]
    fn frozen_tariffs_do_not_move() {
        let mut p = flat_provider("regulated", 25);
        p.adjusts_price = false;
        let mut m = Market::new(consumers(10, 100, 0), vec![p]);
        let r = m.run(50);
        assert_eq!(r.avg_headline, Money::from_dollars(25));
    }

    #[test]
    fn report_counts_are_consistent() {
        let mut m =
            Market::new(consumers(7, 100, 0), vec![flat_provider("a", 30), flat_provider("b", 30)]);
        let r = m.run(10);
        assert_eq!(r.served + r.unserved, 7);
        assert_eq!(r.shares.iter().sum::<usize>(), r.served);
    }
}

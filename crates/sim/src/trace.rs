//! Bounded in-memory trace log.
//!
//! The paper's "design what happens when transparency fails" principle
//! demands that the substrate can always explain what it did. The trace is
//! a bounded ring of `(time, topic, message)` entries that scenario code and
//! diagnostics (traceroute-style blame reports) read back.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One trace record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Virtual time at which the entry was recorded.
    pub time: SimTime,
    /// Subsystem topic, e.g. `"net.forward"` or `"econ.churn"`.
    pub topic: String,
    /// Human-readable message.
    pub message: String,
}

/// A bounded ring buffer of trace entries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trace {
    entries: VecDeque<TraceEntry>,
    capacity: usize,
    enabled: bool,
    dropped: u64,
}

impl Default for Trace {
    fn default() -> Self {
        Trace::with_capacity(4096)
    }
}

impl Trace {
    /// A trace ring holding at most `capacity` entries.
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            entries: VecDeque::with_capacity(capacity.min(4096)),
            capacity: capacity.max(1),
            enabled: true,
            dropped: 0,
        }
    }

    /// Disable recording (records are silently discarded).
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Re-enable recording.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Record an entry; evicts the oldest when full.
    pub fn record(&mut self, time: SimTime, topic: &str, message: impl Into<String>) {
        if !self.enabled {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(TraceEntry {
            time,
            topic: topic.to_owned(),
            message: message.into(),
        });
    }

    /// All retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Entries whose topic starts with `prefix`.
    pub fn with_topic<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a TraceEntry> {
        self.entries.iter().filter(move |e| e.topic.starts_with(prefix))
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries evicted due to capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Clear all retained entries (the dropped count persists).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut t = Trace::with_capacity(8);
        t.record(SimTime::from_micros(1), "a", "first");
        t.record(SimTime::from_micros(2), "b", "second");
        let msgs: Vec<_> = t.entries().map(|e| e.message.as_str()).collect();
        assert_eq!(msgs, ["first", "second"]);
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut t = Trace::with_capacity(2);
        t.record(SimTime::ZERO, "x", "1");
        t.record(SimTime::ZERO, "x", "2");
        t.record(SimTime::ZERO, "x", "3");
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 1);
        let msgs: Vec<_> = t.entries().map(|e| e.message.as_str()).collect();
        assert_eq!(msgs, ["2", "3"]);
    }

    #[test]
    fn topic_filter_uses_prefix() {
        let mut t = Trace::default();
        t.record(SimTime::ZERO, "net.forward", "f");
        t.record(SimTime::ZERO, "net.drop", "d");
        t.record(SimTime::ZERO, "econ.churn", "c");
        assert_eq!(t.with_topic("net.").count(), 2);
        assert_eq!(t.with_topic("econ").count(), 1);
        assert_eq!(t.with_topic("zzz").count(), 0);
    }

    #[test]
    fn disable_discards() {
        let mut t = Trace::default();
        t.disable();
        t.record(SimTime::ZERO, "x", "hidden");
        assert!(t.is_empty());
        t.enable();
        t.record(SimTime::ZERO, "x", "seen");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn clear_keeps_dropped_count() {
        let mut t = Trace::with_capacity(1);
        t.record(SimTime::ZERO, "x", "1");
        t.record(SimTime::ZERO, "x", "2");
        assert_eq!(t.dropped(), 1);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 1);
    }
}

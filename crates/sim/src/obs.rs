//! Ambient per-run observation: cost counters, rolling digests, profiling.
//!
//! Experiments construct their engines internally, so callers that want to
//! know what a run *cost* (events processed, rng draws, per-hop forwards)
//! or what it *did* (the structured trace stream) cannot reach inside. This
//! module provides a thread-local observation scope: wrap a run in
//! [`begin`], and every instrumented operation on the same thread — trace
//! records, metric writes, rng draws, per-hop forwards, engine events — is
//! counted and folded into a rolling [`RunDigest`]. [`ObsGuard::finish`]
//! returns the [`RunRecord`].
//!
//! Three modes, mirroring the zero-cost-when-disabled contract:
//!
//! * **Off** — every hook is a single thread-local byte load and a branch.
//! * **Cost** — counters + rolling digest. No wall clocks, no allocation
//!   per hook beyond hashing; what sweeps and chaos campaigns use.
//! * **Profile** — additionally captures a bounded ring of trace entries
//!   and per-topic virtual-time/wall-time attribution for
//!   `tussle-cli profile` / `tussle-cli trace`.
//!
//! Wall-clock fields are **never** folded into the digest — they are
//! nondeterministic by nature and the digest is the determinism check.

use crate::digest::{Fnv1a, RunDigest};
use crate::event::EventId;
use crate::metrics::{Histogram, MetricsSnapshot, RunSeries, TimeSeries};
use crate::provenance::ProvenanceNode;
use crate::time::SimTime;
use crate::trace::{SpanKind, TraceEntry};
use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, VecDeque};
use std::time::Instant;

/// How much the ambient scope observes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ObsMode {
    /// No scope active; hooks are a byte-load and a branch.
    Off,
    /// Count operations and fold them into a rolling digest.
    Cost,
    /// `Cost` plus trace-entry capture and per-topic time attribution.
    Profile,
}

const MODE_OFF: u8 = 0;
const MODE_COST: u8 = 1;
const MODE_PROFILE: u8 = 2;

/// How many trace entries the Profile-mode ring retains.
const PROFILE_RING_CAPACITY: usize = 65_536;

/// Per-topic cost attribution (Profile mode only).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopicCost {
    /// Engine events (or substrate spans) attributed to this topic.
    pub events: u64,
    /// Virtual time attributed to this topic, in microseconds.
    pub virtual_micros: u64,
    /// Wall time attributed to this topic, in nanoseconds. Nondeterministic;
    /// excluded from digests and from serialized campaign output.
    pub wall_nanos: u64,
}

/// The scoreboard lane for work carrying no stakeholder annotation.
pub const UNATTRIBUTED: &str = "(unattributed)";

/// Per-stakeholder attribution, folded streaming from the trace stream in
/// both Cost and Profile modes. Every field is deterministic (virtual time
/// only), and the fold is purely derived from entries the digest already
/// covers — capturing it can never move a [`RunDigest`], exactly like wall
/// time and series.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StakeholderCost {
    /// Trace entries attributed to this stakeholder (span edges + events).
    pub entries: u64,
    /// Spans entered under this stakeholder's lane.
    pub spans: u64,
    /// Point events attributed to this stakeholder.
    pub events: u64,
    /// Virtual time spent inside this stakeholder's spans, in microseconds.
    pub virtual_micros: u64,
}

impl StakeholderCost {
    /// Merge another lane's tallies into this one (all fields add).
    pub fn merge(&mut self, other: &StakeholderCost) {
        self.entries += other.entries;
        self.spans += other.spans;
        self.events += other.events;
        self.virtual_micros += other.virtual_micros;
    }
}

/// Everything one observation scope saw.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunRecord {
    /// Engine events dispatched.
    pub events: u64,
    /// Randomness-consuming rng calls.
    pub rng_draws: u64,
    /// Per-hop packet forwards in `tussle-net`.
    pub forwards: u64,
    /// Span-enter edges recorded.
    pub spans_entered: u64,
    /// Span-exit edges recorded.
    pub spans_exited: u64,
    /// Total structured trace entries recorded (events + span edges).
    pub trace_entries: u64,
    /// Rolling digest over the trace stream, metric writes and the folded
    /// counters above. Equal digests ⇒ the runs did the same work.
    pub digest: RunDigest,
    /// Total wall time of the scope, in nanoseconds. Nondeterministic;
    /// never part of `digest`.
    pub wall_nanos: u64,
    /// Per-topic attribution (empty unless the scope ran in Profile mode).
    pub topics: BTreeMap<String, TopicCost>,
    /// Captured trace entries, oldest first (Profile mode only; bounded).
    pub ring: Vec<TraceEntry>,
    /// Entries evicted from the Profile ring due to capacity.
    pub ring_dropped: u64,
    /// Causal provenance of dispatched events, oldest first (Profile mode
    /// only; bounded). Never digested — ids are positional bookkeeping.
    pub provenance: Vec<ProvenanceNode>,
    /// Provenance nodes evicted due to capacity.
    pub provenance_dropped: u64,
    /// Rolling digest value *after each absorbed trace entry* (Profile
    /// mode only): `prefix_digests[i]` is the digest state once entry `i`
    /// was absorbed. Two runs' streams first diverge at the smallest index
    /// where these differ — the binary-search key for `tussle-cli diff`.
    pub prefix_digests: Vec<u64>,
    /// Windowed virtual-time activity series (events / forwards / faults).
    /// Never digested — a derived projection of already-digested streams.
    pub series: RunSeries,
    /// Per-stakeholder attribution (Cost and Profile modes), keyed by the
    /// stakeholder annotation on trace entries — [`UNATTRIBUTED`] collects
    /// the rest. Deterministic; never digested (derived projection).
    pub stakeholders: BTreeMap<String, StakeholderCost>,
    /// Accumulated metrics written inside the scope (Profile mode only):
    /// counters sum, gauges keep the last write, histograms summarize.
    /// Every underlying write was already folded into the digest by the
    /// metric hooks, so this accumulation adds nothing to the hash.
    pub metrics: MetricsSnapshot,
}

struct ObsState {
    mode: ObsMode,
    events: u64,
    rng_draws: u64,
    forwards: u64,
    spans_entered: u64,
    spans_exited: u64,
    trace_entries: u64,
    hasher: Fnv1a,
    started: Instant,
    topics: BTreeMap<String, TopicCost>,
    ring: VecDeque<TraceEntry>,
    ring_dropped: u64,
    /// Open ambient spans: (topic, enter virtual micros, enter instant).
    open: Vec<(String, u64, Instant)>,
    /// The event currently being dispatched (stamped onto ambient entries).
    current_event: Option<EventId>,
    provenance: VecDeque<ProvenanceNode>,
    provenance_dropped: u64,
    prefix: Vec<u64>,
    series_events: TimeSeries,
    series_forwards: TimeSeries,
    series_faults: TimeSeries,
    /// Per-stakeholder tallies, folded streaming in `absorb`.
    stakeholders: BTreeMap<String, StakeholderCost>,
    /// Parallel lane stack over the span stream: (resolved lane, enter
    /// virtual micros). Nested spans without their own stakeholder
    /// annotation inherit the enclosing lane.
    stake_stack: Vec<(String, u64)>,
    /// Accumulated metric writes (Profile mode only).
    acc_counters: BTreeMap<String, u64>,
    acc_gauges: BTreeMap<String, f64>,
    acc_hists: BTreeMap<String, Histogram>,
}

impl ObsState {
    fn new(mode: ObsMode) -> Self {
        ObsState {
            mode,
            events: 0,
            rng_draws: 0,
            forwards: 0,
            spans_entered: 0,
            spans_exited: 0,
            trace_entries: 0,
            hasher: Fnv1a::new(),
            started: Instant::now(),
            topics: BTreeMap::new(),
            ring: VecDeque::new(),
            ring_dropped: 0,
            open: Vec::new(),
            current_event: None,
            provenance: VecDeque::new(),
            provenance_dropped: 0,
            prefix: Vec::new(),
            series_events: TimeSeries::new(),
            series_forwards: TimeSeries::new(),
            series_faults: TimeSeries::new(),
            stakeholders: BTreeMap::new(),
            stake_stack: Vec::new(),
            acc_counters: BTreeMap::new(),
            acc_gauges: BTreeMap::new(),
            acc_hists: BTreeMap::new(),
        }
    }

    fn into_record(mut self) -> RunRecord {
        // Fold the counters into the digest so "same trace, different
        // amount of untraced work" still distinguishes runs. Wall times
        // stay out: they are nondeterministic.
        self.hasher.write_u8(0xC0);
        self.hasher.write_u64(self.events);
        self.hasher.write_u64(self.rng_draws);
        self.hasher.write_u64(self.forwards);
        self.hasher.write_u64(self.spans_entered);
        self.hasher.write_u64(self.spans_exited);
        self.hasher.write_u64(self.trace_entries);
        RunRecord {
            events: self.events,
            rng_draws: self.rng_draws,
            forwards: self.forwards,
            spans_entered: self.spans_entered,
            spans_exited: self.spans_exited,
            trace_entries: self.trace_entries,
            digest: RunDigest(self.hasher.finish()),
            wall_nanos: self.started.elapsed().as_nanos() as u64,
            topics: self.topics,
            ring: self.ring.into_iter().collect(),
            ring_dropped: self.ring_dropped,
            provenance: self.provenance.into_iter().collect(),
            provenance_dropped: self.provenance_dropped,
            prefix_digests: self.prefix,
            series: RunSeries {
                events: self.series_events.summary(),
                forwards: self.series_forwards.summary(),
                faults: self.series_faults.summary(),
            },
            stakeholders: self.stakeholders,
            metrics: MetricsSnapshot {
                counters: self.acc_counters,
                gauges: self.acc_gauges,
                histograms: self.acc_hists.into_iter().map(|(k, h)| (k, h.summary())).collect(),
                series: BTreeMap::new(),
            },
        }
    }

    fn absorb(&mut self, entry: &TraceEntry) {
        entry.absorb_into(&mut self.hasher);
        self.trace_entries += 1;
        // Stakeholder attribution: a parallel lane stack over the span
        // stream. The fold is derived from entries the hasher already
        // absorbed, so none of this touches the digest. Every entry lands
        // in exactly one lane, so per-lane `entries` sum to
        // `trace_entries` — the conservation invariant the scoreboard
        // proptests pin.
        match entry.kind {
            SpanKind::Enter => {
                self.spans_entered += 1;
                let lane = entry
                    .stakeholder
                    .clone()
                    .or_else(|| self.stake_stack.last().map(|(l, _)| l.clone()))
                    .unwrap_or_else(|| UNATTRIBUTED.to_owned());
                let c = self.stakeholders.entry(lane.clone()).or_default();
                c.entries += 1;
                c.spans += 1;
                self.stake_stack.push((lane, entry.time.as_micros()));
            }
            SpanKind::Exit => {
                self.spans_exited += 1;
                // Exit entries never carry a stakeholder (see
                // `trace::Trace::span_exit`); the matching Enter's lane
                // owns the elapsed virtual time. A stray exit (possible in
                // hand-built streams) lands in the unattributed lane with
                // no elapsed time.
                let (lane, entered) = self
                    .stake_stack
                    .pop()
                    .unwrap_or_else(|| (UNATTRIBUTED.to_owned(), entry.time.as_micros()));
                let c = self.stakeholders.entry(lane).or_default();
                c.entries += 1;
                c.virtual_micros += entry.time.as_micros().saturating_sub(entered);
            }
            SpanKind::Event => {
                let lane = entry
                    .stakeholder
                    .as_deref()
                    .or_else(|| self.stake_stack.last().map(|(l, _)| l.as_str()))
                    .unwrap_or(UNATTRIBUTED);
                // Steady state stays allocation-free: only the first entry
                // per lane clones the key.
                if !self.stakeholders.contains_key(lane) {
                    self.stakeholders.insert(lane.to_owned(), StakeholderCost::default());
                }
                let c = self.stakeholders.get_mut(lane).expect("lane just ensured");
                c.entries += 1;
                c.events += 1;
            }
        }
        if self.mode == ObsMode::Profile {
            if self.ring.len() == PROFILE_RING_CAPACITY {
                self.ring.pop_front();
                self.ring_dropped += 1;
            }
            self.ring.push_back(entry.clone());
            // Snapshot the rolling digest after each entry: Fnv1a::finish
            // is non-consuming, so the prefix stream costs one push.
            self.prefix.push(self.hasher.finish());
        }
    }
}

thread_local! {
    static MODE: Cell<u8> = const { Cell::new(MODE_OFF) };
    static STATE: RefCell<Option<ObsState>> = const { RefCell::new(None) };
}

fn mode_byte(mode: ObsMode) -> u8 {
    match mode {
        ObsMode::Off => MODE_OFF,
        ObsMode::Cost => MODE_COST,
        ObsMode::Profile => MODE_PROFILE,
    }
}

/// RAII scope for one observed run. Restores the previously active scope
/// (if any) on drop, including across panics, so nested scopes and
/// panic-isolated workers compose.
#[must_use = "dropping the guard immediately ends the observation scope"]
pub struct ObsGuard {
    prev: Option<ObsState>,
}

impl ObsGuard {
    /// End the scope and return everything it observed.
    pub fn finish(self) -> RunRecord {
        let record =
            STATE.with(|s| s.borrow_mut().take()).map(ObsState::into_record).unwrap_or_default();
        // `self` is dropped here, restoring the previous scope.
        record
    }
}

impl Drop for ObsGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        MODE.with(|m| m.set(prev.as_ref().map_or(MODE_OFF, |s| mode_byte(s.mode))));
        STATE.with(|s| *s.borrow_mut() = prev);
    }
}

/// Open an observation scope on this thread. All instrumented operations
/// until the guard is finished (or dropped) are attributed to it.
pub fn begin(mode: ObsMode) -> ObsGuard {
    let prev = STATE.with(|s| s.borrow_mut().replace(ObsState::new(mode)));
    MODE.with(|m| m.set(mode_byte(mode)));
    ObsGuard { prev }
}

/// Whether any observation scope is active on this thread.
#[inline]
pub fn active() -> bool {
    MODE.with(|m| m.get()) != MODE_OFF
}

/// Whether a Profile-mode scope is active (callers use this to gate
/// wall-clock reads, which are not free).
#[inline]
pub fn profiling() -> bool {
    MODE.with(|m| m.get()) == MODE_PROFILE
}

#[inline]
fn with_state(f: impl FnOnce(&mut ObsState)) {
    if MODE.with(|m| m.get()) == MODE_OFF {
        return;
    }
    STATE.with(|s| {
        if let Some(st) = s.borrow_mut().as_mut() {
            f(st);
        }
    });
}

/// One engine event was dispatched.
#[inline]
pub fn on_event() {
    with_state(|s| s.events += 1);
}

/// One engine event was dispatched, with its provenance. Counts the event,
/// buckets it into the activity series, stamps subsequent ambient entries
/// with its id, and (Profile mode) captures the node in a bounded ring.
/// None of this touches the digest: ids and series are positional.
#[inline]
pub fn on_dispatch(node: &ProvenanceNode) {
    with_state(|s| {
        s.events += 1;
        s.series_events.record(node.time, 1);
        s.current_event = Some(node.id);
        if s.mode == ObsMode::Profile {
            if s.provenance.len() == PROFILE_RING_CAPACITY {
                s.provenance.pop_front();
                s.provenance_dropped += 1;
            }
            s.provenance.push_back(node.clone());
        }
    });
}

/// The engine finished dispatching the current event.
#[inline]
pub fn on_dispatch_end() {
    with_state(|s| s.current_event = None);
}

/// One randomness-consuming rng call completed.
#[inline]
pub fn on_rng_draw() {
    with_state(|s| s.rng_draws += 1);
}

/// One packet hop was forwarded at virtual time `at`.
#[inline]
pub fn on_forward(at: SimTime) {
    with_state(|s| {
        s.forwards += 1;
        s.series_forwards.record(at, 1);
    });
}

/// A fault injector produced a non-pass outcome at virtual time `at`.
#[inline]
pub fn on_fault(at: SimTime) {
    with_state(|s| s.series_faults.record(at, 1));
}

/// Absorb a structured trace entry (called by [`crate::Trace`] on every
/// record, and by the ambient span helpers below).
#[inline]
pub fn absorb_entry(entry: &TraceEntry) {
    with_state(|s| s.absorb(entry));
}

/// A counter was incremented.
#[inline]
pub fn on_metric_counter(key: &str, n: u64) {
    with_state(|s| {
        s.hasher.write_u8(0xA1);
        s.hasher.write_str(key);
        s.hasher.write_u64(n);
        if s.mode == ObsMode::Profile {
            if let Some(v) = s.acc_counters.get_mut(key) {
                *v += n;
            } else {
                s.acc_counters.insert(key.to_owned(), n);
            }
        }
    });
}

/// A gauge was set.
#[inline]
pub fn on_metric_gauge(key: &str, value: f64) {
    with_state(|s| {
        s.hasher.write_u8(0xA2);
        s.hasher.write_str(key);
        s.hasher.write_f64(value);
        if s.mode == ObsMode::Profile {
            if let Some(v) = s.acc_gauges.get_mut(key) {
                *v = value;
            } else {
                s.acc_gauges.insert(key.to_owned(), value);
            }
        }
    });
}

/// A histogram sample was observed.
#[inline]
pub fn on_metric_observe(key: &str, value: f64) {
    with_state(|s| {
        s.hasher.write_u8(0xA3);
        s.hasher.write_str(key);
        s.hasher.write_f64(value);
        if s.mode == ObsMode::Profile {
            if let Some(h) = s.acc_hists.get_mut(key) {
                h.record(value);
            } else {
                let mut h = Histogram::new();
                h.record(value);
                s.acc_hists.insert(key.to_owned(), h);
            }
        }
    });
}

/// Attribute one dispatched engine event to `topic` (Profile mode; the
/// engine gates the wall-clock measurement on [`profiling`]).
#[inline]
pub fn on_handler(topic: &str, virtual_micros: u64, wall_nanos: u64) {
    with_state(|s| {
        if s.mode != ObsMode::Profile {
            return;
        }
        let t = s.topics.entry(topic.to_owned()).or_default();
        t.events += 1;
        t.virtual_micros += virtual_micros;
        t.wall_nanos += wall_nanos;
    });
}

/// Open an ambient span — for substrates (markets, policy engines, game
/// solvers) that run outside any engine-owned [`crate::Trace`]. The entry
/// is absorbed into the digest; in Profile mode the span also contributes
/// per-topic attribution when closed.
pub fn span_enter(time: SimTime, topic: &str, stakeholder: Option<&str>, fields: &[(&str, &str)]) {
    with_state(|s| {
        let entry = TraceEntry {
            time,
            topic: topic.to_owned(),
            message: String::new(),
            kind: SpanKind::Enter,
            stakeholder: stakeholder.map(str::to_owned),
            fields: fields.iter().map(|(k, v)| ((*k).to_owned(), (*v).to_owned())).collect(),
            depth: s.open.len() as u32,
            event: s.current_event,
        };
        s.absorb(&entry);
        s.open.push((topic.to_owned(), time.as_micros(), Instant::now()));
    });
}

/// Close the innermost ambient span. A call with no open span is a no-op,
/// so exits can never outnumber enters.
pub fn span_exit(time: SimTime, fields: &[(&str, &str)]) {
    with_state(|s| {
        let Some((topic, entered_micros, entered_at)) = s.open.pop() else {
            return;
        };
        let entry = TraceEntry {
            time,
            topic: topic.clone(),
            message: String::new(),
            kind: SpanKind::Exit,
            stakeholder: None,
            fields: fields.iter().map(|(k, v)| ((*k).to_owned(), (*v).to_owned())).collect(),
            depth: s.open.len() as u32,
            event: s.current_event,
        };
        s.absorb(&entry);
        if s.mode == ObsMode::Profile {
            let t = s.topics.entry(topic).or_default();
            t.events += 1;
            t.virtual_micros += time.as_micros().saturating_sub(entered_micros);
            t.wall_nanos += entered_at.elapsed().as_nanos() as u64;
        }
    });
}

/// Record an ambient point event (digest-covered; captured in Profile mode).
pub fn event(time: SimTime, topic: &str, message: &str) {
    event_for(time, topic, None, message);
}

/// [`event`], attributed to a stakeholder lane: the entry feeds that lane
/// of the scoreboard fold (and its Perfetto pseudo-process) instead of
/// inheriting the enclosing span's lane.
pub fn event_for(time: SimTime, topic: &str, stakeholder: Option<&str>, message: &str) {
    with_state(|s| {
        let entry = TraceEntry {
            time,
            topic: topic.to_owned(),
            message: message.to_owned(),
            kind: SpanKind::Event,
            stakeholder: stakeholder.map(str::to_owned),
            fields: Vec::new(),
            depth: s.open.len() as u32,
            event: s.current_event,
        };
        s.absorb(&entry);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_by_default() {
        assert!(!active());
        assert!(!profiling());
        // Hooks are no-ops without a scope.
        on_event();
        on_rng_draw();
        event(SimTime::ZERO, "x", "ignored");
    }

    #[test]
    fn cost_scope_counts_and_digests() {
        let g = begin(ObsMode::Cost);
        assert!(active());
        assert!(!profiling());
        on_event();
        on_event();
        on_rng_draw();
        on_forward(SimTime::from_micros(2));
        event(SimTime::from_micros(3), "econ.price", "posted");
        let rec = g.finish();
        assert!(!active());
        assert_eq!(rec.events, 2);
        assert_eq!(rec.rng_draws, 1);
        assert_eq!(rec.forwards, 1);
        assert_eq!(rec.trace_entries, 1);
        assert_ne!(rec.digest, RunDigest::empty());
        assert!(rec.ring.is_empty(), "Cost mode captures no entries");
    }

    #[test]
    fn identical_work_yields_identical_digest() {
        let run = || {
            let g = begin(ObsMode::Cost);
            on_event();
            on_metric_counter("pkts", 3);
            on_metric_gauge("price", 1.5);
            span_enter(SimTime::ZERO, "net.send", Some("isp"), &[("dst", "h2")]);
            span_exit(SimTime::from_micros(10), &[]);
            g.finish()
        };
        let a = run();
        let b = run();
        assert_eq!(a.digest, b.digest);

        let g = begin(ObsMode::Cost);
        on_event();
        on_metric_counter("pkts", 4); // one byte of difference
        on_metric_gauge("price", 1.5);
        span_enter(SimTime::ZERO, "net.send", Some("isp"), &[("dst", "h2")]);
        span_exit(SimTime::from_micros(10), &[]);
        let c = g.finish();
        assert_ne!(a.digest, c.digest);
    }

    #[test]
    fn digest_covers_untraced_counters() {
        let g = begin(ObsMode::Cost);
        on_rng_draw();
        let a = g.finish();
        let g = begin(ObsMode::Cost);
        on_rng_draw();
        on_rng_draw();
        let b = g.finish();
        assert_ne!(a.digest, b.digest, "draw counts fold into the digest");
    }

    #[test]
    fn profile_scope_captures_ring_and_topics() {
        let g = begin(ObsMode::Profile);
        assert!(profiling());
        span_enter(SimTime::from_micros(100), "econ.market", Some("provider"), &[]);
        event(SimTime::from_micros(150), "econ.price", "posted");
        span_exit(SimTime::from_micros(400), &[("rounds", "3")]);
        on_handler("net.forward", 25, 1_000);
        on_handler("net.forward", 5, 500);
        let rec = g.finish();
        assert_eq!(rec.ring.len(), 3);
        assert_eq!(rec.spans_entered, 1);
        assert_eq!(rec.spans_exited, 1);
        let market = &rec.topics["econ.market"];
        assert_eq!(market.events, 1);
        assert_eq!(market.virtual_micros, 300);
        let fwd = &rec.topics["net.forward"];
        assert_eq!((fwd.events, fwd.virtual_micros, fwd.wall_nanos), (2, 30, 1_500));
    }

    #[test]
    fn dispatch_hook_counts_series_and_captures_provenance() {
        let mk = |id: u64, parent: Option<u64>, t: u64| ProvenanceNode {
            id: EventId(id),
            parent: parent.map(EventId),
            time: SimTime::from_micros(t),
            span: None,
        };
        let g = begin(ObsMode::Profile);
        on_dispatch(&mk(0, None, 0));
        event(SimTime::ZERO, "t", "stamped");
        on_dispatch(&mk(1, Some(0), 2048));
        on_dispatch_end();
        on_forward(SimTime::from_micros(10));
        on_fault(SimTime::from_micros(10));
        let rec = g.finish();
        assert_eq!(rec.events, 2);
        assert_eq!(rec.provenance.len(), 2);
        assert_eq!(rec.provenance[1].parent, Some(EventId(0)));
        assert_eq!(rec.ring[0].event, Some(EventId(0)), "ambient entry stamped");
        assert_eq!(rec.series.events.total, 2);
        assert_eq!(rec.series.events.counts, [1, 0, 1], "bucketed by virtual time");
        assert_eq!(rec.series.forwards.total, 1);
        assert_eq!(rec.series.faults.total, 1);
    }

    #[test]
    fn provenance_and_series_stay_out_of_the_digest() {
        let base = || {
            let g = begin(ObsMode::Cost);
            event(SimTime::from_micros(1), "t", "m");
            g.finish()
        };
        let a = base();
        let g = begin(ObsMode::Cost);
        // Same absorbed work plus series/fault activity that must not
        // perturb the digest (events counter folds in, so use on_fault,
        // which only feeds a series).
        on_fault(SimTime::from_micros(5));
        event(SimTime::from_micros(1), "t", "m");
        let b = g.finish();
        assert_eq!(a.digest, b.digest);
    }

    #[test]
    fn prefix_digests_track_every_absorbed_entry() {
        let g = begin(ObsMode::Profile);
        event(SimTime::from_micros(1), "a", "1");
        event(SimTime::from_micros(2), "b", "2");
        event(SimTime::from_micros(3), "c", "3");
        let rec = g.finish();
        assert_eq!(rec.prefix_digests.len(), rec.ring.len());
        assert_eq!(rec.prefix_digests.len() as u64, rec.trace_entries);
        // Cost mode keeps the stream digest but skips the prefix capture.
        let g = begin(ObsMode::Cost);
        event(SimTime::from_micros(1), "a", "1");
        let rec = g.finish();
        assert!(rec.prefix_digests.is_empty());
    }

    #[test]
    fn equal_runs_share_prefixes_and_diverge_once() {
        let run = |third: &str| {
            let g = begin(ObsMode::Profile);
            event(SimTime::from_micros(1), "a", "1");
            event(SimTime::from_micros(2), "b", "2");
            event(SimTime::from_micros(3), "c", third);
            event(SimTime::from_micros(4), "d", "4");
            g.finish()
        };
        let a = run("same");
        let b = run("same");
        assert_eq!(a.prefix_digests, b.prefix_digests);
        let c = run("DIFFERENT");
        assert_eq!(a.prefix_digests[..2], c.prefix_digests[..2]);
        assert_ne!(a.prefix_digests[2], c.prefix_digests[2]);
        assert_ne!(a.prefix_digests[3], c.prefix_digests[3], "streams stay diverged");
    }

    #[test]
    fn nested_scopes_restore_outer() {
        let outer = begin(ObsMode::Cost);
        on_event();
        {
            let inner = begin(ObsMode::Profile);
            assert!(profiling());
            on_event();
            on_event();
            let rec = inner.finish();
            assert_eq!(rec.events, 2, "inner scope sees only its own work");
        }
        assert!(active());
        assert!(!profiling(), "outer Cost scope restored");
        on_event();
        let rec = outer.finish();
        assert_eq!(rec.events, 2, "outer scope never saw the inner events");
    }

    #[test]
    fn guard_restores_across_panic() {
        let result = std::panic::catch_unwind(|| {
            let _g = begin(ObsMode::Cost);
            panic!("boom");
        });
        assert!(result.is_err());
        assert!(!active(), "scope cleaned up during unwind");
    }

    #[test]
    fn unmatched_ambient_exit_is_noop() {
        let g = begin(ObsMode::Cost);
        span_exit(SimTime::ZERO, &[]);
        let rec = g.finish();
        assert_eq!(rec.spans_exited, 0);
        assert_eq!(rec.trace_entries, 0);
    }

    #[test]
    fn stakeholder_attribution_conserves_entries() {
        let g = begin(ObsMode::Cost);
        span_enter(SimTime::from_micros(0), "econ.market", Some("isp"), &[]);
        // Nested span with no annotation inherits the enclosing lane.
        span_enter(SimTime::from_micros(10), "econ.auction", None, &[]);
        event(SimTime::from_micros(20), "econ.bid", "posted");
        span_exit(SimTime::from_micros(30), &[]);
        span_exit(SimTime::from_micros(100), &[]);
        // Unattributed work outside any span.
        event(SimTime::from_micros(110), "net.tick", "idle");
        let rec = g.finish();
        let isp = &rec.stakeholders["isp"];
        assert_eq!(isp.entries, 5, "both spans, both exits, one event");
        assert_eq!(isp.spans, 2);
        assert_eq!(isp.events, 1);
        // inner span 10→30 plus outer span 0→100
        assert_eq!(isp.virtual_micros, (30 - 10) + 100);
        let other = &rec.stakeholders[UNATTRIBUTED];
        assert_eq!((other.entries, other.events), (1, 1));
        let total: u64 = rec.stakeholders.values().map(|c| c.entries).sum();
        assert_eq!(total, rec.trace_entries, "every entry lands in exactly one lane");
    }

    #[test]
    fn stakeholder_fold_stays_out_of_the_digest() {
        // The digest was already pinned before the scoreboard fold existed;
        // here we only need two identical streams to agree while their
        // lane maps are populated.
        let run = || {
            let g = begin(ObsMode::Cost);
            span_enter(SimTime::ZERO, "t", Some("user"), &[]);
            span_exit(SimTime::from_micros(5), &[]);
            g.finish()
        };
        let a = run();
        let b = run();
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.stakeholders, b.stakeholders);
        assert_eq!(a.stakeholders["user"].virtual_micros, 5);
    }

    #[test]
    fn profile_scope_accumulates_metrics() {
        let g = begin(ObsMode::Profile);
        on_metric_counter("pkts", 3);
        on_metric_counter("pkts", 4);
        on_metric_gauge("price", 1.0);
        on_metric_gauge("price", 2.5);
        on_metric_observe("latency", 10.0);
        on_metric_observe("latency", 30.0);
        let rec = g.finish();
        assert_eq!(rec.metrics.counters["pkts"], 7);
        assert_eq!(rec.metrics.gauges["price"], 2.5, "gauges keep the last write");
        let h = &rec.metrics.histograms["latency"];
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 40.0);
        // Cost mode folds writes into the digest but does not accumulate.
        let g = begin(ObsMode::Cost);
        on_metric_counter("pkts", 1);
        let rec = g.finish();
        assert!(rec.metrics.is_empty());
    }

    #[test]
    fn wall_time_not_in_digest() {
        // Two runs with deliberately different wall times but identical
        // work must agree on the digest.
        let g = begin(ObsMode::Cost);
        on_event();
        let a = g.finish();
        let g = begin(ObsMode::Cost);
        std::thread::sleep(std::time::Duration::from_millis(2));
        on_event();
        let b = g.finish();
        assert_eq!(a.digest, b.digest);
        assert!(b.wall_nanos >= 2_000_000);
    }
}

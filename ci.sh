#!/usr/bin/env bash
# Local CI gate: formatting, lints, then the tier-1 build + test pass.
# Run from the repository root. Fails fast on the first broken stage.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> chaos smoke: margins report for the full registry, schema-checked"
chaos_json="$(./target/release/tussle-cli chaos --seeds 2 --intensities 0,0.2 --json)"
echo "$chaos_json" | jq -e '
  (.experiments | length) == 17
  and (.intensities == [0, 0.2])
  and (.seeds == 2)
  and ([.experiments[] | has("margin") and has("intensities")] | all)
  and ([.experiments[].intensities[] | has("panics") and has("faults") and has("sweep")] | all)
' > /dev/null
echo "chaos smoke OK: 17 experiments, schema valid"

echo "CI OK"

//! Property tests for actor-network dynamics.

use proptest::prelude::*;
use tussle_actors::{ActorKind, ActorNetwork};

fn arb_kind(i: usize) -> ActorKind {
    match i % 3 {
        0 => ActorKind::Human,
        1 => ActorKind::Technology,
        _ => ActorKind::Institution,
    }
}

proptest! {
    /// Durability and alignment stay in [0, 1]; tussle energy is
    /// nonnegative and bounded by the number of aligned pairs.
    #[test]
    fn metrics_are_bounded(
        n in 2usize..8,
        stances in proptest::collection::vec(-2.0f64..2.0, 8 * 2),
        aligns in proptest::collection::vec((0usize..8, 0usize..8, -0.5f64..1.5), 0..20),
    ) {
        let mut net = ActorNetwork::new(2);
        for i in 0..n {
            net.add_actor(arb_kind(i), &format!("a{i}"), vec![stances[i * 2], stances[i * 2 + 1]]);
        }
        let mut pairs = 0usize;
        for (a, b, w) in &aligns {
            let (a, b) = (a % n, b % n);
            if a != b {
                net.align(
                    tussle_actors::ActorId(a as u32),
                    tussle_actors::ActorId(b as u32),
                    *w,
                );
                pairs += 1;
            }
        }
        let d = net.durability();
        prop_assert!((0.0..=1.0).contains(&d), "durability {d}");
        let e = net.tussle_energy();
        prop_assert!(e >= 0.0);
        prop_assert!(e <= pairs as f64 + 1e-9, "energy {e} over {pairs} pairs");
    }

    /// Relaxation never increases tussle energy and never decreases
    /// durability; stances stay clamped.
    #[test]
    fn relaxation_is_monotone(
        stances in proptest::collection::vec(-1.0f64..1.0, 6),
        steps in 1usize..50,
    ) {
        let mut net = ActorNetwork::new(1);
        for (i, s) in stances.iter().enumerate() {
            net.add_actor(arb_kind(i), &format!("a{i}"), vec![*s]);
        }
        for i in 0..stances.len() {
            for j in (i + 1)..stances.len() {
                net.align(tussle_actors::ActorId(i as u32), tussle_actors::ActorId(j as u32), 0.5);
            }
        }
        let mut prev_e = net.tussle_energy();
        let mut prev_d = net.durability();
        for _ in 0..steps {
            net.relax(0.1);
            let e = net.tussle_energy();
            let d = net.durability();
            prop_assert!(e <= prev_e + 1e-9, "energy rose {prev_e} -> {e}");
            prop_assert!(d >= prev_d - 1e-9, "durability fell {prev_d} -> {d}");
            prev_e = e;
            prev_d = d;
            for a in net.active_actors() {
                for s in &a.stances {
                    prop_assert!((-1.0..=1.0).contains(s));
                }
            }
        }
    }

    /// Conflict is a symmetric semi-metric over stances.
    #[test]
    fn conflict_is_symmetric(
        sa in proptest::collection::vec(-1.0f64..1.0, 3),
        sb in proptest::collection::vec(-1.0f64..1.0, 3),
    ) {
        let mut net = ActorNetwork::new(3);
        let a = net.add_actor(ActorKind::Human, "a", sa);
        let b = net.add_actor(ActorKind::Human, "b", sb);
        let cab = net.conflict(a, b);
        let cba = net.conflict(b, a);
        prop_assert!((cab - cba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&cab));
        prop_assert_eq!(net.conflict(a, a), 0.0);
    }
}

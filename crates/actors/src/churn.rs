//! Entrant churn: what keeps the network changeable.
//!
//! §II.C: "the open architecture of the Internet allows the continuous
//! entry of new players into the actor network. The entrance of new actors,
//! with fresh perspectives and values, creates continuous churn ... the new
//! applications bring new actors to the actor network, which keeps the
//! actor network from becoming frozen, which in turn permits change to
//! occur."

use crate::network::{ActorKind, ActorNetwork};
use serde::{Deserialize, Serialize};
use tussle_sim::SimRng;

/// A Poisson-ish entrant process over an actor network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChurnProcess {
    /// Expected entrants per step (0 = the door is closed).
    pub arrival_rate: f64,
    /// How strongly each entrant aligns with existing actors on arrival.
    pub entry_alignment: f64,
    /// How fast aligned actors resolve their differences per step.
    pub relaxation_rate: f64,
    entrants: u64,
}

impl ChurnProcess {
    /// A process with the given arrival rate.
    pub fn new(arrival_rate: f64) -> Self {
        ChurnProcess {
            arrival_rate: arrival_rate.max(0.0),
            entry_alignment: 0.4,
            relaxation_rate: 0.05,
            entrants: 0,
        }
    }

    /// Total entrants so far.
    pub fn entrants(&self) -> u64 {
        self.entrants
    }

    /// One step: maybe admit entrants (with fresh, randomized stances,
    /// aligned to a sample of incumbents), then relax the network.
    /// Returns the number of entrants admitted this step.
    pub fn step(&mut self, net: &mut ActorNetwork, rng: &mut SimRng) -> usize {
        let mut admitted = 0;
        // Bernoulli approximation of Poisson for rates < 1; loop for more.
        let mut budget = self.arrival_rate;
        while budget > 0.0 {
            let p = budget.min(1.0);
            if rng.chance(p) {
                self.admit_one(net, rng);
                admitted += 1;
            }
            budget -= 1.0;
        }
        net.relax(self.relaxation_rate);
        admitted
    }

    fn admit_one(&mut self, net: &mut ActorNetwork, rng: &mut SimRng) {
        self.entrants += 1;
        let stances: Vec<f64> = (0..net.issue_count).map(|_| rng.range(-1.0..1.0f64)).collect();
        let kind = if rng.chance(0.5) { ActorKind::Human } else { ActorKind::Technology };
        let name = format!("entrant-{}", self.entrants);
        let id = net.add_actor(kind, &name, stances);
        // align with up to three incumbents — joining the network means
        // committing to parts of it
        let incumbents: Vec<_> = net.active_actors().map(|a| a.id).filter(|i| *i != id).collect();
        for _ in 0..3 {
            if let Some(other) = rng.pick(&incumbents).copied() {
                net.align(id, other, self.entry_alignment);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::ActorNetwork;

    fn seeded_net() -> ActorNetwork {
        let mut n = ActorNetwork::new(2);
        let a = n.add_actor(ActorKind::Human, "users", vec![0.5, 0.0]);
        let b = n.add_actor(ActorKind::Technology, "ip", vec![0.0, 0.0]);
        n.align(a, b, 0.5);
        n
    }

    #[test]
    fn zero_rate_admits_nobody() {
        let mut net = seeded_net();
        let mut churn = ChurnProcess::new(0.0);
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(churn.step(&mut net, &mut rng), 0);
        }
        assert_eq!(churn.entrants(), 0);
        assert_eq!(net.active_count(), 2);
    }

    #[test]
    fn arrivals_track_rate() {
        let mut net = seeded_net();
        let mut churn = ChurnProcess::new(0.5);
        let mut rng = SimRng::seed_from_u64(2);
        for _ in 0..400 {
            churn.step(&mut net, &mut rng);
        }
        let e = churn.entrants();
        assert!((120..280).contains(&e), "expected ~200 entrants, got {e}");
        assert_eq!(net.active_count(), 2 + e as usize);
    }

    #[test]
    fn rates_above_one_admit_multiple_per_step() {
        let mut net = seeded_net();
        let mut churn = ChurnProcess::new(3.0);
        let mut rng = SimRng::seed_from_u64(3);
        let mut total = 0;
        for _ in 0..50 {
            total += churn.step(&mut net, &mut rng);
        }
        assert!(total > 100, "rate 3 over 50 steps should admit > 100, got {total}");
    }

    #[test]
    fn churn_sustains_tussle_energy() {
        // with entrants: energy stays up; without: it drains
        let mut rng = SimRng::seed_from_u64(4);
        let mut open_net = seeded_net();
        let mut open = ChurnProcess::new(1.0);
        for _ in 0..300 {
            open.step(&mut open_net, &mut rng);
        }

        let mut closed_net = seeded_net();
        let mut closed = ChurnProcess::new(0.0);
        for _ in 0..300 {
            closed.step(&mut closed_net, &mut rng);
        }
        assert!(
            open_net.tussle_energy() > closed_net.tussle_energy() * 2.0,
            "open {} vs closed {}",
            open_net.tussle_energy(),
            closed_net.tussle_energy()
        );
    }

    #[test]
    fn negative_rates_are_clamped() {
        let churn = ChurnProcess::new(-5.0);
        assert_eq!(churn.arrival_rate, 0.0);
    }
}

//! The separated design: modularize naming along the tussle boundary.
//!
//! §IV.A: "one might imagine separate strategies to deal with the issues of
//! trademark, naming mailbox services, and providing names for machines
//! that are independent of location (the original and minimal purpose of
//! the DNS). One could then try to design these latter mechanisms to try to
//! duck the issue of trademark."
//!
//! Here machine naming uses opaque identifiers that cannot express a
//! trademark at all; a separate human-facing directory maps marks to
//! machine ids, and disputes act ONLY on the directory. Services keep
//! running whatever the lawyers decide — the §IV.A payoff, bought at the
//! cost of an extra resolution step ("solutions that are less efficient
//! from a technical perspective may do a better job of isolating the
//! collateral damage of tussle").

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An opaque machine identifier. Deliberately numeric: there is nothing
/// here a trademark claim can attach to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MachineId(pub u64);

// Lets `MachineId` key the serialized directory as its raw number.
impl serde::StringKey for MachineId {
    fn to_key(&self) -> String {
        self.0.to_string()
    }
    fn from_key(key: &str) -> Result<Self, serde::DeError> {
        key.parse()
            .map(MachineId)
            .map_err(|_| serde::DeError(format!("invalid MachineId map key `{key}`")))
    }
}

/// Machine naming: id → address. No ownership semantics, no dispute hooks —
/// by construction outside the trademark tussle space.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MachineDirectory {
    entries: BTreeMap<MachineId, u32>,
}

impl MachineDirectory {
    /// Empty directory.
    pub fn new() -> Self {
        MachineDirectory::default()
    }

    /// Bind an id to an address.
    pub fn bind(&mut self, id: MachineId, addr: u32) {
        self.entries.insert(id, addr);
    }

    /// Resolve an id.
    pub fn resolve(&self, id: MachineId) -> Option<u32> {
        self.entries.get(&id).copied()
    }

    /// Rebind after renumbering (the dynamic-DNS move of §V.A.1).
    pub fn rebind(&mut self, id: MachineId, addr: u32) {
        self.entries.insert(id, addr);
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the directory empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The human-facing layer: mark text → machine id, with ownership — the
/// ONLY place trademark disputes can act.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SeparatedNaming {
    /// Machine layer.
    pub machines: MachineDirectory,
    directory: BTreeMap<String, (u64, MachineId)>, // mark -> (owner, machine)
    /// Directory entries reassigned by disputes (no machine breakage).
    pub disputes_applied: u64,
}

impl SeparatedNaming {
    /// Empty system.
    pub fn new() -> Self {
        SeparatedNaming::default()
    }

    /// Claim a directory entry (first come, first served again — but now
    /// the fight is confined here).
    pub fn claim(&mut self, mark: &str, owner: u64, machine: MachineId) -> bool {
        let key = mark.to_ascii_lowercase();
        if self.directory.contains_key(&key) {
            return false;
        }
        self.directory.insert(key, (owner, machine));
        true
    }

    /// Full human-name resolution: mark → machine id → address.
    pub fn resolve_mark(&self, mark: &str) -> Option<u32> {
        let (_, machine) = self.directory.get(&mark.to_ascii_lowercase())?;
        self.machines.resolve(*machine)
    }

    /// Current directory owner of a mark.
    pub fn owner_of(&self, mark: &str) -> Option<u64> {
        self.directory.get(&mark.to_ascii_lowercase()).map(|(o, _)| *o)
    }

    /// Apply a dispute outcome: repoint the mark at the holder's machine.
    /// The loser's machine id and its address binding are untouched —
    /// anyone holding the machine id still reaches the service.
    pub fn adjudicate(&mut self, mark: &str, holder: u64, holder_machine: MachineId) -> bool {
        let key = mark.to_ascii_lowercase();
        match self.directory.get_mut(&key) {
            Some(entry) => {
                *entry = (holder, holder_machine);
                self.disputes_applied += 1;
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_directory_roundtrip() {
        let mut d = MachineDirectory::new();
        assert!(d.is_empty());
        d.bind(MachineId(1), 0xAA);
        assert_eq!(d.resolve(MachineId(1)), Some(0xAA));
        assert_eq!(d.resolve(MachineId(2)), None);
        d.rebind(MachineId(1), 0xBB);
        assert_eq!(d.resolve(MachineId(1)), Some(0xBB));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn two_step_resolution() {
        let mut s = SeparatedNaming::new();
        s.machines.bind(MachineId(1), 0xAA);
        assert!(s.claim("acme", 5, MachineId(1)));
        assert_eq!(s.resolve_mark("ACME"), Some(0xAA));
        assert_eq!(s.owner_of("acme"), Some(5));
    }

    #[test]
    fn claims_are_first_come_first_served() {
        let mut s = SeparatedNaming::new();
        assert!(s.claim("acme", 5, MachineId(1)));
        assert!(!s.claim("acme", 100, MachineId(2)));
        assert_eq!(s.owner_of("acme"), Some(5));
    }

    #[test]
    fn dispute_repoints_directory_without_breaking_machines() {
        let mut s = SeparatedNaming::new();
        s.machines.bind(MachineId(1), 0xAA); // squatter's machine
        s.machines.bind(MachineId(2), 0xFF); // holder's machine
        s.claim("acme", 5, MachineId(1));

        assert!(s.adjudicate("acme", 100, MachineId(2)));
        // the mark now reaches the holder
        assert_eq!(s.resolve_mark("acme"), Some(0xFF));
        assert_eq!(s.owner_of("acme"), Some(100));
        // ...and the loser's machine still resolves for anyone holding its
        // id: zero collateral damage to machine naming.
        assert_eq!(s.machines.resolve(MachineId(1)), Some(0xAA));
        assert_eq!(s.disputes_applied, 1);
    }

    #[test]
    fn adjudicating_unknown_marks_fails() {
        let mut s = SeparatedNaming::new();
        assert!(!s.adjudicate("ghost", 1, MachineId(1)));
        assert_eq!(s.disputes_applied, 0);
    }

    #[test]
    fn renumbering_keeps_marks_working() {
        // the §V.A.1 tie-in: rebind the machine, every mark above it follows
        let mut s = SeparatedNaming::new();
        s.machines.bind(MachineId(1), 0xAA);
        s.claim("acme", 5, MachineId(1));
        s.machines.rebind(MachineId(1), 0xCC);
        assert_eq!(s.resolve_mark("acme"), Some(0xCC));
    }
}

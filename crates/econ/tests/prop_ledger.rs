//! Property tests for the value-flow ledger and pricing.

use proptest::prelude::*;
use tussle_econ::{
    AccountId, Consumer, Instrument, Ledger, Market, Money, PeeringContract, PricingScheme,
    Provider, TransitContract, Usage,
};
use tussle_net::Asn;

proptest! {
    /// Conservation: any sequence of mints and transfers keeps the total
    /// balance equal to the total minted, and no successful transfer
    /// overdraws.
    #[test]
    fn ledger_conserves_value(
        ops in proptest::collection::vec((0u64..8, 0u64..8, 1i64..1_000_000), 1..200),
    ) {
        let mut l = Ledger::new();
        for i in 0..8 {
            l.open(AccountId(i));
            l.mint(AccountId(i), Money::from_dollars(10));
        }
        for (from, to, amount) in ops {
            let _ = l.transfer(AccountId(from), AccountId(to), Money(amount), "prop");
        }
        prop_assert!(l.is_conserving());
        for i in 0..8 {
            prop_assert!(l.balance(AccountId(i)) >= Money::ZERO);
        }
    }

    /// Paid and received totals reconcile with balances.
    #[test]
    fn flows_reconcile(
        ops in proptest::collection::vec((0u64..4, 0u64..4, 1i64..100_000), 1..100),
    ) {
        let mut l = Ledger::new();
        for i in 0..4 {
            l.open(AccountId(i));
            l.mint(AccountId(i), Money::from_dollars(100));
        }
        for (from, to, amount) in ops {
            let _ = l.transfer(AccountId(from), AccountId(to), Money(amount), "prop");
        }
        for i in 0..4 {
            let id = AccountId(i);
            let expected = Money::from_dollars(100) + l.total_received(id) - l.total_paid(id);
            prop_assert_eq!(l.balance(id), expected);
        }
    }

    /// Money arithmetic survives a scale/unscale round trip within
    /// rounding, and ordering agrees with micros.
    #[test]
    fn money_ordering(a in -1_000_000_000i64..1_000_000_000, b in -1_000_000_000i64..1_000_000_000) {
        let ma = Money(a);
        let mb = Money(b);
        prop_assert_eq!(ma < mb, a < b);
        prop_assert_eq!(ma.max(mb).micros(), a.max(b));
        prop_assert_eq!((ma + mb).micros(), a + b);
    }

    /// Value pricing never charges a hidden server more than a visible
    /// one, and flat pricing is usage-invariant.
    #[test]
    fn pricing_monotonicity(mb in 0u64..100_000, res in 1i64..100, bus in 100i64..500) {
        let vp = PricingScheme::ValuePricing {
            residential: Money::from_dollars(res),
            business: Money::from_dollars(bus),
        };
        let hidden = vp.bill(Usage::hidden_server(mb));
        let open = vp.bill(Usage::open_server(mb));
        let plain = vp.bill(Usage::residential(mb));
        prop_assert!(hidden <= open);
        prop_assert_eq!(hidden, plain);

        let flat = PricingScheme::Flat { monthly: Money::from_dollars(res) };
        prop_assert_eq!(flat.bill(Usage::residential(mb)), flat.bill(Usage::open_server(mb)));
    }

    /// Per-byte bills scale linearly in usage.
    #[test]
    fn per_byte_linear(mb in 0u64..1_000_000, rate in 1i64..1_000) {
        let s = PricingScheme::PerByte { per_mb: Money(rate) };
        let one = s.bill(Usage::residential(mb));
        let two = s.bill(Usage::residential(mb * 2));
        prop_assert_eq!(two.micros(), one.micros() * 2);
    }
}

/// One randomly drawn economic event for the cross-crate conservation test.
#[derive(Debug, Clone)]
enum EconOp {
    /// Settle a transit contract between two of the fixed ASes.
    Transit { customer: u64, provider: u64, per_mb: i64, monthly: i64, megabytes: u64 },
    /// Settle a peering contract between two of the fixed ASes.
    Peering { a: u64, b: u64, max_ratio_tenths: u64, overage: i64, a_to_b: u64, b_to_a: u64 },
    /// Pay an amount with an instrument; the processing fee moves to the
    /// processor's account (fees change hands, they don't evaporate).
    Payment { payer: u64, payee: u64, amount: i64, instrument: u8 },
    /// Run a retail market round and transfer each served consumer's bill
    /// from a consumer account to a provider account.
    MarketRound { consumers: u64, monthly: i64, months: u8 },
}

fn econ_op() -> impl Strategy<Value = EconOp> {
    prop_oneof![
        (0u64..6, 0u64..6, 0i64..2_000, 0i64..5_000_000, 0u64..10_000).prop_map(
            |(customer, provider, per_mb, monthly, megabytes)| EconOp::Transit {
                customer,
                provider,
                per_mb,
                monthly,
                megabytes
            }
        ),
        (0u64..6, 0u64..6, 10u64..40, 0i64..2_000, 0u64..10_000, 0u64..10_000).prop_map(
            |(a, b, max_ratio_tenths, overage, a_to_b, b_to_a)| EconOp::Peering {
                a,
                b,
                max_ratio_tenths,
                overage,
                a_to_b,
                b_to_a
            }
        ),
        (0u64..6, 0u64..6, 1i64..20_000_000, 0u8..3).prop_map(
            |(payer, payee, amount, instrument)| EconOp::Payment {
                payer,
                payee,
                amount,
                instrument
            }
        ),
        (1u64..8, 1i64..80, 1u8..4).prop_map(|(consumers, monthly, months)| {
            EconOp::MarketRound { consumers, monthly, months }
        }),
    ]
}

proptest! {
    /// Cross-crate conservation: random sequences of contract settlements,
    /// instrument-fee payments, and market-derived retail bills never
    /// create or destroy money — the ledger stays conserving and the sum
    /// of all balances equals exactly what was minted up front. Rejected
    /// transfers (self-pay, underfunded) are legal outcomes, not leaks.
    #[test]
    fn economy_wide_ops_conserve_money(ops in proptest::collection::vec(econ_op(), 1..40)) {
        let mut l = Ledger::new();
        // Accounts 0..6 play AS / consumer / provider roles; 6 is the
        // payment processor that collects instrument fees.
        for i in 0..7u64 {
            l.open(AccountId(i));
            l.mint(AccountId(i), Money::from_dollars(1_000));
        }
        let minted = l.total_minted();
        let acct = |asn: Asn| AccountId(u64::from(asn.0));

        for op in ops {
            match op {
                EconOp::Transit { customer, provider, per_mb, monthly, megabytes } => {
                    if customer == provider {
                        continue;
                    }
                    let c = TransitContract {
                        customer: Asn(customer as u32),
                        provider: Asn(provider as u32),
                        per_mb: Money(per_mb),
                        monthly: Money(monthly),
                    };
                    let _ = c.settle(&mut l, acct, megabytes);
                }
                EconOp::Peering { a, b, max_ratio_tenths, overage, a_to_b, b_to_a } => {
                    if a == b {
                        continue;
                    }
                    let p = PeeringContract {
                        a: Asn(a as u32),
                        b: Asn(b as u32),
                        max_ratio: max_ratio_tenths as f64 / 10.0,
                        overage_per_mb: Money(overage),
                    };
                    let _ = p.settle(&mut l, acct, a_to_b, b_to_a);
                }
                EconOp::Payment { payer, payee, amount, instrument } => {
                    if payer == payee {
                        continue;
                    }
                    let inst = Instrument::all()[instrument as usize];
                    let amount = Money(amount);
                    if l.transfer(AccountId(payer), AccountId(payee), amount, "pay").is_ok() {
                        // The fee is capped at the payee's balance so a fee
                        // rejection can't hide a conservation bug.
                        let fee = inst.overhead(amount).min(l.balance(AccountId(payee)));
                        if fee.is_positive() {
                            let _ = l.transfer(AccountId(payee), AccountId(6), fee, "fee");
                        }
                    }
                }
                EconOp::MarketRound { consumers, monthly, months } => {
                    let cs: Vec<Consumer> = (0..consumers)
                        .map(|i| Consumer {
                            id: i,
                            value: Money::from_dollars(60 + i as i64 * 5),
                            usage_mb: 100 * (i + 1),
                            runs_server: i % 3 == 0,
                            tunnels: i % 6 == 0,
                            switching_cost: Money::from_dollars(5),
                            provider: None,
                        })
                        .collect();
                    let ps = vec![
                        Provider::flat("flat", Money::from_dollars(monthly), Money::from_dollars(8)),
                        Provider::flat(
                            "rival",
                            Money::from_dollars(monthly + 7),
                            Money::from_dollars(8),
                        ),
                    ];
                    let mut market = Market::new(cs, ps);
                    let report = market.run(usize::from(months));
                    prop_assert!(report.served <= consumers as usize);
                    // Each served consumer's bill moves through the ledger:
                    // consumer accounts 0..3 pay provider accounts 4..6.
                    for (i, c) in market.consumers.iter().enumerate() {
                        if let Some(p) = c.provider {
                            let bill = market.providers[p].scheme.bill(c.observed_usage());
                            if bill.is_positive() {
                                let from = AccountId(i as u64 % 4);
                                let to = AccountId(4 + p as u64 % 2);
                                let _ = l.transfer(from, to, bill, "retail bill");
                            }
                        }
                    }
                }
            }
            prop_assert!(l.is_conserving(), "ledger stopped conserving after {op:?}");
        }

        prop_assert!(l.is_conserving());
        prop_assert_eq!(l.total_minted(), minted, "minted total must never drift");
        let total: Money = (0..7u64).map(|i| l.balance(AccountId(i))).fold(Money::ZERO, |a, b| a + b);
        prop_assert_eq!(total, minted, "sum of balances must equal what was minted");
    }
}

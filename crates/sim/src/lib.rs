//! # tussle-sim — deterministic discrete-event simulation engine
//!
//! The substrate every other crate in the workspace runs on. The paper's
//! central observation is that tussle happens *at run time*: mechanisms and
//! counter-mechanisms are deployed while the system operates. To study that
//! we need a clock, an ordered event queue, reproducible randomness, and
//! instrumentation — nothing more. This crate provides exactly that:
//!
//! * [`SimTime`] — virtual time in microseconds.
//! * [`Engine`] — an event queue with a *total* order (ties broken by
//!   insertion sequence) so runs are bit-for-bit reproducible.
//! * [`SimRng`] — a seeded, forkable ChaCha8 random stream.
//! * [`Metrics`] — counters, gauges and log-bucket histograms.
//! * [`Trace`] — a bounded in-memory event log for diagnostics.
//! * [`FaultInjector`] — drop/corrupt/rate-limit knobs in the style of
//!   smoltcp's example harness.
//! * [`FaultPlan`] — a deterministic, schedulable script of infrastructure
//!   faults (link flaps, node outages, partition windows) layered on the
//!   injector, plus a thread-local *ambient* intensity (see [`fault`])
//!   that the chaos campaign wraps around whole experiment runs.
//! * [`RunBudget`] — an engine watchdog: runaway runs end with a
//!   structured [`RunOutcome`] instead of hanging.
//! * [`RunDigest`] — an FNV-1a hash of a run's structured trace and final
//!   metrics; determinism claims become one-line equality checks.
//! * [`obs`] — an ambient per-run observation scope: cost counters
//!   (events, rng draws, forwards), a rolling digest, and Profile-mode
//!   per-topic time attribution, all zero-cost when disabled.
//! * [`provenance`] — the causal DAG of which event scheduled which:
//!   every dispatch records its parent event and originating span, with
//!   bounded capture and ancestry walks ("why did this event run?").
//! * [`flame`] — deterministic collapsed-stack (flamegraph) rendering of
//!   span captures, attributed by virtual time.
//! * [`export`] — deterministic Chrome/Perfetto trace-event JSON,
//!   Prometheus text exposition and JSONL renderers over a run record,
//!   with one pseudo-pid per stakeholder so trace lanes are the tussle.
//! * [`checkpoint`] — versioned snapshots of a run's replay frontier with
//!   policy-driven capture, atomic persistence, crash injection, and
//!   byte-exact restore verification ("resume equals never-crashed").
//!
//! No async runtime is used: the workload is CPU-bound simulation, and the
//! engine is single-threaded by design (parallelism, where used, is across
//! independent experiment runs, not within one).
//!
//! ## Example
//!
//! ```
//! use tussle_sim::{Engine, SimTime};
//!
//! let mut engine: Engine<Vec<&str>> = Engine::new(Vec::new(), 42);
//! engine.schedule_at(SimTime::from_millis(10), |log, _| log.push("first"));
//! engine.schedule_in(SimTime::from_millis(20), |log, ctx| {
//!     log.push("second");
//!     ctx.schedule_in(SimTime::from_millis(5), |log, _| log.push("third"));
//! });
//! engine.run_to_completion();
//! assert_eq!(engine.world, ["first", "second", "third"]);
//! assert_eq!(engine.now(), SimTime::from_millis(25));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod digest;
pub mod engine;
pub mod event;
pub mod export;
pub mod fault;
pub mod flame;
pub mod metrics;
pub mod obs;
pub mod plan;
pub mod provenance;
pub mod rng;
pub mod time;
pub mod trace;

pub use checkpoint::{
    CheckpointConfig, CheckpointGuard, CheckpointPolicy, CheckpointRecord, CheckpointSink,
    ComponentState, EngineState, Manifest, ManifestEntry, RestoreError, Snapshot, SnapshotMeta,
    Snapshottable, SNAPSHOT_VERSION,
};
pub use digest::{Fnv1a, RunDigest};
pub use engine::{Ctx, Engine, RunBudget, RunOutcome, RunReport};
pub use event::{EventFn, EventId};
pub use export::{to_chrome, to_jsonl, to_prometheus};
pub use fault::{FaultInjector, FaultOutcome, FaultStats};
pub use metrics::{
    Histogram, HistogramSummary, Metrics, MetricsSnapshot, RunSeries, TimeSeries, TimeSeriesSummary,
};
pub use obs::{ObsGuard, ObsMode, RunRecord, StakeholderCost, TopicCost, UNATTRIBUTED};
pub use plan::{FaultAction, FaultEvent, FaultPlan};
pub use provenance::{Provenance, ProvenanceNode};
pub use rng::SimRng;
pub use time::SimTime;
pub use trace::{SpanKind, Trace, TraceEntry};

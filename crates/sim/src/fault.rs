//! Fault injection.
//!
//! Mirrors the knobs of smoltcp's example harness: random drop, random
//! corruption, and a token-bucket rate limit. Links and middleboxes consult
//! a [`FaultInjector`] on every transmission; experiments use it both to
//! model unreliable infrastructure and as a *tussle mechanism* (an ISP
//! throttling traffic it dislikes is exactly a selective fault injector).

use crate::rng::SimRng;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::cell::Cell;

/// Outcome of passing a transmission through a fault injector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultOutcome {
    /// Deliver unmodified.
    Pass,
    /// Deliver, but one octet was flipped.
    Corrupt,
    /// Silently dropped.
    Drop,
    /// Dropped by the rate limiter.
    RateLimited,
}

/// Per-run tallies of fault-injector outcomes, so fault activity is
/// observable instead of silent. Accumulated wherever transmissions pass
/// through an injector (per-link injectors via [`crate::Metrics`], the
/// ambient chaos layer via [`take_ambient_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Transmissions that passed unmodified.
    pub passed: u64,
    /// Transmissions silently dropped.
    pub dropped: u64,
    /// Transmissions delivered with a flipped octet.
    pub corrupted: u64,
    /// Transmissions discarded by a rate limiter.
    pub rate_limited: u64,
}

impl FaultStats {
    /// Tally one outcome.
    pub fn record(&mut self, outcome: FaultOutcome) {
        match outcome {
            FaultOutcome::Pass => self.passed += 1,
            FaultOutcome::Drop => self.dropped += 1,
            FaultOutcome::Corrupt => self.corrupted += 1,
            FaultOutcome::RateLimited => self.rate_limited += 1,
        }
    }

    /// Transmissions that were interfered with (everything but `Pass`).
    pub fn faults(&self) -> u64 {
        self.dropped + self.corrupted + self.rate_limited
    }

    /// All transmissions seen.
    pub fn total(&self) -> u64 {
        self.passed + self.faults()
    }

    /// Add another tally into this one.
    pub fn merge(&mut self, other: &FaultStats) {
        self.passed += other.passed;
        self.dropped += other.dropped;
        self.corrupted += other.corrupted;
        self.rate_limited += other.rate_limited;
    }
}

// ---------------------------------------------------------------------------
// Ambient chaos: a thread-local fault intensity consulted by substrates that
// carry traffic (tussle-net's forwarding path). The chaos campaign sets it
// around an experiment run to degrade *whatever* infrastructure the
// experiment happens to exercise, without the experiment opting in.
// ---------------------------------------------------------------------------

thread_local! {
    static AMBIENT_INTENSITY: Cell<f64> = const { Cell::new(0.0) };
    static AMBIENT_STATS: Cell<FaultStats> = const {
        Cell::new(FaultStats { passed: 0, dropped: 0, corrupted: 0, rate_limited: 0 })
    };
}

/// Restores the previous ambient intensity when dropped, so a panicking
/// run cannot leak chaos into the next job on the same worker thread.
#[derive(Debug)]
pub struct AmbientGuard {
    prev: f64,
}

impl Drop for AmbientGuard {
    fn drop(&mut self) {
        AMBIENT_INTENSITY.with(|c| c.set(self.prev));
    }
}

/// Set this thread's ambient fault intensity (clamped to `[0, 1]`) and
/// return a guard that restores the previous value on drop.
#[must_use = "dropping the guard immediately restores the previous intensity"]
pub fn set_ambient_intensity(intensity: f64) -> AmbientGuard {
    let prev = AMBIENT_INTENSITY.with(|c| c.replace(intensity.clamp(0.0, 1.0)));
    AmbientGuard { prev }
}

/// This thread's current ambient fault intensity in `[0, 1]`; `0` (the
/// default) means the ambient layer is inert and consumes no randomness.
pub fn ambient_intensity() -> f64 {
    AMBIENT_INTENSITY.with(|c| c.get())
}

/// Take (and reset) this thread's ambient fault tallies.
pub fn take_ambient_stats() -> FaultStats {
    AMBIENT_STATS.with(|c| c.replace(FaultStats::default()))
}

/// Drop and corrupt probabilities implied by an ambient intensity. At
/// intensity 1 every fourth transmission drops and every tenth corrupts —
/// strong enough to flip fragile claims, weak enough that robust ones
/// survive the low end of the grid.
const AMBIENT_DROP_WEIGHT: f64 = 0.25;
const AMBIENT_CORRUPT_WEIGHT: f64 = 0.10;

/// Decide the fate of one transmission under the current ambient
/// intensity, drawing from `rng` and recording the outcome in the
/// thread-local tallies. Callers must skip this entirely when
/// [`ambient_intensity`] is zero so an intensity-0 run stays byte-identical
/// to a run with no chaos harness at all (no extra RNG draws).
pub fn ambient_apply(rng: &mut SimRng) -> FaultOutcome {
    let i = ambient_intensity();
    let outcome = if rng.chance(AMBIENT_DROP_WEIGHT * i) {
        FaultOutcome::Drop
    } else if rng.chance(AMBIENT_CORRUPT_WEIGHT * i) {
        FaultOutcome::Corrupt
    } else {
        FaultOutcome::Pass
    };
    AMBIENT_STATS.with(|c| {
        let mut stats = c.get();
        stats.record(outcome);
        c.set(stats);
    });
    outcome
}

/// Configurable fault injector with drop/corrupt probabilities and a
/// token-bucket rate limiter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultInjector {
    /// Probability in `[0,1]` that a transmission is dropped.
    pub drop_chance: f64,
    /// Probability in `[0,1]` that a transmission is corrupted.
    pub corrupt_chance: f64,
    /// Maximum tokens in the bucket; `None` disables rate limiting.
    pub bucket_capacity: Option<u32>,
    /// Interval at which the bucket refills to capacity.
    pub refill_interval: SimTime,
    tokens: u32,
    last_refill: SimTime,
}

impl Default for FaultInjector {
    fn default() -> Self {
        FaultInjector::none()
    }
}

impl FaultInjector {
    /// An injector that never interferes.
    pub fn none() -> Self {
        FaultInjector {
            drop_chance: 0.0,
            corrupt_chance: 0.0,
            bucket_capacity: None,
            refill_interval: SimTime::from_millis(50),
            tokens: 0,
            last_refill: SimTime::ZERO,
        }
    }

    /// An injector with the given drop and corrupt probabilities.
    pub fn lossy(drop_chance: f64, corrupt_chance: f64) -> Self {
        FaultInjector {
            drop_chance: drop_chance.clamp(0.0, 1.0),
            corrupt_chance: corrupt_chance.clamp(0.0, 1.0),
            ..FaultInjector::none()
        }
    }

    /// An injector whose severity scales with one `intensity` knob in
    /// `[0, 1]` — the mapping the chaos campaign and [`crate::FaultPlan`]
    /// use. Intensity 0 is exactly [`FaultInjector::none`]; from 0.5 a
    /// token-bucket rate limit tightens as intensity grows.
    pub fn at_intensity(intensity: f64) -> Self {
        let i = intensity.clamp(0.0, 1.0);
        if i == 0.0 {
            return FaultInjector::none();
        }
        let injector = FaultInjector::lossy(AMBIENT_DROP_WEIGHT * i, AMBIENT_CORRUPT_WEIGHT * i);
        if i >= 0.5 {
            let capacity = 8 + (256.0 * (1.0 - i)) as u32;
            injector.with_rate_limit(capacity, SimTime::from_millis(50))
        } else {
            injector
        }
    }

    /// Add a token-bucket rate limit of `capacity` transmissions per
    /// `refill_interval`.
    pub fn with_rate_limit(mut self, capacity: u32, refill_interval: SimTime) -> Self {
        self.bucket_capacity = Some(capacity);
        self.refill_interval = refill_interval;
        self.tokens = capacity;
        self
    }

    /// Decide the fate of one transmission occurring at `now`.
    pub fn apply(&mut self, now: SimTime, rng: &mut SimRng) -> FaultOutcome {
        if let Some(cap) = self.bucket_capacity {
            if now.since(self.last_refill) >= self.refill_interval {
                self.tokens = cap;
                self.last_refill = now;
            }
            if self.tokens == 0 {
                return FaultOutcome::RateLimited;
            }
            self.tokens -= 1;
        }
        if rng.chance(self.drop_chance) {
            return FaultOutcome::Drop;
        }
        if rng.chance(self.corrupt_chance) {
            return FaultOutcome::Corrupt;
        }
        FaultOutcome::Pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_always_passes() {
        let mut f = FaultInjector::none();
        let mut rng = SimRng::seed_from_u64(1);
        for i in 0..100 {
            assert_eq!(f.apply(SimTime::from_micros(i), &mut rng), FaultOutcome::Pass);
        }
    }

    #[test]
    fn full_drop_always_drops() {
        let mut f = FaultInjector::lossy(1.0, 0.0);
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(f.apply(SimTime::ZERO, &mut rng), FaultOutcome::Drop);
    }

    #[test]
    fn full_corrupt_always_corrupts() {
        let mut f = FaultInjector::lossy(0.0, 1.0);
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(f.apply(SimTime::ZERO, &mut rng), FaultOutcome::Corrupt);
    }

    #[test]
    fn drop_rate_tracks_probability() {
        let mut f = FaultInjector::lossy(0.15, 0.0);
        let mut rng = SimRng::seed_from_u64(5);
        let drops = (0..10_000)
            .filter(|i| f.apply(SimTime::from_micros(*i), &mut rng) == FaultOutcome::Drop)
            .count();
        assert!((1_300..1_700).contains(&drops), "drops={drops}");
    }

    #[test]
    fn rate_limit_exhausts_and_refills() {
        let mut f = FaultInjector::none().with_rate_limit(2, SimTime::from_millis(10));
        let mut rng = SimRng::seed_from_u64(1);
        let t0 = SimTime::ZERO;
        assert_eq!(f.apply(t0, &mut rng), FaultOutcome::Pass);
        assert_eq!(f.apply(t0, &mut rng), FaultOutcome::Pass);
        assert_eq!(f.apply(t0, &mut rng), FaultOutcome::RateLimited);
        // after refill interval the bucket is full again
        let t1 = SimTime::from_millis(10);
        assert_eq!(f.apply(t1, &mut rng), FaultOutcome::Pass);
    }

    #[test]
    fn probabilities_are_clamped() {
        let f = FaultInjector::lossy(7.0, -2.0);
        assert_eq!(f.drop_chance, 1.0);
        assert_eq!(f.corrupt_chance, 0.0);
    }

    #[test]
    fn at_intensity_scales_from_none_to_harsh() {
        let zero = FaultInjector::at_intensity(0.0);
        assert_eq!(zero.drop_chance, 0.0);
        assert_eq!(zero.bucket_capacity, None);

        let mild = FaultInjector::at_intensity(0.2);
        assert!(mild.drop_chance > 0.0 && mild.drop_chance < 0.1);
        assert_eq!(mild.bucket_capacity, None, "no rate limit below 0.5");

        let harsh = FaultInjector::at_intensity(1.0);
        assert_eq!(harsh.drop_chance, AMBIENT_DROP_WEIGHT);
        assert_eq!(harsh.bucket_capacity, Some(8));

        let mid = FaultInjector::at_intensity(0.5);
        assert!(mid.bucket_capacity.unwrap() > harsh.bucket_capacity.unwrap());
    }

    #[test]
    fn fault_stats_tally_and_merge() {
        let mut s = FaultStats::default();
        s.record(FaultOutcome::Pass);
        s.record(FaultOutcome::Drop);
        s.record(FaultOutcome::Corrupt);
        s.record(FaultOutcome::RateLimited);
        assert_eq!((s.passed, s.dropped, s.corrupted, s.rate_limited), (1, 1, 1, 1));
        assert_eq!(s.faults(), 3);
        assert_eq!(s.total(), 4);
        let mut t = FaultStats::default();
        t.record(FaultOutcome::Drop);
        s.merge(&t);
        assert_eq!(s.dropped, 2);
    }

    #[test]
    fn ambient_guard_restores_and_stats_accumulate() {
        assert_eq!(ambient_intensity(), 0.0);
        let _ = take_ambient_stats();
        {
            let _g = set_ambient_intensity(1.0);
            assert_eq!(ambient_intensity(), 1.0);
            let mut rng = SimRng::seed_from_u64(3);
            for _ in 0..200 {
                ambient_apply(&mut rng);
            }
            // nesting restores the outer value, not zero
            {
                let _inner = set_ambient_intensity(0.25);
                assert_eq!(ambient_intensity(), 0.25);
            }
            assert_eq!(ambient_intensity(), 1.0);
        }
        assert_eq!(ambient_intensity(), 0.0, "guard restores the default");
        let stats = take_ambient_stats();
        assert_eq!(stats.total(), 200);
        assert!(stats.dropped > 20, "intensity 1 drops ~25%: {stats:?}");
        assert_eq!(take_ambient_stats().total(), 0, "take resets");
    }

    #[test]
    fn ambient_intensity_is_clamped() {
        let _g = set_ambient_intensity(7.5);
        assert_eq!(ambient_intensity(), 1.0);
    }
}

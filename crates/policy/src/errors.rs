//! `Display`/`Error` implementations for the crate's error types.

use crate::ast::EvalError;
use crate::cops::PdpError;
use crate::engine::ComplianceError;
use crate::lexer::LexError;
use crate::ontology::OntologyError;
use crate::parser::ParseError;
use core::fmt;

impl fmt::Display for OntologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OntologyError::UnknownAttribute(name) => {
                write!(f, "attribute '{name}' is outside the declared ontology")
            }
            OntologyError::TypeMismatch { attr, expected, got } => {
                write!(f, "attribute '{attr}' is declared {expected:?} but a {got} was supplied")
            }
        }
    }
}
impl std::error::Error for OntologyError {}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Ontology(e) => write!(f, "ontology violation: {e}"),
            EvalError::MissingAttribute(name) => {
                write!(f, "the request does not carry attribute '{name}'")
            }
            EvalError::TypeError { operation, got } => {
                write!(f, "operator '{operation}' cannot be applied to a {got}")
            }
        }
    }
}
impl std::error::Error for EvalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EvalError::Ontology(e) => Some(e),
            _ => None,
        }
    }
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.at, self.message)
    }
}
impl std::error::Error for LexError {}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "{e}"),
            ParseError::Unexpected { at, found, expected } => match found {
                Some(tok) => {
                    write!(f, "parse error at token {at}: found {tok:?}, expected {expected}")
                }
                None => write!(f, "parse error at token {at}: input ended, expected {expected}"),
            },
            ParseError::TrailingTokens { at } => {
                write!(f, "parse error: trailing tokens starting at {at}")
            }
        }
    }
}
impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseError::Lex(e) => Some(e),
            _ => None,
        }
    }
}

impl fmt::Display for ComplianceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComplianceError::Eval(e) => write!(f, "assertion condition failed to evaluate: {e}"),
        }
    }
}
impl std::error::Error for ComplianceError {}

impl fmt::Display for PdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PdpError::UnknownPolicy(name) => write!(f, "no policy named '{name}' is provisioned"),
            PdpError::Eval(e) => write!(f, "policy evaluation failed: {e}"),
        }
    }
}
impl std::error::Error for PdpError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;

    #[test]
    fn parse_errors_render_usefully() {
        let e = parse_expr("a &&").unwrap_err();
        assert!(e.to_string().contains("expected"));
        let e = parse_expr("a $ b").unwrap_err();
        assert!(e.to_string().contains("lex error"));
    }

    #[test]
    fn eval_errors_chain_sources() {
        use std::error::Error;
        let e = EvalError::Ontology(OntologyError::UnknownAttribute("zzz".into()));
        assert!(e.to_string().contains("zzz"));
        assert!(e.source().is_some());
    }

    #[test]
    fn all_are_error_objects() {
        let errors: Vec<Box<dyn std::error::Error>> = vec![
            Box::new(OntologyError::UnknownAttribute("x".into())),
            Box::new(EvalError::MissingAttribute("x".into())),
            Box::new(LexError { at: 0, message: "m".into() }),
            Box::new(ParseError::TrailingTokens { at: 1 }),
            Box::new(PdpError::UnknownPolicy("p".into())),
        ];
        assert_eq!(errors.len(), 5);
    }
}

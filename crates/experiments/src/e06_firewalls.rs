//! E6 — Firewalls: protection vs. innovation (§V.B).
//!
//! Paper claim: "Firewalls change the Internet from a system with
//! transparent packet carriage between all points ... to a 'that which is
//! not permitted is forbidden' network. ... Internet purists have been
//! bemoaning the fact that firewalls inhibit innovation and the
//! introduction of new applications ... but firewalls have not gone away."
//! The proposed alternative: "Firewalls that provide trust-mediated
//! transparency must be designed so that they apply constraints based on
//! who is communicating, as well as (or instead of) what protocols are
//! being run."
//!
//! Measured: a traffic mix of known-good applications, attacks and novel
//! applications from trusted parties, pushed through three border designs.

use tussle_core::{ExperimentReport, Table};
use tussle_net::addr::{Address, AddressOrigin, Asn, Prefix};
use tussle_net::firewall::Firewall;
use tussle_net::packet::{ports, Packet, Protocol};
use tussle_net::{Network, NodeId};
use tussle_sim::{Ctx, Engine, SimRng, SimTime};

/// The three border designs compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BorderDesign {
    /// No firewall: pure transparency.
    Transparent,
    /// Port allowlist, default deny.
    PortAllowlist,
    /// Identity allow set, default deny, no port constraint.
    TrustMediated,
}

impl BorderDesign {
    fn label(self) -> &'static str {
        match self {
            BorderDesign::Transparent => "transparent",
            BorderDesign::PortAllowlist => "port allowlist",
            BorderDesign::TrustMediated => "trust-mediated",
        }
    }
}

/// Aggregate outcome for one design.
#[derive(Debug, Clone, PartialEq)]
pub struct FirewallOutcome {
    /// Fraction of attack flows blocked.
    pub attacks_blocked: f64,
    /// Fraction of known-application flows delivered.
    pub known_apps_ok: f64,
    /// Fraction of NOVEL application flows (from trusted parties)
    /// delivered — the innovation metric.
    pub novel_apps_ok: f64,
}

const TRUSTED: [u64; 3] = [11, 12, 13];

fn world(design: BorderDesign) -> (Network, NodeId, Address, Address) {
    let mut net = Network::new();
    let outside = net.add_host(Asn(1));
    let border = net.add_router(Asn(2));
    let inside = net.add_host(Asn(2));
    net.connect(outside, border, SimTime::from_millis(5), 1_000_000_000);
    net.connect(border, inside, SimTime::from_millis(1), 1_000_000_000);
    let src =
        Address::in_prefix(Prefix::new(0x0a010000, 16), 1, AddressOrigin::ProviderAssigned(Asn(1)));
    let dst =
        Address::in_prefix(Prefix::new(0x0b010000, 16), 1, AddressOrigin::ProviderAssigned(Asn(2)));
    net.node_mut(outside).bind(src);
    net.node_mut(inside).bind(dst);
    net.fib_mut(outside).install(Prefix::DEFAULT, border, 0);
    net.fib_mut(border).install(Prefix::new(0x0b010000, 16), inside, 0);
    match design {
        BorderDesign::Transparent => {}
        BorderDesign::PortAllowlist => {
            net.set_firewall(
                border,
                Firewall::port_allowlist(vec![ports::HTTP, ports::SMTP], "admin"),
            );
        }
        BorderDesign::TrustMediated => {
            net.set_firewall(border, Firewall::trust_mediated(TRUSTED.to_vec(), "end-user"));
        }
    }
    (net, outside, src, dst)
}

/// One design's workload tallies, threaded through its event chain.
struct DesignTally {
    net: Network,
    outside: NodeId,
    src: Address,
    dst: Address,
    sent: usize,
    known_ok: usize,
    attacks_through: usize,
    novel_ok: usize,
}

impl DesignTally {
    fn new(design: BorderDesign) -> Self {
        let (net, outside, src, dst) = world(design);
        DesignTally {
            net,
            outside,
            src,
            dst,
            sent: 0,
            known_ok: 0,
            attacks_through: 0,
            novel_ok: 0,
        }
    }
}

/// Push `n` known/attack/novel flow triples through the border.
fn flow_batch(t: &mut DesignTally, n: usize, rng: &mut SimRng) {
    for i in t.sent..t.sent + n {
        // known application from a trusted party
        let known = Packet::new(t.src, t.dst, Protocol::Tcp, 1000, ports::HTTP)
            .with_identity(TRUSTED[i % TRUSTED.len()]);
        if t.net.send(t.outside, known, rng).delivered {
            t.known_ok += 1;
        }
        // attack: anonymous, probing a port the attacker picks (sometimes a
        // well-known one — port filters cannot tell exploit from use)
        let attack_port = if rng.chance(0.5) { ports::HTTP } else { rng.range(1024..u16::MAX) };
        let attack = Packet::new(t.src, t.dst, Protocol::Tcp, 666, attack_port);
        if t.net.send(t.outside, attack, rng).delivered {
            t.attacks_through += 1;
        }
        // novel application from a trusted party on an unheard-of port
        let novel = Packet::new(t.src, t.dst, Protocol::Udp, 2000, ports::NOVEL)
            .with_identity(TRUSTED[i % TRUSTED.len()]);
        if t.net.send(t.outside, novel, rng).delivered {
            t.novel_ok += 1;
        }
    }
    t.sent += n;
}

fn outcome_of(t: &DesignTally) -> FirewallOutcome {
    FirewallOutcome {
        attacks_blocked: 1.0 - t.attacks_through as f64 / t.sent as f64,
        known_apps_ok: t.known_ok as f64 / t.sent as f64,
        novel_apps_ok: t.novel_ok as f64 / t.sent as f64,
    }
}

/// Run one design over a mixed workload (the pure loop the unit tests
/// drive; [`run`] replays it as paced engine-event bursts).
pub fn run_design(design: BorderDesign, n_each: usize, seed: u64) -> FirewallOutcome {
    let mut rng = SimRng::seed_from_u64(seed).fork("e06");
    let mut t = DesignTally::new(design);
    flow_batch(&mut t, n_each, &mut rng);
    outcome_of(&t)
}

/// World for the engine-driven replay: settled outcomes per design.
#[derive(Default)]
struct BorderWorld {
    outcomes: Vec<(BorderDesign, FirewallOutcome)>,
}

/// Flow triples per burst event in the engine replay.
const BURST: usize = 40;
/// Total flow triples per design.
const N_EACH: usize = 200;

/// One paced traffic burst as an engine event, chaining to the next burst.
fn run_burst(
    w: &mut BorderWorld,
    ctx: &mut Ctx<BorderWorld>,
    design: BorderDesign,
    mut t: DesignTally,
) {
    ctx.span_enter(
        "e6.burst",
        Some("provider"),
        &[("design", design.label()), ("sent", &t.sent.to_string())],
    );
    let n = BURST.min(N_EACH - t.sent);
    flow_batch(&mut t, n, ctx.rng);
    if t.sent < N_EACH {
        let lag = SimTime::from_micros(ctx.rng.range(100..5_000u64));
        ctx.trace_fields(
            "e6.pacing",
            Some("provider"),
            &[("lag_us", &lag.as_micros().to_string())],
            format!("{} flow triples pushed; next burst follows", t.sent),
        );
        ctx.span_exit(&[("attacks_through", &t.attacks_through.to_string())]);
        ctx.schedule_in(lag, move |w2: &mut BorderWorld, ctx2| {
            run_burst(w2, ctx2, design, t);
        });
    } else {
        let o = outcome_of(&t);
        ctx.trace_fields(
            "e6.settled",
            Some("user"),
            &[("novel_apps_ok", &format!("{:.2}", o.novel_apps_ok))],
            format!("{} border settles", design.label()),
        );
        ctx.span_exit(&[("attacks_through", &t.attacks_through.to_string())]);
        w.outcomes.push((design, o));
    }
}

/// Run E6 and produce the report. Each border design's workload runs as a
/// causal chain of burst events on the shared engine clock.
pub fn run(seed: u64) -> ExperimentReport {
    let designs =
        [BorderDesign::Transparent, BorderDesign::PortAllowlist, BorderDesign::TrustMediated];
    let mut eng = Engine::new(BorderWorld::default(), seed);
    for (i, design) in designs.into_iter().enumerate() {
        // Each border design is a root injection.
        eng.schedule_at(SimTime::from_millis(i as u64), move |w: &mut BorderWorld, ctx| {
            run_burst(w, ctx, design, DesignTally::new(design));
        });
    }
    eng.run_to_completion();

    let mut table = Table::new(
        "Border designs against a mixed workload (200 flows of each class)",
        &["attacks blocked", "known apps delivered", "novel apps delivered"],
    );
    let mut outcomes = Vec::new();
    for d in designs {
        let o = eng
            .world
            .outcomes
            .iter()
            .find(|(dd, _)| *dd == d)
            .map(|(_, o)| o.clone())
            .expect("every design settles");
        table.push_row(
            d.label(),
            &[
                format!("{:.2}", o.attacks_blocked),
                format!("{:.2}", o.known_apps_ok),
                format!("{:.2}", o.novel_apps_ok),
            ],
        );
        outcomes.push(o);
    }
    let (open, port, trust) = (&outcomes[0], &outcomes[1], &outcomes[2]);
    // Shape: transparency = no protection, full innovation. Port filters =
    // partial protection (attacks on allowed ports still pass), zero
    // innovation. Trust mediation = full protection against anonymous
    // attacks AND full innovation for trusted parties.
    let shape_holds = open.attacks_blocked < 0.01
        && open.novel_apps_ok > 0.99
        && port.attacks_blocked > 0.3
        && port.attacks_blocked < 0.9
        && port.novel_apps_ok < 0.01
        && trust.attacks_blocked > 0.99
        && trust.novel_apps_ok > 0.99;

    ExperimentReport {
        id: "E6".into(),
        section: "V.B".into(),
        paper_claim: "Port-keyed default-deny firewalls buy partial protection at the price of \
                      killing novel applications; trust-mediated firewalls key on who is \
                      communicating and protect without foreclosing innovation."
            .into(),
        summary: format!(
            "attacks blocked / novel apps delivered: transparent {:.0}%/{:.0}%, port filter \
             {:.0}%/{:.0}%, trust-mediated {:.0}%/{:.0}%.",
            open.attacks_blocked * 100.0,
            open.novel_apps_ok * 100.0,
            port.attacks_blocked * 100.0,
            port.novel_apps_ok * 100.0,
            trust.attacks_blocked * 100.0,
            trust.novel_apps_ok * 100.0,
        ),
        table,
        shape_holds,
        cost: None,
        scoreboard: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transparency_trades_protection_for_innovation() {
        let o = run_design(BorderDesign::Transparent, 50, 1);
        assert_eq!(o.attacks_blocked, 0.0);
        assert_eq!(o.novel_apps_ok, 1.0);
    }

    #[test]
    fn port_filters_kill_novel_apps() {
        let o = run_design(BorderDesign::PortAllowlist, 50, 1);
        assert_eq!(o.novel_apps_ok, 0.0);
        assert_eq!(o.known_apps_ok, 1.0);
        assert!(o.attacks_blocked > 0.2 && o.attacks_blocked < 0.9, "{}", o.attacks_blocked);
    }

    #[test]
    fn trust_mediation_gets_both() {
        let o = run_design(BorderDesign::TrustMediated, 50, 1);
        assert_eq!(o.attacks_blocked, 1.0);
        assert_eq!(o.novel_apps_ok, 1.0);
        assert_eq!(o.known_apps_ok, 1.0);
    }

    #[test]
    fn report_shape_holds() {
        let r = run(1);
        assert!(r.shape_holds, "{}", r.summary);
    }
}

//! The recovery oracle across the full experiment registry.
//!
//! Every experiment is run three ways per cell — uninterrupted golden,
//! crash-injected at a seeded engine-event index, and resumed from the
//! last surviving checkpoint — and the resumed report must be
//! byte-identical to the golden. The sweep must also be deterministic in
//! the thread grid: the same report JSON regardless of worker count.

use tussle_experiments::{registry, run_recovery, RecoveryConfig};

fn full_cfg(threads: usize) -> RecoveryConfig {
    RecoveryConfig { threads: Some(threads), ..RecoveryConfig::default() }
}

#[test]
fn every_experiment_recovers_across_the_default_sweep() {
    // Default config: 2 seeds x 1 kill point over all 17 experiments —
    // a 34-cell grid.
    let report = run_recovery(&full_cfg(2)).expect("valid config");
    assert_eq!(report.cells.len(), registry().len() * 2);
    assert!(
        report.all_recovered(),
        "unrecovered cells: {:#?}",
        report.failures().collect::<Vec<_>>()
    );

    // Crash injection bites everywhere: every registry experiment now
    // schedules engine events, so no cell is vacuous and every cell must
    // have crashed mid-run before recovering.
    let crashed = report.cells.iter().filter(|c| c.crashed).count();
    let vacuous = report.cells.iter().filter(|c| c.kill_at.is_none()).count();
    assert_eq!(crashed, report.cells.len(), "every cell crashes mid-run");
    assert_eq!(vacuous, 0, "no experiment is event-free anymore");
    assert!(report.cells.iter().all(|c| c.golden_events > 0));
}

#[test]
fn the_sweep_is_identical_across_thread_counts() {
    let reports: Vec<String> = [1usize, 2, 8]
        .iter()
        .map(|&threads| {
            let cfg = RecoveryConfig { seeds: 1, ..full_cfg(threads) };
            run_recovery(&cfg).expect("valid config").to_json()
        })
        .collect();
    assert_eq!(reports[0], reports[1], "threads 1 vs 2 diverge");
    assert_eq!(reports[0], reports[2], "threads 1 vs 8 diverge");
}

//! Collection strategies (`proptest::collection::vec`).

use crate::{Strategy, TestRng};
use core::ops::{Range, RangeInclusive};

/// A size specification for generated collections: an exact length, or an
/// exclusive/inclusive range of lengths.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(!r.is_empty(), "empty size range");
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

/// Strategy generating `Vec`s of values from `element`, with a length drawn
/// from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_all_size_forms() {
        let mut rng = TestRng::for_case("sizes", 0);
        for _ in 0..100 {
            assert_eq!(vec(0u8..4, 3).generate(&mut rng).len(), 3);
            let open = vec(0u8..4, 1..5).generate(&mut rng).len();
            assert!((1..5).contains(&open));
            let closed = vec(0u8..4, 2..=2).generate(&mut rng).len();
            assert_eq!(closed, 2);
        }
    }

    #[test]
    fn nested_vecs_work() {
        let mut rng = TestRng::for_case("nested", 0);
        let grid = vec(vec(0u8..10, 2..=2), 2..=2).generate(&mut rng);
        assert_eq!(grid.len(), 2);
        assert_eq!(grid[0].len(), 2);
    }
}

//! Reproducible randomness.
//!
//! Determinism is a design requirement: the same seed must produce the same
//! tussle outcome tables on every platform and every run. `StdRng` does not
//! promise a stable stream across `rand` releases, so we pin ChaCha8, which
//! does. Forking lets independent subsystems (market, link faults, attack
//! generator, ...) draw from decorrelated streams without sharing a mutable
//! handle.

use crate::obs;
use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A seeded, forkable random stream for simulations.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: ChaCha8Rng,
}

impl SimRng {
    /// Create a stream from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng { inner: ChaCha8Rng::seed_from_u64(seed) }
    }

    /// Derive an independent stream labelled by `label`.
    ///
    /// Forks of the same parent with different labels are decorrelated;
    /// forks with the same label from the same parent state are identical,
    /// which is what makes subsystem wiring order-insensitive.
    pub fn fork(&self, label: &str) -> SimRng {
        // Mix the label into the parent's seed with FNV-1a; cheap, stable,
        // and good enough to decorrelate ChaCha streams.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.inner.get_seed().iter().chain(label.as_bytes()) {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        SimRng::seed_from_u64(h)
    }

    /// The raw 32-byte seed of the underlying stream. With
    /// [`SimRng::word_pos`] this pins the generator's exact state — what
    /// checkpoints record instead of the (unserializable) buffer.
    pub fn seed(&self) -> [u8; 32] {
        self.inner.get_seed()
    }

    /// 32-bit words consumed from the stream so far. Deterministic for a
    /// given seed and draw sequence; the checkpoint/restore position.
    pub fn word_pos(&self) -> u64 {
        self.inner.word_pos()
    }

    /// Reposition the stream to an absolute consumed-word count. Seeking
    /// is O(1) and exact: the remaining stream is bit-identical to a
    /// generator that consumed `pos` words one by one. Not an observed
    /// draw — restore must not perturb the run it reconstructs.
    pub fn set_word_pos(&mut self, pos: u64) {
        self.inner.set_word_pos(pos);
    }

    /// Uniform sample from a range.
    pub fn range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        obs::on_rng_draw();
        self.inner.gen_range(range)
    }

    /// A uniform probability draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        obs::on_rng_draw();
        self.inner.gen::<f64>()
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// Pick a uniformly random element of a slice. Returns `None` on empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            let i = self.range(0..items.len());
            items.get(i)
        }
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range(0..=i);
            items.swap(i, j);
        }
    }

    /// Sample from an exponential distribution with the given mean.
    ///
    /// Used for Poisson arrival processes (new-entrant churn, attack
    /// arrivals). Mean must be positive.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        let u: f64 = 1.0 - self.unit(); // avoid ln(0)
        -mean * u.ln()
    }

    /// Sample a normally distributed value via Box–Muller.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1: f64 = 1.0 - self.unit();
        let u2: f64 = self.unit();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mean + std_dev * z
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        obs::on_rng_draw();
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        obs::on_rng_draw();
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        obs::on_rng_draw();
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be decorrelated, {same} collisions");
    }

    #[test]
    fn forks_are_deterministic_and_distinct() {
        let parent = SimRng::seed_from_u64(42);
        let mut f1 = parent.fork("market");
        let mut f1b = parent.fork("market");
        let mut f2 = parent.fork("faults");
        assert_eq!(f1.next_u64(), f1b.next_u64());
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from_u64(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn chance_frequency_tracks_p() {
        let mut r = SimRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits={hits}");
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = SimRng::seed_from_u64(11);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| r.exponential(5.0)).sum();
        let mean = total / n as f64;
        assert!((4.7..5.3).contains(&mean), "mean={mean}");
    }

    #[test]
    fn normal_moments_are_close() {
        let mut r = SimRng::seed_from_u64(13);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((9.9..10.1).contains(&mean), "mean={mean}");
        assert!((3.6..4.4).contains(&var), "var={var}");
    }

    #[test]
    fn draws_are_counted_under_obs_scope() {
        let g = crate::obs::begin(crate::obs::ObsMode::Cost);
        let mut r = SimRng::seed_from_u64(5);
        r.unit();
        r.range(0..10);
        assert!(!r.chance(0.0), "degenerate chance draws nothing");
        assert!(r.chance(1.0), "degenerate chance draws nothing");
        r.chance(0.5);
        let rec = g.finish();
        assert_eq!(rec.rng_draws, 3);
    }

    #[test]
    fn word_pos_roundtrips_through_seed_and_position() {
        let mut a = SimRng::seed_from_u64(21);
        for _ in 0..7 {
            a.unit();
            a.range(0..1000u64);
        }
        let pos = a.word_pos();
        assert!(pos > 0);
        // A fresh stream from the same seed, seeked to the same position,
        // continues identically.
        let mut b = SimRng::seed_from_u64(21);
        assert_eq!(b.seed(), a.seed());
        b.set_word_pos(pos);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn set_word_pos_is_not_an_observed_draw() {
        let g = crate::obs::begin(crate::obs::ObsMode::Cost);
        let mut r = SimRng::seed_from_u64(4);
        r.unit();
        let pos = r.word_pos();
        r.set_word_pos(pos);
        let _ = r.seed();
        let rec = g.finish();
        assert_eq!(rec.rng_draws, 1, "position bookkeeping must not count as draws");
    }

    #[test]
    fn pick_and_shuffle() {
        let mut r = SimRng::seed_from_u64(17);
        let empty: [u8; 0] = [];
        assert!(r.pick(&empty).is_none());
        let items = [1, 2, 3];
        assert!(items.contains(r.pick(&items).unwrap()));
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle must be a permutation");
        assert_ne!(v, orig, "50 elements should not shuffle to identity");
    }
}

//! The headline demo: tussle at RUN TIME (§II).
//!
//! "What is distinctive (though certainly not unique) about the Internet is
//! that the tussle continues in large part while the system is in use."
//!
//! This example runs one network for twelve simulated weeks. Nothing is
//! recompiled and no topology changes; the *parties* change their
//! mechanisms while traffic flows, and the weekly statistics show each
//! move landing:
//!
//! * weeks 0-2 — transparent network, P2P and VoIP both flow;
//! * week 3 — the rights-holder lobby gets the ISP to filter the P2P port;
//! * week 5 — users respond with steganography; the filter goes blind;
//! * week 7 — the ISP deploys port-keyed premium QoS for its own VoIP;
//! * week 9 — users encrypt *everything*; port-keyed QoS collapses too;
//! * week 11 — the ISP capitulates to ToS-keyed QoS (the §IV.A design),
//!   premium service returns, and the remaining tussles are isolated.
//!
//! ```sh
//! cargo run --release --example runtime_tussle
//! ```

use tussle::net::addr::{Address, AddressOrigin, Asn, Prefix};
use tussle::net::packet::{ports, Packet, Protocol};
use tussle::net::{Firewall, FirewallAction, FirewallRule, MatchOn, Network, NodeId, QosPolicy};
use tussle::sim::{SimRng, SimTime};

const WEEK_MS: u64 = 1_000; // one simulated "week" = 1s of virtual time

struct World {
    net: Network,
    user: NodeId,
    isp: NodeId,
    src: Address,
    dst: Address,
}

fn build() -> World {
    let mut net = Network::new();
    let user = net.add_host(Asn(1));
    let isp = net.add_router(Asn(1));
    let remote = net.add_host(Asn(2));
    net.connect(user, isp, SimTime::from_millis(2), 1_000_000_000);
    net.connect(isp, remote, SimTime::from_millis(20), 1_000_000_000);
    let src =
        Address::in_prefix(Prefix::new(0x0a010000, 16), 1, AddressOrigin::ProviderAssigned(Asn(1)));
    let dst =
        Address::in_prefix(Prefix::new(0x0b010000, 16), 1, AddressOrigin::ProviderAssigned(Asn(2)));
    net.node_mut(user).bind(src);
    net.node_mut(remote).bind(dst);
    net.fib_mut(user).install(Prefix::DEFAULT, isp, 0);
    net.fib_mut(isp).install(Prefix::new(0x0b010000, 16), remote, 0);
    World { net, user, isp, src, dst }
}

#[derive(Clone, Copy, Default)]
struct UserPosture {
    stego_p2p: bool,
    encrypt_all: bool,
}

fn main() {
    let mut w = build();
    let mut rng = SimRng::seed_from_u64(2002);
    let mut posture = UserPosture::default();

    println!("| week | move | p2p ok | voip ok | voip latency (ms) |");
    println!("|---|---|---|---|---|");

    for week in 0u64..12 {
        // --- the tussle moves, at run time -----------------------------
        let event = match week {
            3 => {
                let mut fw = Firewall::transparent();
                fw.push(FirewallRule {
                    matcher: MatchOn::DstPort(ports::P2P),
                    action: FirewallAction::Deny,
                    installed_by: "rights-holder pressure".into(),
                });
                w.net.set_firewall(w.isp, fw);
                "ISP filters the P2P port"
            }
            5 => {
                posture.stego_p2p = true;
                "users wrap P2P in steganography"
            }
            7 => {
                w.net.set_qos(w.isp, QosPolicy::port_based(vec![ports::VOIP], 0.3));
                "ISP adds port-keyed premium for ITS voip"
            }
            9 => {
                posture.encrypt_all = true;
                "users encrypt everything"
            }
            11 => {
                w.net.set_qos(w.isp, QosPolicy::tos_based(4, 0.3));
                "ISP capitulates: ToS-keyed QoS (§IV.A)"
            }
            _ => "-",
        };

        // --- a week of traffic under the current mechanisms ------------
        let now = SimTime::from_millis(week * WEEK_MS);
        let mut p2p_ok = 0;
        let mut voip_ok = 0;
        let mut voip_latency_ms = 0.0;
        let n = 50;
        for _ in 0..n {
            let mut p2p = Packet::new(w.src, w.dst, Protocol::Tcp, 4000, ports::P2P);
            if posture.stego_p2p {
                p2p = p2p.steganographic();
            } else if posture.encrypt_all {
                p2p = p2p.encrypt();
            }
            if w.net.send_at(w.user, p2p, now, &mut rng).delivered {
                p2p_ok += 1;
            }

            let mut voip = Packet::new(w.src, w.dst, Protocol::Udp, 9000, ports::VOIP).with_tos(5);
            if posture.encrypt_all {
                voip = voip.encrypt();
            }
            let rep = w.net.send_at(w.user, voip, now, &mut rng);
            if rep.delivered {
                voip_ok += 1;
                voip_latency_ms += rep.latency.as_millis_f64();
            }
        }
        println!(
            "| {week} | {event} | {p2p_ok}/{n} | {voip_ok}/{n} | {:.1} |",
            voip_latency_ms / voip_ok.max(1) as f64
        );
    }

    println!();
    println!(
        "Read the latency column: 22ms best-effort, 8.0ms when the port-keyed premium \
         sees VoIP (week 7-8), back to 22ms when encryption blinds it (week 9-10), and \
         8.0ms again — encrypted! — once QoS keys on ToS bits (week 11). The filter \
         column tells the same story for the rights-holder tussle. No outcome was \
         designed; the playing field was."
    );
}

//! The design principles applied across crates: tussle spaces, the
//! mechanism catalog, escalation, and the analyzers working against real
//! substrate output.

use std::collections::BTreeMap;
use tussle::actors::{ActorKind, ActorNetwork, ChurnProcess, FreezeDetector};
use tussle::core::space::entangled_functions;
use tussle::core::{
    choice_index, spillover, visibility_index, EscalationLadder, Mechanism, Stakeholder,
    StakeholderKind, TussleSpace, TussleSpaceKind,
};
use tussle::names::namespace::{Name, Registry};
use tussle::names::resolver::Resolver;
use tussle::sim::SimRng;

#[test]
fn the_cast_of_section_one_is_in_tussle() {
    let everyone: Vec<Stakeholder> = [
        StakeholderKind::User,
        StakeholderKind::CommercialIsp,
        StakeholderKind::Government,
        StakeholderKind::RightsHolder,
        StakeholderKind::ContentProvider,
    ]
    .into_iter()
    .enumerate()
    .map(|(i, k)| Stakeholder::typical(i as u64, k))
    .collect();

    // "There is contention among the players": the user conflicts with
    // every commercial/state party in the cast.
    let user = &everyone[0];
    for other in &everyone[1..3] {
        assert!(!user.conflicts_with(other).is_empty(), "user vs {:?}", other.kind);
    }
    // and the canonical spaces catch those conflicts
    let spaces = TussleSpace::canonical();
    for s in &spaces {
        assert!(
            everyone.iter().filter(|p| s.involves(p)).count() >= 2,
            "{:?} needs at least two parties",
            s.kind
        );
    }
}

#[test]
fn every_escalation_ladder_terminates_and_stays_in_catalog() {
    for opening in [
        Mechanism::PortFirewall,
        Mechanism::ValuePricing,
        Mechanism::QosPortBased,
        Mechanism::Encryption,
        Mechanism::ProviderRouting,
        Mechanism::Anonymity,
        Mechanism::DnsPerversion,
    ] {
        let ladder = EscalationLadder::play_to_the_end(opening, 16);
        assert!(ladder.ended_terminal(), "{opening:?} ladder must reach quiescence");
        assert!(ladder.steps.len() <= 5, "{opening:?} ladder suspiciously long");
        // each consecutive move is a legal counter
        for w in ladder.steps.windows(2) {
            assert!(
                w[0].mechanism.countered_by().contains(&w[1].mechanism),
                "{:?} -> {:?} is not a legal counter",
                w[0].mechanism,
                w[1].mechanism
            );
        }
    }
}

#[test]
fn dns_perversion_vs_resolver_choice_measured_by_the_analyzers() {
    let mut reg = Registry::new();
    let name = Name::parse("example.com").unwrap();
    reg.register(name.clone(), 1, 0xAA, false).unwrap();

    let mut isp_resolver =
        Resolver::perverted(BTreeMap::from([(name.clone(), 0xDEAD)]), Some(0xAD));
    let mut honest = Resolver::honest();

    // one resolver: no choice, lies hidden
    let monopoly_choice = choice_index(&[1]);
    assert_eq!(monopoly_choice, 0.0);
    assert!(isp_resolver.lies_about(&name, &reg));

    // two resolvers: choice restores truth
    let with_choice = choice_index(&[2]);
    assert_eq!(with_choice, 1.0);
    assert_eq!(honest.resolve(&name, &reg), Some(0xAA));

    // visibility: the perversion is silent (the user was not told), the
    // honest answer needs no disclosure
    assert_eq!(visibility_index(&[false]), 0.0);

    // spillover of the perversion into reachability: user aimed at 0xAA,
    // got 0xDEAD — complete distortion
    let truth = 0xAA as f64;
    let lie = isp_resolver.resolve(&name, &reg).unwrap() as f64;
    assert!(spillover(truth, lie) > 1.0);
}

#[test]
fn modularity_check_flags_the_dns_and_clears_the_separated_design() {
    let mut naming = TussleSpace::new(TussleSpaceKind::Naming, vec![]);
    let mut economics = TussleSpace::new(TussleSpaceKind::Economics, vec![]);
    // the entangled world: DNS names carry machine naming AND brand value
    naming.assign("dns-names");
    economics.assign("dns-names");
    assert_eq!(entangled_functions(&[naming.clone(), economics.clone()]), vec!["dns-names"]);

    // the separated world
    let mut naming2 = TussleSpace::new(TussleSpaceKind::Naming, vec![]);
    let mut economics2 = TussleSpace::new(TussleSpaceKind::Economics, vec![]);
    naming2.assign("machine-ids");
    economics2.assign("trademark-directory");
    assert!(entangled_functions(&[naming2, economics2]).is_empty());
}

#[test]
fn actor_network_reacts_to_the_experiments_conclusions() {
    // a miniature of E12 wired by hand: the freeze detector and churn agree
    let mut rng = SimRng::seed_from_u64(3);
    let mut net = ActorNetwork::new(2);
    let a = net.add_actor(ActorKind::Human, "users", vec![1.0, 0.0]);
    let b = net.add_actor(ActorKind::Technology, "tcp", vec![0.0, 1.0]);
    net.align(a, b, 0.8);
    let mut churn = ChurnProcess::new(0.0);
    let mut det = FreezeDetector::new(0.05, 10);
    let mut frozen_at = None;
    for step in 0..300 {
        let admitted = churn.step(&mut net, &mut rng);
        if det.observe(admitted, net.tussle_energy()) && frozen_at.is_none() {
            frozen_at = Some(step);
        }
    }
    let frozen = frozen_at.expect("a closed network freezes");
    assert!(frozen < 200);
    assert!(net.durability() > 0.8, "and what froze is durable");
}

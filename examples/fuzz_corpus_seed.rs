//! Dev utility: (re)generate the seeded near-miss corpus entry committed
//! under `tests/corpus/`.
//!
//! The fuzzer's corpus holds three kinds of entry (see
//! `tussle_experiments::fuzz::CorpusEntry`): `violation` repros the
//! shrinker minimized, `regression` entries for fixed bugs, and
//! `near-miss` entries — scenarios that compose enough hostile ingredients
//! (faults, outages, firewalls, NAT, contracts) to be worth pinning even
//! though every oracle passes. This example deterministically regenerates
//! the committed near-miss entry, re-checks that it is still green, and
//! prints the JSON plus its stable filename:
//!
//! ```sh
//! cargo run --release --example fuzz_corpus_seed > tests/corpus/$(cargo run --release --example fuzz_corpus_seed 2>&1 >/dev/null)
//! ```
//!
//! (stdout is the entry body; stderr is the filename.)

use tussle::experiments::fuzz::{check_oracle, generate, run_scenario, CorpusEntry, ORACLES};
use tussle::sim::SimRng;

fn main() {
    // The seed is part of the contract: the committed entry must be
    // byte-reproducible from this exact derivation. 2012 was picked by
    // scanning nearby seeds for a scenario that both delivers and drops
    // traffic under faults — hairy enough to be worth pinning.
    let mut rng = SimRng::seed_from_u64(2012).fork("corpus-near-miss");
    let scenario = generate(&mut rng);

    let outcome = run_scenario(&scenario);
    assert!(
        outcome.violations.is_empty(),
        "near-miss entry must be green, got {:?}",
        outcome.violations
    );
    for (oracle, _) in ORACLES {
        assert!(
            check_oracle(&scenario, oracle).is_none(),
            "near-miss entry must pass the {oracle} oracle"
        );
    }

    let entry = CorpusEntry {
        schema: tussle::experiments::fuzz::CORPUS_SCHEMA,
        kind: "near-miss".to_owned(),
        oracle: None,
        detail: Some(format!(
            "seeded composition (seed 2012, fork corpus-near-miss): {} elements, \
             {} delivered / {} dropped, digest {} — green on all {} oracles",
            scenario.elements.len(),
            outcome.delivered,
            outcome.dropped,
            outcome.digest,
            ORACLES.len(),
        )),
        scenario,
    };

    eprintln!("{}", entry.filename());
    println!("{}", serde_json::to_string_pretty(&entry).expect("entries serialize"));
}

//! Fault injection.
//!
//! Mirrors the knobs of smoltcp's example harness: random drop, random
//! corruption, and a token-bucket rate limit. Links and middleboxes consult
//! a [`FaultInjector`] on every transmission; experiments use it both to
//! model unreliable infrastructure and as a *tussle mechanism* (an ISP
//! throttling traffic it dislikes is exactly a selective fault injector).

use crate::rng::SimRng;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Outcome of passing a transmission through a fault injector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultOutcome {
    /// Deliver unmodified.
    Pass,
    /// Deliver, but one octet was flipped.
    Corrupt,
    /// Silently dropped.
    Drop,
    /// Dropped by the rate limiter.
    RateLimited,
}

/// Configurable fault injector with drop/corrupt probabilities and a
/// token-bucket rate limiter.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultInjector {
    /// Probability in `[0,1]` that a transmission is dropped.
    pub drop_chance: f64,
    /// Probability in `[0,1]` that a transmission is corrupted.
    pub corrupt_chance: f64,
    /// Maximum tokens in the bucket; `None` disables rate limiting.
    pub bucket_capacity: Option<u32>,
    /// Interval at which the bucket refills to capacity.
    pub refill_interval: SimTime,
    tokens: u32,
    last_refill: SimTime,
}

impl Default for FaultInjector {
    fn default() -> Self {
        FaultInjector::none()
    }
}

impl FaultInjector {
    /// An injector that never interferes.
    pub fn none() -> Self {
        FaultInjector {
            drop_chance: 0.0,
            corrupt_chance: 0.0,
            bucket_capacity: None,
            refill_interval: SimTime::from_millis(50),
            tokens: 0,
            last_refill: SimTime::ZERO,
        }
    }

    /// An injector with the given drop and corrupt probabilities.
    pub fn lossy(drop_chance: f64, corrupt_chance: f64) -> Self {
        FaultInjector {
            drop_chance: drop_chance.clamp(0.0, 1.0),
            corrupt_chance: corrupt_chance.clamp(0.0, 1.0),
            ..FaultInjector::none()
        }
    }

    /// Add a token-bucket rate limit of `capacity` transmissions per
    /// `refill_interval`.
    pub fn with_rate_limit(mut self, capacity: u32, refill_interval: SimTime) -> Self {
        self.bucket_capacity = Some(capacity);
        self.refill_interval = refill_interval;
        self.tokens = capacity;
        self
    }

    /// Decide the fate of one transmission occurring at `now`.
    pub fn apply(&mut self, now: SimTime, rng: &mut SimRng) -> FaultOutcome {
        if let Some(cap) = self.bucket_capacity {
            if now.since(self.last_refill) >= self.refill_interval {
                self.tokens = cap;
                self.last_refill = now;
            }
            if self.tokens == 0 {
                return FaultOutcome::RateLimited;
            }
            self.tokens -= 1;
        }
        if rng.chance(self.drop_chance) {
            return FaultOutcome::Drop;
        }
        if rng.chance(self.corrupt_chance) {
            return FaultOutcome::Corrupt;
        }
        FaultOutcome::Pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_always_passes() {
        let mut f = FaultInjector::none();
        let mut rng = SimRng::seed_from_u64(1);
        for i in 0..100 {
            assert_eq!(f.apply(SimTime::from_micros(i), &mut rng), FaultOutcome::Pass);
        }
    }

    #[test]
    fn full_drop_always_drops() {
        let mut f = FaultInjector::lossy(1.0, 0.0);
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(f.apply(SimTime::ZERO, &mut rng), FaultOutcome::Drop);
    }

    #[test]
    fn full_corrupt_always_corrupts() {
        let mut f = FaultInjector::lossy(0.0, 1.0);
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(f.apply(SimTime::ZERO, &mut rng), FaultOutcome::Corrupt);
    }

    #[test]
    fn drop_rate_tracks_probability() {
        let mut f = FaultInjector::lossy(0.15, 0.0);
        let mut rng = SimRng::seed_from_u64(5);
        let drops = (0..10_000)
            .filter(|i| f.apply(SimTime::from_micros(*i), &mut rng) == FaultOutcome::Drop)
            .count();
        assert!((1_300..1_700).contains(&drops), "drops={drops}");
    }

    #[test]
    fn rate_limit_exhausts_and_refills() {
        let mut f = FaultInjector::none().with_rate_limit(2, SimTime::from_millis(10));
        let mut rng = SimRng::seed_from_u64(1);
        let t0 = SimTime::ZERO;
        assert_eq!(f.apply(t0, &mut rng), FaultOutcome::Pass);
        assert_eq!(f.apply(t0, &mut rng), FaultOutcome::Pass);
        assert_eq!(f.apply(t0, &mut rng), FaultOutcome::RateLimited);
        // after refill interval the bucket is full again
        let t1 = SimTime::from_millis(10);
        assert_eq!(f.apply(t1, &mut rng), FaultOutcome::Pass);
    }

    #[test]
    fn probabilities_are_clamped() {
        let f = FaultInjector::lossy(7.0, -2.0);
        assert_eq!(f.drop_chance, 1.0);
        assert_eq!(f.corrupt_chance, 0.0);
    }
}

//! Property tests for the deterministic exporters (DESIGN.md §10): any
//! observed action stream renders to byte-identical Chrome trace JSON,
//! Prometheus exposition and JSONL on replay, the Chrome event stream is
//! structurally valid (balanced `B`/`E`, monotone virtual timestamps), and
//! the stakeholder fold the Prometheus exposition renders conserves the
//! run's trace-entry count.

use proptest::prelude::*;
use tussle_sim::obs::{self, ObsMode, RunRecord};
use tussle_sim::{to_chrome, to_jsonl, to_prometheus, SimTime};

/// One random action against an observed run: a point event, a span enter
/// (optionally annotated with a stakeholder lane), a span exit, or a
/// metric counter write.
#[derive(Debug, Clone)]
enum Action {
    Event(u64, String),
    Enter(u64, String, Option<String>),
    Exit(u64),
    Metric(String, u64),
}

fn arb_actions() -> impl Strategy<Value = Vec<Action>> {
    let action = prop_oneof![
        (0u64..500, "[a-z]{1,6}\\.[a-z]{1,6}").prop_map(|(d, t)| Action::Event(d, t)),
        (0u64..500, "[a-z]{1,6}\\.[a-z]{1,6}", 0u8..3, "[a-z]{1,5}")
            .prop_map(|(d, t, tag, lane)| Action::Enter(d, t, (tag > 0).then_some(lane))),
        (0u64..500).prop_map(Action::Exit),
        ("[a-z]{1,8}", 1u64..1_000).prop_map(|(k, n)| Action::Metric(k, n)),
    ];
    proptest::collection::vec(action, 1..120)
}

/// Replay the action stream under a fresh Profile scope. Virtual time
/// advances by each action's delta, so ring timestamps are nondecreasing —
/// the same shape a real engine run produces.
fn replay(actions: &[Action]) -> RunRecord {
    let g = obs::begin(ObsMode::Profile);
    let mut now = 0u64;
    for a in actions {
        match a {
            Action::Event(d, topic) => {
                now += d;
                obs::event(SimTime::from_micros(now), topic, "x");
            }
            Action::Enter(d, topic, lane) => {
                now += d;
                obs::span_enter(SimTime::from_micros(now), topic, lane.as_deref(), &[("k", "v")]);
            }
            Action::Exit(d) => {
                now += d;
                obs::span_exit(SimTime::from_micros(now), &[]);
            }
            Action::Metric(key, n) => obs::on_metric_counter(key, *n),
        }
    }
    g.finish()
}

/// Pull the `ts` value out of one rendered Chrome event line.
fn event_ts(line: &str) -> Option<u64> {
    let start = line.find("\"ts\":")? + 5;
    let digits: String = line[start..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

proptest! {
    /// Rendering the same observed run twice is byte-identical for every
    /// exporter — the determinism bar `tussle-cli export` golden-locks.
    #[test]
    fn exporters_are_deterministic_on_replay(actions in arb_actions()) {
        let (a, b) = (replay(&actions), replay(&actions));
        prop_assert_eq!(to_chrome(&a), to_chrome(&b));
        prop_assert_eq!(to_prometheus(&a), to_prometheus(&b));
        prop_assert_eq!(to_jsonl(&a), to_jsonl(&b));
    }

    /// The Chrome stream is structurally valid for any action sequence:
    /// `B`/`E` counts balance (stray exits render nothing, dangling spans
    /// are closed), and non-provenance event timestamps never run
    /// backwards — virtual time is the only clock in the output.
    #[test]
    fn chrome_stream_is_balanced_and_monotone(actions in arb_actions()) {
        let out = to_chrome(&replay(&actions));
        prop_assert_eq!(
            out.matches("\"ph\":\"B\"").count(),
            out.matches("\"ph\":\"E\"").count()
        );
        let mut last = 0u64;
        for line in out.lines() {
            // Flow events replay provenance edges out of band; metadata
            // events sit at ts 0 by construction. Everything else must be
            // in ring order, which replay() made nondecreasing.
            if !line.contains("\"ph\":") || line.contains("provenance") {
                continue;
            }
            let ts = event_ts(line).expect("every event carries a ts");
            prop_assert!(ts >= last, "ts ran backwards: {line}");
            last = ts;
        }
    }

    /// JSONL is exactly the ring: one line per retained entry, each a
    /// well-formed JSON object.
    #[test]
    fn jsonl_is_one_line_per_ring_entry(actions in arb_actions()) {
        let rec = replay(&actions);
        let out = to_jsonl(&rec);
        prop_assert_eq!(out.lines().count(), rec.ring.len());
        prop_assert!(out.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    /// Conservation: the per-stakeholder `entries` series in the
    /// Prometheus exposition sums to the run's total trace-entry count —
    /// every entry lands in exactly one lane, none invented, none lost.
    #[test]
    fn prometheus_stakeholder_entries_conserve_the_trace(actions in arb_actions()) {
        let rec = replay(&actions);
        let out = to_prometheus(&rec);
        let summed: u64 = out
            .lines()
            .filter(|l| l.starts_with("tussle_stakeholder_entries{"))
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        prop_assert_eq!(summed, rec.trace_entries);
        let folded: u64 = rec.stakeholders.values().map(|c| c.entries).sum();
        prop_assert_eq!(folded, rec.trace_entries);
    }
}

//! IP traceback by probabilistic packet marking.
//!
//! §II.B cites Savage's "Protocol Design in an Uncooperative Internet" and
//! the IP-traceback papers as the canonical "build technical systems that
//! are more resistant" response to tussle: when senders spoof their source
//! addresses (a DoS flood), the *path* can still be reconstructed if
//! routers probabilistically stamp packets with their identity and a hop
//! count. Victims aggregate stamps across many packets and sort by
//! distance.
//!
//! Marking happens in [`crate::network::Network::send_at`] for nodes with
//! `marks_packets` set; this module is the victim-side reconstruction.

use crate::node::NodeId;
use crate::packet::Mark;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Aggregated evidence about one marking router.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouterEvidence {
    /// The router that stamped.
    pub node: NodeId,
    /// Stamps observed.
    pub samples: u64,
    /// Mean distance (hops from the stamp to the victim).
    pub mean_distance: f64,
}

/// Victim-side collector.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TracebackCollector {
    stamps: BTreeMap<NodeId, (u64, u64)>, // node -> (count, distance sum)
    /// Packets observed in total (marked or not).
    pub packets_seen: u64,
}

impl TracebackCollector {
    /// An empty collector.
    pub fn new() -> Self {
        TracebackCollector::default()
    }

    /// Record one received packet's mark (if any).
    pub fn observe(&mut self, mark: &Option<Mark>) {
        self.packets_seen += 1;
        if let Some(m) = mark {
            let e = self.stamps.entry(m.node).or_insert((0, 0));
            e.0 += 1;
            e.1 += m.distance as u64;
        }
    }

    /// Evidence per router, sorted farthest-first (the end nearest the
    /// attacker comes first — the reconstructed attack path).
    pub fn reconstruct_path(&self) -> Vec<RouterEvidence> {
        let mut out: Vec<RouterEvidence> = self
            .stamps
            .iter()
            .map(|(node, (count, dist_sum))| RouterEvidence {
                node: *node,
                samples: *count,
                mean_distance: *dist_sum as f64 / *count as f64,
            })
            .collect();
        out.sort_by(|a, b| {
            b.mean_distance
                .partial_cmp(&a.mean_distance)
                .expect("distances are finite")
                .then(a.node.0.cmp(&b.node.0))
        });
        out
    }

    /// The router nearest the traffic source, if enough evidence exists
    /// (`min_samples` stamps from it).
    pub fn nearest_to_attacker(&self, min_samples: u64) -> Option<NodeId> {
        self.reconstruct_path().into_iter().find(|e| e.samples >= min_samples).map(|e| e.node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Address, AddressOrigin, Asn, Prefix};
    use crate::network::Network;
    use crate::packet::{ports, Packet, Protocol};
    use tussle_sim::{SimRng, SimTime};

    fn addr(v: u32) -> Address {
        Address::in_prefix(Prefix::new(v, 16), 1, AddressOrigin::ProviderIndependent)
    }

    /// attacker -- r1 -- r2 -- r3 -- victim, marking on all routers.
    fn world() -> (Network, crate::node::NodeId, Packet, Vec<crate::node::NodeId>) {
        let mut net = Network::new();
        let attacker = net.add_host(Asn(1));
        let r1 = net.add_router(Asn(2));
        let r2 = net.add_router(Asn(3));
        let r3 = net.add_router(Asn(4));
        let victim = net.add_host(Asn(5));
        for (a, b) in [(attacker, r1), (r1, r2), (r2, r3), (r3, victim)] {
            net.connect(a, b, SimTime::from_millis(1), 1_000_000_000);
        }
        let spoofed = addr(0xdead0000); // the attacker lies about its source
        let vaddr = addr(0x0b000000);
        net.node_mut(victim).bind(vaddr);
        let vp = Prefix::new(0x0b000000, 16);
        net.fib_mut(attacker).install(Prefix::DEFAULT, r1, 0);
        net.fib_mut(r1).install(vp, r2, 0);
        net.fib_mut(r2).install(vp, r3, 0);
        net.fib_mut(r3).install(vp, victim, 0);
        for r in [r1, r2, r3] {
            net.node_mut(r).marks_packets = true;
        }
        let flood = Packet::new(spoofed, vaddr, Protocol::Udp, 666, ports::HTTP);
        (net, attacker, flood, vec![r1, r2, r3])
    }

    #[test]
    fn reconstruction_orders_routers_by_distance() {
        let (mut net, attacker, flood, routers) = world();
        let mut rng = SimRng::seed_from_u64(9);
        let mut collector = TracebackCollector::new();
        for _ in 0..5_000 {
            let rep = net.send(attacker, flood.clone(), &mut rng);
            assert!(rep.delivered);
            collector.observe(&rep.mark);
        }
        let path = collector.reconstruct_path();
        assert_eq!(path.len(), 3, "all three routers left stamps");
        // farthest-first ordering: r1 (nearest the attacker) leads
        let ids: Vec<_> = path.iter().map(|e| e.node).collect();
        assert_eq!(ids, routers, "reconstructed {ids:?}");
        assert!(path[0].mean_distance > path[1].mean_distance);
        assert!(path[1].mean_distance > path[2].mean_distance);
    }

    #[test]
    fn nearest_to_attacker_is_the_ingress_router() {
        let (mut net, attacker, flood, routers) = world();
        let mut rng = SimRng::seed_from_u64(11);
        let mut collector = TracebackCollector::new();
        for _ in 0..5_000 {
            let rep = net.send(attacker, flood.clone(), &mut rng);
            collector.observe(&rep.mark);
        }
        assert_eq!(collector.nearest_to_attacker(50), Some(routers[0]));
        // the spoofed source address told the victim nothing; the marks did
        assert_ne!(flood.src.value, 0x0a000000);
    }

    #[test]
    fn unmarked_networks_yield_nothing() {
        let (mut net, attacker, flood, routers) = world();
        for r in routers {
            net.node_mut(r).marks_packets = false;
        }
        let mut rng = SimRng::seed_from_u64(9);
        let mut collector = TracebackCollector::new();
        for _ in 0..100 {
            let rep = net.send(attacker, flood.clone(), &mut rng);
            collector.observe(&rep.mark);
        }
        assert!(collector.reconstruct_path().is_empty());
        assert_eq!(collector.nearest_to_attacker(1), None);
        assert_eq!(collector.packets_seen, 100);
    }

    #[test]
    fn sparse_marking_still_converges() {
        // even with the default 4% marking probability, thousands of flood
        // packets pin every router
        let (mut net, attacker, flood, _) = world();
        let mut rng = SimRng::seed_from_u64(13);
        let mut collector = TracebackCollector::new();
        for _ in 0..2_000 {
            let rep = net.send(attacker, flood.clone(), &mut rng);
            collector.observe(&rep.mark);
        }
        for e in collector.reconstruct_path() {
            assert!(e.samples > 10, "router {:?} undersampled", e.node);
        }
    }
}

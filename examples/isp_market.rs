//! Domain scenario: an ISP access market with lock-in.
//!
//! Sweeps the §V.A.1 renumbering cost and watches the equilibrium markup a
//! duopoly can sustain, then shows the two consumer-favouring mechanisms
//! the paper recommends (cheap renumbering, portable addresses) and the
//! routing-table bill for the portable one.
//!
//! ```sh
//! cargo run --release --example isp_market
//! ```

use tussle::econ::{Consumer, Market, Money, Provider};
use tussle::experiments::e01_lockin::{run_mode, AddressingMode};

fn duopoly_markup(switching_dollars: i64) -> f64 {
    let consumers: Vec<Consumer> = (0..30)
        .map(|id| Consumer {
            id,
            value: Money::from_dollars(100),
            usage_mb: 1000,
            runs_server: false,
            tunnels: false,
            switching_cost: Money::from_dollars(switching_dollars),
            provider: None,
        })
        .collect();
    let providers = vec![
        Provider::flat("isp-a", Money::from_dollars(60), Money::from_dollars(20)),
        Provider::flat("isp-b", Money::from_dollars(60), Money::from_dollars(20)),
    ];
    Market::new(consumers, providers).run(80).avg_markup
}

fn main() {
    println!("## Markup a duopoly sustains vs. the cost of leaving\n");
    println!("| renumbering cost | equilibrium markup |");
    println!("|---|---|");
    for cost in [0, 50, 150, 300, 600, 1200] {
        println!("| ${cost} | {:.2} |", duopoly_markup(cost));
    }

    println!("\n## The three §V.A.1 addressing designs\n");
    println!("| design | markup | avg price | core FIB entries |");
    println!("|---|---|---|---|");
    for mode in [
        AddressingMode::ProviderAssignedStatic,
        AddressingMode::ProviderAssignedDynamic,
        AddressingMode::ProviderIndependent,
    ] {
        let o = run_mode(mode, 30, 80);
        println!("| {mode:?} | {:.2} | {} | {} |", o.markup, o.avg_price, o.core_fib_entries);
    }
    println!(
        "\nThe paper's recommendation — \"addresses should reflect connectivity, not \
         identity\", with DHCP and dynamic DNS making renumbering cheap — is the row \
         that gets competitive prices WITHOUT the per-customer routing state."
    );
}

//! Equilibrium computation.
//!
//! Pure Nash equilibria by mutual-best-response enumeration for any finite
//! game, plus the closed-form mixed equilibrium for 2×2 games (von Neumann
//! for the zero-sum case, Nash in general — the paper's refs \[12\], \[13\]).

use crate::matrix::Game;

/// Tolerance for floating-point payoff comparisons.
const EPS: f64 = 1e-9;

/// All pure-strategy Nash equilibria `(row action, column action)`.
pub fn pure_nash(game: &Game) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in 0..game.rows() {
        for j in 0..game.cols() {
            if game.row_best_responses(j).contains(&i) && game.col_best_responses(i).contains(&j) {
                out.push((i, j));
            }
        }
    }
    if tussle_sim::obs::active() {
        tussle_sim::obs::event(
            tussle_sim::SimTime::ZERO,
            "game.solve",
            &format!("pure_nash {}x{} -> {} equilibria", game.rows(), game.cols(), out.len()),
        );
    }
    out
}

/// The mixed equilibrium of a 2×2 game with no pure equilibrium in the
/// interior sense: returns `(p, q)` where the row player plays action 0
/// with probability `p` and the column player plays action 0 with
/// probability `q`. Returns `None` when the game is not 2×2 or the
/// indifference system is degenerate (a dominant strategy exists — use
/// [`pure_nash`]).
pub fn mixed_2x2(game: &Game) -> Option<(f64, f64)> {
    if game.rows() != 2 || game.cols() != 2 {
        return None;
    }
    let (a, e) = game.payoff(0, 0);
    let (b, f) = game.payoff(0, 1);
    let (c, g) = game.payoff(1, 0);
    let (d, h) = game.payoff(1, 1);
    // Row mixes to make COLUMN indifferent: p*e + (1-p)*g = p*f + (1-p)*h
    let denom_p = (e - g) - (f - h);
    // Column mixes to make ROW indifferent: q*a + (1-q)*b = q*c + (1-q)*d
    let denom_q = (a - c) - (b - d);
    if denom_p.abs() < EPS || denom_q.abs() < EPS {
        return None;
    }
    let p = (h - g) / denom_p;
    let q = (d - b) / denom_q;
    if !(0.0..=1.0).contains(&p) || !(0.0..=1.0).contains(&q) {
        return None;
    }
    if tussle_sim::obs::active() {
        tussle_sim::obs::event(
            tussle_sim::SimTime::ZERO,
            "game.solve",
            &format!("mixed_2x2 p={p:.6} q={q:.6}"),
        );
    }
    Some((p, q))
}

/// Verify that `(x, y)` is an (epsilon-)Nash profile: no pure deviation
/// gains either player more than `eps`.
pub fn is_nash(game: &Game, x: &[f64], y: &[f64], eps: f64) -> bool {
    let (rx, cy) = game.expected_payoff(x, y);
    for i in 0..game.rows() {
        if game.row_payoff_against(i, y) > rx + eps {
            return false;
        }
    }
    for j in 0..game.cols() {
        if game.col_payoff_against(j, x) > cy + eps {
            return false;
        }
    }
    true
}

/// Convenience: the pure profile `(i, j)` as mixed vectors.
pub fn pure_profile(game: &Game, i: usize, j: usize) -> (Vec<f64>, Vec<f64>) {
    let mut x = vec![0.0; game.rows()];
    let mut y = vec![0.0; game.cols()];
    x[i] = 1.0;
    y[j] = 1.0;
    (x, y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pd_has_defect_defect() {
        let g = Game::prisoners_dilemma(5.0, 3.0, 1.0, 0.0);
        assert_eq!(pure_nash(&g), vec![(1, 1)]);
        let (x, y) = pure_profile(&g, 1, 1);
        assert!(is_nash(&g, &x, &y, 1e-9));
        // cooperation is NOT an equilibrium
        let (x, y) = pure_profile(&g, 0, 0);
        assert!(!is_nash(&g, &x, &y, 1e-9));
    }

    #[test]
    fn coordination_has_matching_equilibria() {
        let g = Game::coordination(vec![1.0, 3.0]);
        let eqs = pure_nash(&g);
        assert!(eqs.contains(&(0, 0)));
        assert!(eqs.contains(&(1, 1)));
        assert!(!eqs.contains(&(0, 1)));
    }

    #[test]
    fn matching_pennies_has_no_pure_nash_but_a_mixed_one() {
        let g = Game::zero_sum(vec![vec![1.0, -1.0], vec![-1.0, 1.0]]);
        assert!(pure_nash(&g).is_empty());
        let (p, q) = mixed_2x2(&g).unwrap();
        assert!((p - 0.5).abs() < 1e-12);
        assert!((q - 0.5).abs() < 1e-12);
        assert!(is_nash(&g, &[p, 1.0 - p], &[q, 1.0 - q], 1e-9));
    }

    #[test]
    fn asymmetric_mixed_equilibrium() {
        // A 2x2 inspection game (asymmetric mixing).
        let g =
            Game::from_table(vec![vec![(2.0, -2.0), (-1.0, 1.0)], vec![(-1.0, 1.0), (1.0, -1.0)]]);
        let (p, q) = mixed_2x2(&g).unwrap();
        assert!(is_nash(&g, &[p, 1.0 - p], &[q, 1.0 - q], 1e-9));
        assert!(p > 0.0 && p < 1.0 && q > 0.0 && q < 1.0);
    }

    #[test]
    fn mixed_degenerate_returns_none() {
        // PD: defect dominates, indifference impossible
        let g = Game::prisoners_dilemma(5.0, 3.0, 1.0, 0.0);
        assert!(mixed_2x2(&g).is_none());
        // wrong size
        let g3 = Game::coordination(vec![1.0, 1.0, 1.0]);
        assert!(mixed_2x2(&g3).is_none());
    }

    #[test]
    fn is_nash_tolerance() {
        let g = Game::coordination(vec![1.0, 1.0]);
        // slightly-perturbed uniform profile is an eps-Nash for big eps
        let x = [0.5, 0.5];
        assert!(is_nash(&g, &x, &x, 0.51));
        assert!(is_nash(&g, &x, &x, 1e-9), "uniform IS exact Nash in symmetric coordination");
    }

    #[test]
    fn zero_sum_value_consistency() {
        // For matching pennies the game value is 0 at equilibrium.
        let g = Game::zero_sum(vec![vec![1.0, -1.0], vec![-1.0, 1.0]]);
        let (p, q) = mixed_2x2(&g).unwrap();
        let (r, c) = g.expected_payoff(&[p, 1.0 - p], &[q, 1.0 - q]);
        assert!(r.abs() < 1e-12 && c.abs() < 1e-12);
    }
}

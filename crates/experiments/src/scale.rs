//! Macro-scale packet workloads over the ISP-style scale topology.
//!
//! The forwarding fast path's proving ground: a ~1k-node three-tier
//! network ([`tussle_net::Network::scale_topology`]) carrying batches of
//! FIB-routed and loose-source-routed traffic. The `net` criterion bench
//! measures packets/sec over these workloads, and ci.sh re-runs one with
//! the route cache force-disabled to assert digest equivalence.

use tussle_net::packet::{ports, Packet, Protocol};
use tussle_net::topo::ScaleTopology;
use tussle_net::{Network, NodeId};
use tussle_sim::{SimRng, SimTime};

/// Which forwarding style the workload exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Routing {
    /// Longest-prefix-match forwarding along installed routes.
    Fib,
    /// Loose source routes through two core waypoints (§V.A.4 user
    /// choice: the sender shops a path across the backbone) — every hop
    /// until the last waypoint resolves through `next_hop_toward`, the
    /// cached path.
    SourceRouted,
}

/// A prebuilt scale topology plus a deterministic batch of packets.
#[derive(Debug)]
pub struct ScaleWorkload {
    /// The generated network and its node handles.
    pub topo: ScaleTopology,
    /// `(source node, packet)` pairs, ready to send.
    pub packets: Vec<(NodeId, Packet)>,
}

/// What one pass of a workload did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleOutcome {
    /// Packets that reached their destination.
    pub delivered: usize,
    /// Total links traversed across the batch.
    pub hops: usize,
    /// Accumulated one-way latency across the batch.
    pub latency: SimTime,
}

impl ScaleWorkload {
    /// Build the topology and a deterministic `n_packets`-packet batch.
    ///
    /// Host pairs are seeded draws; with [`Routing::SourceRouted`] each
    /// packet carries two seeded core-router waypoints, forcing BFS
    /// segment resolution at every hop until the last waypoint is
    /// reached.
    pub fn build(
        seed: u64,
        nodes: usize,
        degree: usize,
        n_packets: usize,
        routing: Routing,
    ) -> Self {
        let topo = Network::scale_topology(seed, nodes, degree);
        let mut rng = SimRng::seed_from_u64(seed).fork("scale-workload");
        let n_hosts = topo.hosts.len();
        let packets = (0..n_packets)
            .map(|_| {
                let i = rng.range(0..n_hosts as u32) as usize;
                let mut j = rng.range(0..n_hosts as u32) as usize;
                if j == i {
                    j = (j + 1) % n_hosts;
                }
                let mut pkt = Packet::new(
                    topo.host_addrs[i],
                    topo.host_addrs[j],
                    Protocol::Tcp,
                    1,
                    ports::HTTP,
                );
                if routing == Routing::SourceRouted {
                    let w1 = rng.range(0..topo.core.len() as u32) as usize;
                    let w2 = rng.range(0..topo.core.len() as u32) as usize;
                    pkt = pkt.with_source_route(vec![topo.core[w1], topo.core[w2]]);
                }
                (topo.hosts[i], pkt)
            })
            .collect();
        ScaleWorkload { topo, packets }
    }

    /// Send every packet in the batch once. Deterministic for a given
    /// `seed` and independent of the route-cache configuration.
    pub fn run(&mut self, seed: u64) -> ScaleOutcome {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut out = ScaleOutcome { delivered: 0, hops: 0, latency: SimTime::ZERO };
        for (src, pkt) in &self.packets {
            let rep = self.topo.net.send(*src, pkt.clone(), &mut rng);
            out.delivered += rep.delivered as usize;
            out.hops += rep.hops();
            out.latency = out.latency.saturating_add(rep.latency);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_packet_in_both_workloads_is_deliverable() {
        for routing in [Routing::Fib, Routing::SourceRouted] {
            let mut w = ScaleWorkload::build(42, 600, 3, 128, routing);
            let out = w.run(1);
            assert_eq!(out.delivered, 128, "{routing:?} lost packets");
            assert!(out.hops >= 128 * 2, "paths should cross the fabric");
        }
    }

    #[test]
    fn outcome_is_independent_of_the_route_cache() {
        let mut cached = ScaleWorkload::build(7, 400, 3, 64, Routing::SourceRouted);
        let mut uncached = ScaleWorkload::build(7, 400, 3, 64, Routing::SourceRouted);
        uncached.topo.net.set_route_caching(false);
        assert_eq!(cached.run(3), uncached.run(3));
        // Second pass: cached arm now runs fully memoized.
        assert_eq!(cached.run(3), uncached.run(3));
    }

    #[test]
    fn workload_is_deterministic() {
        let mut a = ScaleWorkload::build(9, 300, 3, 32, Routing::SourceRouted);
        let mut b = ScaleWorkload::build(9, 300, 3, 32, Routing::SourceRouted);
        assert_eq!(a.packets.len(), b.packets.len());
        for ((sa, pa), (sb, pb)) in a.packets.iter().zip(&b.packets) {
            assert_eq!(sa, sb);
            assert_eq!((pa.src, pa.dst, &pa.source_route), (pb.src, pb.dst, &pb.source_route));
        }
        assert_eq!(a.run(5), b.run(5));
    }
}
